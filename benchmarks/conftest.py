"""Shared benchmark configuration.

Benchmarks run the paper's experiments at a scaled-down default
(``REPRO_SCALE=10`` unless overridden) so the suite completes in CI;
set ``REPRO_FULL_SCALE=1`` for the paper's full 3500/14000-step lengths.

Each benchmark asserts the *shape* claims of the corresponding figure
(who wins, by roughly what factor) and prints the rendered figure so the
output can be compared with the paper side by side.
"""

from __future__ import annotations

import os

import pytest


@pytest.fixture(scope="session", autouse=True)
def _default_scale():
    os.environ.setdefault("REPRO_SCALE", "10")
    yield


def once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are end-to-end runs (tens of thousands of operations
    at full scale); statistical repetition would add nothing but wall
    time, so rounds/iterations are pinned to 1.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
