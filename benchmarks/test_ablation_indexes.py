"""Ablation: provenance-relation indexes on vs off.

Figure 13 was measured "with no indexing ... worst-case behavior"; this
ablation quantifies what the tid/loc indexes buy: query costs drop from
full-scan-proportional to match-proportional, while tracking costs are
unchanged (writes always pay per-row marshalling, not index maintenance,
in the round-trip-dominated regime).
"""

from __future__ import annotations

from conftest import once

from repro.bench.experiments import scaled
from repro.core.queries import ProvenanceQueries
from repro.workloads.runner import build_curation_setup, generate_script, run_updates


def run_ablation():
    steps = scaled(3500)
    sizes = {"n_proteins": max(300, steps // 4), "n_molecules": max(100, steps // 10)}
    script = generate_script("real", steps, seed=7, **sizes)
    out = {}
    for use_indexes in (True, False):
        setup = build_curation_setup(
            "N", seed=7, use_indexes=use_indexes, **sizes
        )
        result = run_updates(setup, script, txn_length=7)
        queries = ProvenanceQueries(setup.store)
        locations = [u.dst for u in script if hasattr(u, "dst")][:20]
        before = setup.clock.total("prov.query")
        for loc in locations:
            queries.get_hist(loc)
        query_ms = (setup.clock.total("prov.query") - before) / len(locations)
        out[use_indexes] = {
            "tracking_ms": result.avg_ms.get("prov.paste", 0.0),
            "query_ms": query_ms,
            "rows": result.prov_rows,
        }
    return out


def test_index_ablation(benchmark):
    results = once(benchmark, run_ablation)
    print()
    print("Ablation: provenance indexes (naive store, real pattern)")
    for use_indexes, stats in results.items():
        label = "indexed " if use_indexes else "no index"
        print(f"  {label}: getHist {stats['query_ms']:8.1f} ms/query, "
              f"paste tracking {stats['tracking_ms']:5.1f} ms/op, "
              f"{stats['rows']} rows")

    # indexes make queries markedly cheaper (at full scale the gap is
    # ~30x; at CI scale the fixed round-trip cost compresses the ratio,
    # so assert a scale-robust bound)
    assert results[True]["query_ms"] < 0.6 * results[False]["query_ms"]
    # ... and leave tracking costs untouched
    assert results[True]["tracking_ms"] == results[False]["tracking_ms"]
    # storage identical either way (we don't count index bytes)
    assert results[True]["rows"] == results[False]["rows"]
