"""Ablation: HT redundant-link pruning (Section 3.2.4).

The paper: "It is possible to check for and remove such redundant links
prior to committing ... However, such redundancy is unusual, so this
extra processing appears not to be worthwhile in most cases."

We measure both regimes: on the paper's workloads (fresh-destination
copies) pruning saves nothing; on an adversarial nested-copy workload
(copy a record, then re-copy each of its fields from the same source)
it saves the inferable links.
"""

from __future__ import annotations

from conftest import once

from repro.core.editor import CurationEditor
from repro.core.provenance import ProvTable
from repro.core.stores import make_store
from repro.core.tree import Tree
from repro.wrappers.memory import MemorySourceDB, MemoryTargetDB
from repro.bench.experiments import scaled
from repro.workloads.runner import build_curation_setup, generate_script, run_updates


def run_standard(prune: bool) -> int:
    steps = scaled(3500)
    sizes = {"n_proteins": max(300, steps // 4), "n_molecules": max(100, steps // 10)}
    script = generate_script("real", steps, seed=7, **sizes)
    setup = build_curation_setup("HT", seed=7, prune_redundant=prune, **sizes)
    result = run_updates(setup, script, txn_length=7)
    return result.prov_rows


def run_adversarial(prune: bool) -> int:
    """Curator re-copies each field of an already-copied record — every
    field link is inferable from the record link."""
    n_records = max(50, scaled(3500) // 7)
    source = Tree.empty()
    for index in range(n_records):
        source.add_child(f"r{index}", Tree.from_dict({"a": 1, "b": 2, "c": 3}))
    store = make_store("HT", ProvTable(), prune_redundant=prune)
    editor = CurationEditor(
        target=MemoryTargetDB("T", Tree.from_dict({"area": {}})),
        sources=[MemorySourceDB("S", source)],
        store=store,
    )
    for index in range(n_records):
        editor.copy_paste(f"S/r{index}", f"T/area/r{index}")
        for field in ("a", "b", "c"):
            editor.copy_paste(f"S/r{index}/{field}", f"T/area/r{index}/{field}")
        editor.commit()
    return store.row_count


def run_ablation():
    return {
        "standard": {prune: run_standard(prune) for prune in (False, True)},
        "adversarial": {prune: run_adversarial(prune) for prune in (False, True)},
    }


def test_pruning_ablation(benchmark):
    results = once(benchmark, run_ablation)
    print()
    print("Ablation: HT redundant-link pruning (rows stored)")
    for workload, by_prune in results.items():
        print(f"  {workload:12s}: no-prune {by_prune[False]:6d}  "
              f"prune {by_prune[True]:6d}")

    # the paper's judgement: on realistic workloads pruning buys nothing
    standard = results["standard"]
    assert standard[True] == standard[False]

    # but when copies nest, pruning removes exactly the inferable links
    adversarial = results["adversarial"]
    assert adversarial[True] == adversarial[False] // 4  # 1 of 4 links kept
