"""Ablation: transaction boundaries vs the real pattern's import cycle.

EXPERIMENTS.md documents one deviation from Table 1: the `real` pattern
commits every 7 operations (one copy + 3 adds + 3 deletes import cycle)
instead of every 5.  This ablation shows why: the transactional methods'
reported savings ("25-35% as many records as the naive approach") exist
*only* when a cycle's deletes cancel against its copy inside one
transaction.  With misaligned 5-op commits the cancellation almost never
fires and T stores nearly as much as N.
"""

from __future__ import annotations

from conftest import once

from repro.bench.experiments import scaled
from repro.workloads.runner import build_curation_setup, generate_script, run_updates


def run_ablation():
    steps = scaled(14000)
    sizes = {"n_proteins": max(300, steps // 4), "n_molecules": max(100, steps // 10)}
    script = generate_script("real", steps, seed=7, **sizes)
    out = {}
    for txn_length in (5, 7, 14, 35):
        rows = {}
        for method in ("N", "T"):
            setup = build_curation_setup(method, seed=7, **sizes)
            result = run_updates(setup, script, txn_length=txn_length)
            rows[method] = result.prov_rows
        out[txn_length] = rows
    return out


def test_txn_alignment_ablation(benchmark):
    results = once(benchmark, run_ablation)
    print()
    print("Ablation: transactional savings vs commit alignment (real pattern)")
    print(f"  {'txn':>4}  {'N rows':>8}  {'T rows':>8}  T/N")
    for txn_length, rows in sorted(results.items()):
        ratio = rows["T"] / rows["N"]
        print(f"  {txn_length:>4}  {rows['N']:>8}  {rows['T']:>8}  {ratio:.2f}")

    # naive storage does not depend on transaction boundaries
    n_values = {rows["N"] for rows in results.values()}
    assert len(n_values) == 1

    # misaligned commits: barely any cancellation
    assert results[5]["T"] > 0.85 * results[5]["N"]
    # cycle-aligned commits: the paper's reported savings appear
    assert results[7]["T"] < 0.5 * results[7]["N"]
    # multiples of the cycle stay aligned
    assert results[14]["T"] == results[7]["T"]
    assert results[35]["T"] == results[7]["T"]
