"""Concurrency benchmark: batched asyncio server vs serialized access.

The tentpole claim, in the paper's own cost model (round trips, not
rows): a curator who serializes — one connection, one operation per
message, waiting out every turnaround — pays a full round trip per
read.  Eight concurrent readers speaking the batched protocol (many
gets per message, one round trip per batch) sustain a multiple of that
read throughput while a simulated curator keeps committing write
transactions against the same server (one batched message per
transaction, via :func:`repro.workloads.concurrent.curator_batches`)
under snapshot isolation.

Gate: 8 concurrent batched readers + 1 writer sustain read QPS >=
``READ_QPS_FLOOR``x the single-connection serialized baseline (scaled by
``REPRO_BENCH_FLOOR_SCALE``, re-measured once before failing — loopback
latency on shared runners is noisy).  The unbatched-overlap number is
also recorded, ungated, as a reference point.  A correctness arm
replays an interleaved schedule over the same live server and certifies
the recorded history with the snapshot-isolation checker.

Results land in ``BENCH_concurrency.json`` at the repo root (override
with ``REPRO_BENCH_OUT_CONCURRENCY``).
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path as FsPath

import pytest

from repro.storage import Database, ServerClient, ThreadedServer
from repro.storage.server import AsyncServerClient
from repro.workloads.concurrent import (
    check_snapshot_isolation,
    curator_batches,
    kv_schema,
    prov_schema,
    run_server_schedule,
)
from repro.workloads.runner import generate_script


def _scale() -> int:
    if os.environ.get("REPRO_FULL_SCALE") == "1":
        return 100
    return int(os.environ.get("REPRO_SCALE", "10"))


SCALE = _scale()
FLOOR_SCALE = float(os.environ.get("REPRO_BENCH_FLOOR_SCALE", "1.0"))

N_READERS = 8
N_KEYS = 256
#: gets per message on the batched concurrent readers — the wire twin
#: of the store's batched ``loc IN (...)`` probes
READ_BATCH = 64
#: reads issued by the serialized baseline connection
BASELINE_READS = 150 * SCALE
#: batches issued by EACH concurrent reader
BATCHES_PER_READER = max(
    1, (BASELINE_READS + N_READERS * READ_BATCH - 1) // (N_READERS * READ_BATCH)
)
READS_PER_READER = BATCHES_PER_READER * READ_BATCH
#: the acceptance floor: concurrent read QPS vs serialized read QPS
READ_QPS_FLOOR = 3.0


def gate(floor: float) -> float:
    return floor * FLOOR_SCALE


_RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_results():
    yield
    out = os.environ.get(
        "REPRO_BENCH_OUT_CONCURRENCY",
        str(FsPath(__file__).resolve().parents[1] / "BENCH_concurrency.json"),
    )
    payload = {
        "suite": "concurrency",
        "scale": SCALE,
        "results": _RESULTS,
    }
    try:
        with open(out, "r", encoding="utf-8") as handle:
            existing = json.load(handle)
    except (OSError, ValueError):
        existing = {}
    if isinstance(existing, dict):
        for key, value in existing.items():
            if key not in payload:
                payload[key] = value
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def _served_db() -> Database:
    db = Database("bench_concurrency")
    db.create_table(kv_schema())
    db.create_table(prov_schema())
    for k in range(N_KEYS):
        db.insert("kv", (k, k))
    return db


# ----------------------------------------------------------------------
# The two sides of the A/B
# ----------------------------------------------------------------------
def _serialized_reads(server: ThreadedServer, count: int) -> float:
    """One blocking connection, one get per message, back to back — the
    paper's serialized curator paying every round trip in full."""
    with ServerClient(server.host, server.port) as client:
        start = time.perf_counter()
        for i in range(count):
            client.get("kv", [i % N_KEYS])
        return time.perf_counter() - start


async def _reader(host: str, port: int, batches: int, offset: int) -> None:
    """One concurrent reader: ``batches`` messages of ``READ_BATCH``
    gets each — each message is one round trip."""
    client = await AsyncServerClient().connect(host, port)
    try:
        cursor = offset
        for _ in range(batches):
            ops = [
                {"op": "get", "table": "kv", "key": [(cursor + i) % N_KEYS]}
                for i in range(READ_BATCH)
            ]
            cursor += READ_BATCH
            rows = await client.batch(ops)
            assert all(row is not None for row in rows)  # writer never touches kv
    finally:
        await client.close()


async def _unbatched_reader(host: str, port: int, reads: int, offset: int) -> None:
    client = await AsyncServerClient().connect(host, port)
    try:
        for i in range(reads):
            await client.call(
                {"op": "get", "table": "kv", "key": [(offset + i) % N_KEYS]}
            )
    finally:
        await client.close()


async def _writer(host: str, port: int, script, stop: asyncio.Event) -> int:
    """A simulated curator: transaction-grouped provenance batches, one
    message per transaction, looping (with fresh curator ids) until the
    readers are done.  Returns committed-transaction count."""
    client = await AsyncServerClient().connect(host, port)
    committed = 0
    cycle = 0
    try:
        while not stop.is_set():
            for batch in curator_batches(script, curator=cycle):
                await client.batch(batch)
                committed += 1
                if stop.is_set():
                    break
            cycle += 1
    finally:
        await client.close()
    return committed


def _concurrent_reads(server: ThreadedServer) -> dict:
    """8 async batched readers + 1 async curator on a fresh client-side
    event loop (the server keeps its own loop/thread).  Returns wall
    time and writer progress."""
    # generated outside the measured window: building the synthetic
    # source databases is CPU work that must not steal reader cycles
    script = generate_script("mix", 40, n_proteins=200, n_molecules=60)

    async def drive() -> dict:
        stop = asyncio.Event()
        writer_task = asyncio.ensure_future(
            _writer(server.host, server.port, script, stop)
        )
        start = time.perf_counter()
        await asyncio.gather(
            *(
                _reader(
                    server.host,
                    server.port,
                    BATCHES_PER_READER,
                    (N_KEYS // N_READERS) * n,
                )
                for n in range(N_READERS)
            )
        )
        elapsed = time.perf_counter() - start
        stop.set()
        committed = await writer_task
        return {"elapsed_s": elapsed, "writer_txns": committed}

    return asyncio.run(drive())


def _unbatched_overlap_qps(server: ThreadedServer) -> float:
    """Reference point: the same reader fleet with one get per message —
    connection overlap alone, no batching."""
    per_reader = max(1, BASELINE_READS // (N_READERS * 4))

    async def drive() -> float:
        start = time.perf_counter()
        await asyncio.gather(
            *(
                _unbatched_reader(
                    server.host,
                    server.port,
                    per_reader,
                    (N_KEYS // N_READERS) * n,
                )
                for n in range(N_READERS)
            )
        )
        return (per_reader * N_READERS) / (time.perf_counter() - start)

    return asyncio.run(drive())


def _measure_once() -> dict:
    db = _served_db()
    with ThreadedServer(db) as server:
        serial_s = _serialized_reads(server, BASELINE_READS)
        unbatched_qps = _unbatched_overlap_qps(server)
        concurrent = _concurrent_reads(server)
        messages = server.server.messages
    serial_qps = BASELINE_READS / serial_s
    total_reads = READS_PER_READER * N_READERS
    concurrent_qps = total_reads / concurrent["elapsed_s"]
    return {
        "serialized_reads": BASELINE_READS,
        "serialized_s": round(serial_s, 6),
        "serialized_read_qps": round(serial_qps, 1),
        "concurrent_readers": N_READERS,
        "read_batch": READ_BATCH,
        "concurrent_reads": total_reads,
        "concurrent_s": round(concurrent["elapsed_s"], 6),
        "concurrent_read_qps": round(concurrent_qps, 1),
        "unbatched_overlap_qps": round(unbatched_qps, 1),
        "writer_txns_committed": concurrent["writer_txns"],
        "server_messages": messages,
        "speedup": round(concurrent_qps / serial_qps, 2),
    }


class TestConcurrentThroughput:
    def test_concurrent_readers_beat_serialized_baseline(self):
        result = _measure_once()
        if result["speedup"] < gate(READ_QPS_FLOOR):
            # one re-measure before failing: loopback round trips on a
            # noisy shared runner can eat a single run
            result = _measure_once()
        _RESULTS["read_qps_concurrent_vs_serialized"] = {
            **result,
            "gate": READ_QPS_FLOOR,
            "floor_scale": FLOOR_SCALE,
        }
        print(
            f"\n[concurrency] serialized={result['serialized_read_qps']} qps "
            f"concurrent={result['concurrent_read_qps']} qps "
            f"speedup={result['speedup']}x (gate >= {gate(READ_QPS_FLOOR)}x) "
            f"writer committed {result['writer_txns_committed']} txns"
        )
        assert result["writer_txns_committed"] > 0  # writes really overlapped
        assert result["speedup"] >= gate(READ_QPS_FLOOR)


class TestConcurrentCorrectness:
    """The correctness arm: the same server, an interleaved multi-client
    schedule, and the snapshot-isolation history checker."""

    SCHEDULE = [
        ("begin", "a"),
        ("begin", "b"),
        ("read", "a", 0),
        ("write", "b", 0, 100),
        ("read", "a", 0),
        ("commit", "b"),
        ("read", "a", 0),
        ("write", "a", 1, 7),
        ("commit", "a"),
        ("begin", "c"),
        ("read", "c", 0),
        ("read", "c", 1),
        ("write", "c", 0, 101),
        ("commit", "c"),
    ]

    def test_server_history_is_snapshot_isolated(self):
        initial = {k: k for k in range(4)}
        db = Database("bench_correctness")
        db.create_table(kv_schema())
        for k, v in initial.items():
            db.insert("kv", (k, v))
        with ThreadedServer(db) as server:
            clients = {
                c: ServerClient(server.host, server.port) for c in ("a", "b", "c")
            }
            try:
                history = run_server_schedule(self.SCHEDULE, clients, initial)
            finally:
                for client in clients.values():
                    client.close()
        violations = check_snapshot_isolation(history)
        assert violations == [], "\n".join(violations)
        _RESULTS["history_checker"] = {
            "transactions": len(history.transactions),
            "violations": 0,
        }
