"""Figure 7: provenance storage after 3500-step update patterns.

Shape claims (Section 4.2):

* inserts and deletes are handled essentially the same by all methods;
* only copies stress the system: naive and transactional store ~4
  records per copy, the hierarchical techniques store 1;
* hierarchical-transactional is the most efficient overall.
"""

from __future__ import annotations

from conftest import once

from repro.bench import experiment1, render_fig7


def test_fig07_storage(benchmark):
    results = once(benchmark, experiment1)
    print()
    print(render_fig7(results))

    rows = {
        pattern: {method: result.prov_rows for method, result in by_method.items()}
        for pattern, by_method in results.items()
    }

    # adds and deletes: all methods within a small factor of each other
    for pattern in ("add", "delete"):
        values = rows[pattern]
        assert max(values.values()) <= 2.0 * min(values.values()), (pattern, values)

    # pure copies: N and T store ~4 records per copy, H and HT store 1
    copy = rows["copy"]
    assert copy["N"] == copy["T"]
    assert copy["H"] == copy["HT"]
    assert 3.5 <= copy["N"] / copy["H"] <= 4.5

    # the hierarchical-transactional technique is the most compact overall
    for pattern, values in rows.items():
        assert values["HT"] <= min(values.values()) * 1.01, (pattern, values)

    # hierarchical stores at most one record per operation: |HProv| <= |U|
    for pattern, by_method in results.items():
        assert by_method["H"].prov_rows <= by_method["H"].steps
        assert by_method["HT"].prov_rows <= by_method["HT"].steps
