"""Figure 8: provenance storage after 14000-step mix and real runs.

Shape claims:

* the trends of Figure 7 hold at 4x the length (HT smallest, hierarchical
  methods ~1 record per operation);
* for the real pattern, the transactional methods keep only the net
  effect of each import cycle — "only about 25-35% as many records as
  the naive approach" (Section 4.2's explanation of Figure 13; we land
  at ~40% with cycle-aligned commits, see EXPERIMENTS.md);
* physical sizes track row counts (each row is 100-200 bytes).
"""

from __future__ import annotations

from conftest import once

from repro.bench import experiment2, render_fig8


def test_fig08_storage(benchmark):
    results = once(benchmark, experiment2)
    print()
    print(render_fig8(results))

    for pattern in ("mix", "real"):
        by_method = results[pattern]
        rows = {method: result.prov_rows for method, result in by_method.items()}
        # HT is the most compact
        assert rows["HT"] <= min(rows.values()) * 1.01, (pattern, rows)
        # hierarchical methods: at most one record per operation
        assert rows["H"] <= by_method["H"].steps
        # rows are 100-200 bytes each
        for method, result in by_method.items():
            if result.prov_rows:
                per_row = result.prov_bytes / result.prov_rows
                assert 30 <= per_row <= 200, (pattern, method, per_row)

    # real pattern: transactional stores ~25-45% of naive's records
    real = results["real"]
    ratio = real["T"].prov_rows / real["N"].prov_rows
    assert 0.25 <= ratio <= 0.5, ratio
    # and the hierarchical-transactional matches transactional here
    # (each import cycle nets one copy root + the surviving inserts)
    assert abs(real["HT"].prov_rows - real["T"].prov_rows) <= 0.1 * real["T"].prov_rows
