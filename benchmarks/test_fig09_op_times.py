"""Figure 9: average per-operation provenance times (14000-mix run).

Shape claims (Section 4.2):

* dataset (target database) interaction dominates everything;
* transactional per-operation work is near zero — no store interaction
  until commit; commits cost ~25% of a database interaction and occur
  once every 5 steps;
* naive copies are the most expensive tracked operation (4 rows per
  statement);
* hierarchical copies are much cheaper than naive copies, but
  hierarchical inserts are *more* expensive than naive inserts (the
  extra existence-check round trip);
* hierarchical-transactional basic operations stay tiny.
"""

from __future__ import annotations

from conftest import once

from repro.bench import experiment2, render_fig9


def test_fig09_op_times(benchmark):
    results = once(benchmark, experiment2)
    print()
    print(render_fig9(results, pattern="mix"))

    mix = results["mix"]
    base = mix["N"].avg_ms["target.update"]

    for method, result in mix.items():
        # the dataset update dominates every provenance operation
        for category in ("prov.add", "prov.delete", "prov.paste"):
            assert result.avg_ms.get(category, 0.0) < base, (method, category)

    # transactional: per-op ~ zero, commit ~25% of a dataset interaction
    transactional = mix["T"]
    for category in ("prov.add", "prov.delete", "prov.paste"):
        assert transactional.avg_ms.get(category, 0.0) < 0.01 * base
    commit = transactional.avg_ms["prov.commit"]
    assert 0.10 * base <= commit <= 0.40 * base, commit

    # naive copies cost the most; hierarchical copies are much cheaper
    assert mix["N"].avg_ms["prov.paste"] > 1.8 * mix["H"].avg_ms["prov.paste"]
    # hierarchical inserts cost more than naive inserts
    assert mix["H"].avg_ms["prov.add"] > mix["N"].avg_ms["prov.add"]
