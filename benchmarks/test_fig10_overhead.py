"""Figure 10: provenance overhead per operation, as a percentage of the
base dataset-manipulation time.

Shape claims (Section 4.2):

* naive: every operation under ~30% of the base time, copies highest
  ("it can increase the time to process each update by 28%");
* hierarchical: copies far cheaper than naive's, inserts more expensive
  than naive's, deletes comparable;
* transactional: all operations essentially free (<1%);
* hierarchical-transactional: all basic operations at most ~6%.
"""

from __future__ import annotations

from conftest import once

from repro.bench import experiment2, render_fig10


def test_fig10_overhead(benchmark):
    results = once(benchmark, experiment2)
    print()
    print(render_fig10(results, pattern="mix"))

    mix = results["mix"]
    overhead = {
        method: {
            op: result.overhead_percent(op)
            for op in ("add", "delete", "paste")
        }
        for method, result in mix.items()
    }

    # naive stays under ~30% for every operation, copies the highest
    assert all(value <= 35.0 for value in overhead["N"].values()), overhead["N"]
    assert overhead["N"]["paste"] == max(overhead["N"].values())
    assert 20.0 <= overhead["N"]["paste"] <= 35.0

    # hierarchical: cheap copies, expensive inserts
    assert overhead["H"]["paste"] < 0.6 * overhead["N"]["paste"]
    assert overhead["H"]["add"] > overhead["N"]["add"]

    # transactional: everything under 1%
    assert all(value < 1.0 for value in overhead["T"].values()), overhead["T"]

    # hierarchical-transactional: all basic operations at most ~6%
    assert all(value <= 6.0 for value in overhead["HT"].values()), overhead["HT"]
