"""Figure 11: the effect of deletion patterns on provenance storage.

Shape claims (Section 4.2):

* for naive and hierarchical provenance, deletion simply *adds* records
  — (acd) >= (ac) for every deletion pattern;
* for transactional provenance, some deletion patterns result in fewer
  overall records than even the (ac) run, because data inserted and
  deleted in the same transaction leaves no trace;
* hierarchical-transactional displays the most stable behaviour and
  stores the fewest records for every pattern.
"""

from __future__ import annotations

from conftest import once

from repro.bench import experiment3, render_fig11


def test_fig11_deletion(benchmark):
    results = once(benchmark, experiment3)
    print()
    print(render_fig11(results))

    for policy, variants in results.items():
        ac = {m: r.prov_rows for m, r in variants["ac"].items()}
        acd = {m: r.prov_rows for m, r in variants["acd"].items()}

        # deletes only ever add records for the per-operation methods
        assert acd["N"] >= ac["N"], (policy, ac["N"], acd["N"])
        assert acd["H"] >= ac["H"], (policy, ac["H"], acd["H"])

        # HT stores the fewest records under every pattern
        assert acd["HT"] <= min(acd.values()) * 1.01, (policy, acd)

    # transactional cancellation: when deletes target data created in the
    # same transaction (del-real: the just-copied subtree), the full run
    # stores fewer records than naive does — deletes *reduced* relative
    # storage instead of adding to it
    del_real = results["del-real"]
    n_growth = (
        del_real["acd"]["N"].prov_rows - del_real["ac"]["N"].prov_rows
    )
    t_growth = (
        del_real["acd"]["T"].prov_rows - del_real["ac"]["T"].prov_rows
    )
    assert t_growth < n_growth, (t_growth, n_growth)
