"""Figure 12: the effect of transaction length on processing time
(hierarchical-transactional method, 3500-step real pattern).

Shape claims (Section 4.2):

* per-operation processing time does not vary much with transaction
  size;
* commit time grows approximately linearly with transaction length;
* the amortized time per operation stays about the same.
"""

from __future__ import annotations

from conftest import once

from repro.bench import experiment4, render_fig12


def test_fig12_txn_length(benchmark):
    results = once(benchmark, experiment4)
    print()
    print(render_fig12(results))

    lengths = sorted(results)
    assert lengths == [7, 100, 500, 1000]

    # per-operation time is flat in transaction length
    for op in ("prov.add", "prov.paste"):
        values = [results[length].avg_ms.get(op, 0.0) for length in lengths]
        assert max(values) <= 1.5 * min(v for v in values if v > 0) + 1e-9, (op, values)

    # commit time grows roughly linearly with transaction length
    commits = {length: results[length].avg_ms["prov.commit"] for length in lengths}
    growth_100 = commits[100] / commits[7]
    growth_1000 = commits[1000] / commits[100]
    assert growth_100 > 3.0, commits
    assert growth_1000 > 3.0, commits
    # linearity: 10x the transaction length ~ 10x the commit cost (+-2x)
    assert 5.0 <= growth_1000 <= 20.0, commits

    # amortized per-operation time stays about the same
    amortized = [results[length].amortized_ms_per_op() for length in lengths]
    assert max(amortized) <= 2.0 * min(amortized), amortized
