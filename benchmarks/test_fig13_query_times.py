"""Figure 13: provenance query times (getSrc / getMod / getHist) after a
14000-step real run, no indexes on the provenance relation.

Shape claims (Section 4.2):

* the transactional stores answer all three queries roughly 2.5x faster
  than naive (they store fewer records and 7x fewer transactions);
* hierarchical is modestly (~15%) faster than naive for getSrc and
  getHist, but ~20% *slower* for getMod (descendant processing);
* hierarchical-transactional matches transactional for getSrc/getHist
  while its getMod is only slightly better than naive's.
"""

from __future__ import annotations

from conftest import once

from repro.bench import experiment5, render_fig13


def test_fig13_query_times(benchmark):
    results = once(benchmark, experiment5)
    print()
    print(render_fig13(results))

    src = {method: timing.get_src_ms for method, timing in results.items()}
    mod = {method: timing.get_mod_ms for method, timing in results.items()}
    hist = {method: timing.get_hist_ms for method, timing in results.items()}

    # transactional ~2.5x faster than naive on every query
    for times in (src, hist, mod):
        speedup = times["N"] / times["T"]
        assert 1.8 <= speedup <= 4.0, (times, speedup)

    # hierarchical: modestly faster than naive for getSrc/getHist ...
    assert src["H"] < src["N"]
    assert hist["H"] < hist["N"]
    assert src["H"] > 0.6 * src["N"]  # "slightly (15%) faster", not 2.5x

    # ... but slower than naive for getMod
    assert mod["H"] > mod["N"]

    # HT matches transactional on getSrc/getHist
    assert abs(src["HT"] - src["T"]) <= 0.25 * src["T"]
    assert abs(hist["HT"] - hist["T"]) <= 0.25 * hist["T"]
    # HT's getMod is close to naive's (only slightly better)
    assert 0.7 * mod["N"] <= mod["HT"] <= 1.3 * mod["N"]
