"""Hot-path microbenchmarks: new implementations vs seed replicas.

Each test times the current implementation against a *seed replica* — a
faithful copy of the pre-overhaul algorithm kept in this file — on the
same workload, asserts the speedup floor, and records both sides in
``BENCH_micro.json`` at the repo root (override with ``REPRO_BENCH_OUT``)
so the perf trajectory has a comparable first data point.

Workload sizes scale with ``REPRO_SCALE`` (default 10, the CI smoke
scale); ``REPRO_FULL_SCALE=1`` runs the paper-sized workloads.  Gates
are set conservatively below the observed speedups so CI noise cannot
flake them, the A/B gates decide on *median-of-3* timings when the
first pair lands below the floor, and every floor scales with
``REPRO_BENCH_FLOOR_SCALE`` (e.g. ``0.75`` on noisy shared runners) so
one CPU-steal spike can never fail tier-1.
"""

from __future__ import annotations

import bisect
import json
import os
import random
import statistics
import struct
import time
from pathlib import Path as FsPath

import pytest

from repro.core.paths import Path
from repro.core.provenance import ProvRecord, ProvTable, _record_order
from repro.core.tree import Tree
from repro.datalog.ast import Atom, Literal, Rule, Var
from repro.datalog.engine import Program
from repro.storage.expr import And, Cmp, Col, Const
from repro.storage.index import MAX_KEY, OrderedIndex
from repro.storage.query import JoinSpec, Query, TableRef, plan_query
from repro.storage.schema import Column, IndexSpec, TableSchema
from repro.storage.table import Table
from repro.storage.types import ColumnType
from repro.xmldb.axes import descendants_by_label
from repro.xmldb.index import ElementIndex, evaluate_indexed
from repro.xmldb.store import XMLDatabase
from repro.xmldb.xpath import XPath, base_label


def _scale() -> int:
    if os.environ.get("REPRO_FULL_SCALE") == "1":
        return 100
    return int(os.environ.get("REPRO_SCALE", "10"))


SCALE = _scale()

#: every speedup floor is multiplied by this before asserting — the CI
#: escape hatch for noisy shared runners (REPRO_BENCH_FLOOR_SCALE=0.75
#: keeps the gates meaningful while tolerating steal-heavy machines)
FLOOR_SCALE = float(os.environ.get("REPRO_BENCH_FLOOR_SCALE", "1.0"))


def gate(floor: float) -> float:
    """The effective (scaled) speedup floor asserted by a benchmark."""
    return floor * FLOOR_SCALE


_RESULTS: dict = {}


@pytest.fixture(scope="module", autouse=True)
def _emit_results():
    yield
    out = os.environ.get(
        "REPRO_BENCH_OUT", str(FsPath(__file__).resolve().parents[1] / "BENCH_micro.json")
    )
    payload = {
        "suite": "micro_hotpaths",
        "scale": SCALE,
        "results": _RESULTS,
    }
    # preserve out-of-band sections other tools merged into the file
    # (e.g. tools/sweep_bulk_crossover.py's "bulk_insert_crossover")
    try:
        with open(out, "r", encoding="utf-8") as handle:
            existing = json.load(handle)
    except (OSError, ValueError):
        existing = {}
    if isinstance(existing, dict):
        for key, value in existing.items():
            if key not in payload:
                payload[key] = value
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def timed(fn, repeats: int = 3) -> float:
    """Best-of-N wall time of ``fn()`` (min is the standard noise filter)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def record(name: str, seed_s: float, new_s: float, floor: float, **params) -> float:
    speedup = seed_s / new_s if new_s > 0 else float("inf")
    _RESULTS[name] = {
        "seed_s": round(seed_s, 6),
        "new_s": round(new_s, 6),
        "speedup": round(speedup, 2),
        "gate": floor,
        "floor_scale": FLOOR_SCALE,
        "params": params,
    }
    print(f"\n[micro] {name}: seed={seed_s * 1e3:.1f}ms new={new_s * 1e3:.1f}ms "
          f"speedup={speedup:.1f}x (gate >= {gate(floor)}x)")
    return speedup


# ----------------------------------------------------------------------
# Seed replicas (the pre-overhaul algorithms, verbatim in spirit)
# ----------------------------------------------------------------------


class SeedOrderedIndex:
    """The seed's flat sorted list maintained with ``list.insert``."""

    def __init__(self):
        self._entries = []

    def insert(self, key, rowid):
        entry = (key, rowid)
        self._entries.insert(bisect.bisect_left(self._entries, entry), entry)

    def delete(self, key, rowid):
        entry = (key, rowid)
        position = bisect.bisect_left(self._entries, entry)
        if position < len(self._entries) and self._entries[position] == entry:
            self._entries.pop(position)

    def prefix_scan(self, prefix):
        position = bisect.bisect_left(self._entries, ((prefix,), -1))
        for index in range(position, len(self._entries)):
            key, rowid = self._entries[index]
            first = key[0]
            if not isinstance(first, str) or not first.startswith(prefix):
                break
            yield rowid


def seed_parse_path(text: str) -> Path:
    """The seed's uncached parse: tokenize + validate on every call."""
    stripped = text.strip("/")
    if not stripped:
        return Path(())
    return Path(stripped.split("/"))


def make_loc(rng: random.Random, i: int) -> str:
    return f"T/c{rng.randrange(40)}/n{rng.randrange(60)}/x{i}"


def make_keys(n: int, seed: int = 7):
    rng = random.Random(seed)
    keys = [(make_loc(rng, i),) for i in range(n)]
    rng.shuffle(keys)
    return keys


# ----------------------------------------------------------------------
# Benchmarks
# ----------------------------------------------------------------------


def gated_ab(seed_fn, new_fn, floor: float, rounds: int = 3):
    """Median-of-3 A/B timing for gated benchmarks.

    The first seed/new pair is accepted outright when it already clears
    the (scaled) floor — the common case stays cheap.  Otherwise two
    more alternating pairs are timed and the per-side *medians* decide:
    a single GC pause or CPU-steal spike on a shared CI runner shifts
    one sample, never the verdict, while a genuine regression drags the
    median down in every round.  (This replaced a best-of-two retry
    gate that still flaked when one noisy measurement was all it got.)
    Returns ``(median seed_s, median new_s)``.
    """
    seeds, news = [], []
    for round_no in range(rounds):
        start = time.perf_counter()
        seed_fn()
        seeds.append(time.perf_counter() - start)
        start = time.perf_counter()
        new_fn()
        news.append(time.perf_counter() - start)
        if round_no == 0 and news[0] > 0 and seeds[0] / news[0] >= gate(floor):
            break
    return statistics.median(seeds), statistics.median(news)


def test_ordered_index_build():
    """Bulk build: blocked insert is sub-linear, list.insert is O(n).

    Sized so the flat list's per-insert memmove dominates (the asymptotic
    gap needs tens of thousands of entries to beat C-level memmove
    constants).
    """
    n = 30_000 * SCALE
    keys = make_keys(n)

    def build_seed():
        index = SeedOrderedIndex()
        for rowid, key in enumerate(keys):
            index.insert(key, rowid)
        return index

    def build_new():
        index = OrderedIndex("bench")
        for rowid, key in enumerate(keys):
            index.insert(key, rowid)
        return index

    # contents equivalence at a cheap size (the hypothesis model tests
    # cover correctness exhaustively; this is a harness sanity check)
    small = keys[: n // 20]
    small_seed, small_new = SeedOrderedIndex(), OrderedIndex("check")
    for rowid, key in enumerate(small):
        small_seed.insert(key, rowid)
        small_new.insert(key, rowid)
    assert list(small_new.items()) == small_seed._entries

    seed_s, new_s = gated_ab(build_seed, build_new, 5.0)
    speedup = record("ordered_index_build", seed_s, new_s, 5.0, n=n)
    assert speedup >= gate(5.0)


def test_prefix_scan_live_index():
    """Prefix scans against an index under churn (the editor workload:
    every transaction writes provenance records, Mod queries interleave).
    The flat list pays O(n) maintenance between scans; the blocked index
    keeps scans streaming over a structure that is cheap to keep sorted.

    Floor 3.5: clean-machine runs measure ~4.9–6x here, and the old 5.0
    floor sat *inside* that band — it failed an otherwise green tier-1
    run on one noisy sample, which is what prompted the median-of-3
    gate + floor-scale rework."""
    n = 24_000 * SCALE
    keys = make_keys(n)
    rng = random.Random(23)
    prefixes = [f"T/c{rng.randrange(40)}/n{rng.randrange(60)}/" for _ in range(512)]
    consumed_totals = []

    def run(index):
        consumed = 0
        for rowid, key in enumerate(keys):
            index.insert(key, rowid)
            if rowid % 100 == 99:
                for _rid in index.prefix_scan(prefixes[(rowid // 100) % len(prefixes)]):
                    consumed += 1
        consumed_totals.append(consumed)

    seed_s, new_s = gated_ab(lambda: run(SeedOrderedIndex()), lambda: run(OrderedIndex("bench")), 3.5)
    assert len(set(consumed_totals)) == 1  # both sides saw identical scans
    speedup = record("prefix_scan_live", seed_s, new_s, 3.5, n=n, scan_every=100)
    assert speedup >= gate(3.5)


def test_table_scan_sort_free():
    """Full scans: the seed sorted all row ids and looked each row up in
    the heap dict on every call; the new scan streams the dict."""
    n = 1_500 * SCALE
    scans = 60
    table = Table(
        TableSchema("t", [Column("k", ColumnType.INT), Column("v", ColumnType.TEXT)])
    )
    for i in range(n):
        table.insert((i, f"v{i}"))

    def seed_scan():
        total = 0
        rows = table._rows
        for _ in range(scans):
            for rowid in sorted(rows):  # the seed's access pattern
                total += rows[rowid][0] & 1
        return total

    def new_scan():
        total = 0
        for _ in range(scans):
            for _rowid, row in table.scan():
                total += row[0] & 1
        return total

    assert seed_scan() == new_scan()
    seed_s, new_s = gated_ab(seed_scan, new_scan, 1.2)
    speedup = record("table_scan", seed_s, new_s, 1.2, n=n, scans=scans)
    assert speedup >= gate(1.2)


def test_path_parse_interning():
    """Repeated parses of a working set: dict hit vs full tokenize."""
    distinct = 40 * SCALE
    repeats = 25
    rng = random.Random(3)
    texts = [make_loc(rng, i) for i in range(distinct)]

    def seed_parse():
        total = 0
        for _ in range(repeats):
            for text in texts:
                total += len(seed_parse_path(text))
        return total

    def new_parse():
        total = 0
        for _ in range(repeats):
            for text in texts:
                total += len(Path.parse(text))
        return total

    assert seed_parse() == new_parse()
    # behavior-preserving identity: same text -> same object
    assert Path.parse(texts[0]) is Path.parse(texts[0])
    assert Path.parse(texts[0]) == seed_parse_path(texts[0])
    seed_s, new_s = gated_ab(seed_parse, new_parse, 3.0)
    speedup = record(
        "path_parse_interned",
        seed_s,
        new_s,
        3.0,
        distinct=distinct,
        repeats=repeats,
    )
    assert speedup >= gate(3.0)


def test_records_under_read_path():
    """The Mod access path end to end: prefix scan + record materialize."""
    n = 300 * SCALE
    queries = 15 * SCALE
    rng = random.Random(11)
    table = ProvTable()
    records = [
        ProvRecord(tid=i + 1, op="I", loc=Path.parse(make_loc(rng, i)))
        for i in range(n)
    ]
    table.write_batch(records, category="bench")
    roots = [Path.parse(f"T/c{i}") for i in range(40)]

    def run_queries():
        total = 0
        for i in range(queries):
            total += len(table.records_under(roots[i % len(roots)]))
        return total

    assert run_queries() > 0
    elapsed = timed(run_queries)
    _RESULTS["records_under"] = {
        "new_s": round(elapsed, 6),
        "params": {"rows": n, "queries": queries},
    }
    print(f"\n[micro] records_under: {elapsed * 1e3:.1f}ms "
          f"({queries} queries over {n} rows)")


def test_prov_batched_locs():
    """Batched location probes: ``records_at_locs`` answers N probed
    locations with *one* multi-range pass over the ``(loc, tid)`` index
    (counter-asserted) vs the seed path — one full range-scan setup plus
    two fresh bisections per location (the loop this PR removed from
    ``records_at_locs``).  Probes are batched per subtree, as the real
    callers batch them (stored procedures probe a subtree's members,
    ``_fetch_for`` probes ancestor chains), so the probed locations form
    adjacent runs in the index and the batched sweep's cursor replaces
    most bisections with one comparison.  The store always *charged*
    one round trip for the batch; this closes the wall-time side of
    that charged-cost/wall-time split."""
    n = 3_000 * SCALE
    probes = 150 * SCALE
    repeats = 8
    rng = random.Random(31)
    prov = ProvTable()
    records = [
        ProvRecord(tid=i + 1, op="I", loc=Path.parse(make_loc(rng, i)))
        for i in range(n)
    ]
    prov.write_batch(records, category="bench")
    # probe whole subtrees: every live loc under a sampled parent node
    by_parent: dict = {}
    for prov_record in records:
        text = str(prov_record.loc)
        by_parent.setdefault(text.rsplit("/", 1)[0], []).append(text)
    locs: list = []
    for parent in rng.sample(sorted(by_parent), len(by_parent)):
        if len(locs) >= probes:
            break
        locs.extend(sorted(by_parent[parent]))
    locs = locs[:probes]
    index_name = f"{prov.table_name}_loc"
    table = prov._table

    def serial():
        # the seed records_at_locs, verbatim: one range scan per
        # location, each materialized by _loc_rows into its own list
        rows = []
        for text in locs:
            rows.extend(
                [
                    row
                    for _rid, row in table.range_scan(
                        index_name, low=(text,), high=(text, MAX_KEY)
                    )
                ]
            )
        return rows

    def batched():  # the records_at_locs path: one sort-free union pass
        ranges = [((text,), (text, MAX_KEY), True, True) for text in sorted(locs)]
        return [
            row
            for _rid, row in table.multi_range_scan(
                index_name, ranges, presorted=True
            )
        ]

    assert sorted(serial()) == sorted(batched())  # identical row sets
    before = dict(table.access_counts)
    result = prov.records_at_locs([Path.parse(text) for text in locs], category="bench")
    assert len(result) == probes
    assert table.access_counts["multi_range_scan"] == before["multi_range_scan"] + 1
    assert table.access_counts["range_scan"] == before["range_scan"]  # one pass, not N

    def run_serial():
        for _ in range(repeats):
            serial()

    def run_batched():
        for _ in range(repeats):
            batched()

    seed_s, new_s = gated_ab(run_serial, run_batched, 2.0)
    speedup = record(
        "prov_batched_locs", seed_s, new_s, 2.0, rows=n, locs=probes, repeats=repeats
    )
    assert speedup >= gate(2.0)


def test_planner_range_scan():
    """Range + ORDER BY + LIMIT through the planner: the seed planner
    (``plan_query(naive=True)`` — forced SeqScan + Filter + Sort) pays a
    full scan and sort per query; the range-aware planner maps the
    interval onto the ordered index, elides the sort, and streams the
    limit."""
    n = 4_000 * SCALE
    query_count = 40
    span = max(n // 100, 50)
    table = Table(
        TableSchema(
            "ev",
            [
                Column("k", ColumnType.INT, nullable=False),
                Column("v", ColumnType.TEXT, nullable=False),
            ],
            indexes=(IndexSpec("ev_k", ("k",), ordered=True),),
        )
    )
    ks = list(range(n))
    random.Random(19).shuffle(ks)
    for k in ks:
        table.insert((k, f"v{k}"))
    tables = {"ev": table}
    rng = random.Random(29)
    windows = [
        (lo, lo + span) for lo in (rng.randrange(n - span) for _ in range(query_count))
    ]

    def make_query(lo, hi):
        return Query(
            TableRef("ev"),
            where=And(Cmp(">=", Col("k"), Const(lo)), Cmp("<", Col("k"), Const(hi))),
            order_by=[(Col("k"), False)],
            limit=span // 2,
        )

    def run(naive):
        total = 0
        for lo, hi in windows:
            plan = plan_query(tables, make_query(lo, hi), naive=naive)
            for env in plan.execute():
                total += env["k"] & 1
        return total

    assert run(True) == run(False)  # k is unique: the windows are identical
    seed_s, new_s = gated_ab(lambda: run(True), lambda: run(False), 3.0)
    speedup = record(
        "planner_range_scan",
        seed_s,
        new_s,
        3.0,
        rows=n,
        queries=query_count,
        span=span,
    )
    assert speedup >= gate(3.0)


def _join_bench_tables(n_fact: int, groups: int):
    """A skewed join workload: two big fact tables joined on a unique
    key, plus a small filtered dimension hanging off a grouped column."""
    fact_a = Table(
        TableSchema(
            "fa",
            [
                Column("k", ColumnType.INT, nullable=False),
                Column("va", ColumnType.TEXT, nullable=False),
            ],
            indexes=(IndexSpec("fa_k", ("k",), ordered=True),),
        )
    )
    fact_b = Table(
        TableSchema(
            "fb",
            [
                Column("k", ColumnType.INT, nullable=False),
                Column("g", ColumnType.INT, nullable=False),
                Column("vb", ColumnType.TEXT, nullable=False),
            ],
            indexes=(
                IndexSpec("fb_k", ("k",), ordered=True),
                IndexSpec("fb_g", ("g", "k"), ordered=True),
            ),
        )
    )
    dim = Table(
        TableSchema(
            "dm",
            [
                Column("g", ColumnType.INT, nullable=False),
                Column("tag", ColumnType.INT, nullable=False),
            ],
        )
    )
    ks = list(range(n_fact))
    random.Random(41).shuffle(ks)
    for k in ks:
        fact_a.insert((k, f"a{k}"))
        fact_b.insert((k, k % groups, f"b{k}"))
    for g in range(groups):
        dim.insert((g, (g * 7) % groups))
    return {"fa": fact_a, "fb": fact_b, "dm": dim}


def test_join_index_nlj():
    """A small driver joined to a big indexed table: the as-written
    left-deep hash join (the PR 4 join path and the naive oracle alike)
    materializes and hashes the whole fact table per query, while the
    IndexNestedLoopJoin probes it with one batched multi-range pass per
    driver chunk."""
    n_fact = 2_000 * SCALE
    n_driver = 60
    repeats = 6
    tables = _join_bench_tables(n_fact, groups=64)
    driver = Table(
        TableSchema(
            "dr",
            [
                Column("k", ColumnType.INT, nullable=False),
                Column("tag", ColumnType.TEXT, nullable=False),
            ],
        )
    )
    rng = random.Random(43)
    for k in sorted(rng.sample(range(n_fact), n_driver)):
        driver.insert((k, f"t{k}"))
    tables = dict(tables, dr=driver)
    query = Query(
        TableRef("dr", "d"),
        joins=[JoinSpec(TableRef("fa", "f"), Col("d.k"), Col("f.k"))],
    )
    plan = plan_query(tables, query)
    assert "IndexNestedLoopJoin" in plan.describe()

    totals = []

    def run(naive):
        total = 0
        for _ in range(repeats):
            for env in plan_query(tables, query, naive=naive).execute():
                total += 1
        totals.append(total)

    seed_s, new_s = gated_ab(lambda: run(True), lambda: run(False), 3.0)
    assert len(set(totals)) == 1 and totals[0] == n_driver * repeats
    speedup = record(
        "join_index_nlj", seed_s, new_s, 3.0, fact_rows=n_fact, driver_rows=n_driver,
        repeats=repeats,
    )
    assert speedup >= gate(3.0)


def test_join_reorder():
    """A skewed 3-table chain written worst-first: ``fa JOIN fb ON k
    JOIN dm ON g WHERE dm.tag = 3``.  As written (the naive oracle and
    the old planner), the two big fact tables hash-join first and the
    selective dimension filter prunes last; the join-graph planner
    starts from the filtered dimension and probes outward through the
    ``(g, k)`` and ``k`` indexes — the star-join shape."""
    n_fact = 2_000 * SCALE
    groups = 64
    repeats = 4
    tables = _join_bench_tables(n_fact, groups)
    query = Query(
        TableRef("fa", "x"),
        joins=[
            JoinSpec(TableRef("fb", "y"), Col("x.k"), Col("y.k")),
            JoinSpec(TableRef("dm", "z"), Col("y.g"), Col("z.g")),
        ],
        where=Cmp("=", Col("z.tag"), Const(3)),
    )
    plan = plan_query(tables, query)
    rendered = plan.describe()
    assert "IndexNestedLoopJoin" in rendered  # reordered: dm drives

    totals = []

    def run(naive):
        total = 0
        for _ in range(repeats):
            for env in plan_query(tables, query, naive=naive).execute():
                total += 1
        totals.append(total)

    seed_s, new_s = gated_ab(lambda: run(True), lambda: run(False), 3.0)
    assert len(set(totals)) == 1 and totals[0] > 0
    speedup = record(
        "join_reorder", seed_s, new_s, 3.0, fact_rows=n_fact, groups=groups,
        repeats=repeats,
    )
    assert speedup >= gate(3.0)


def test_bulk_index_build():
    """Index lifecycle: ``OrderedIndex.bulk_build`` (sort once, slice
    into blocks) vs the prior backfill path (the blocked index grown one
    ``insert`` at a time — what ``Table.create_index`` and snapshot
    restore did before the unified lifecycle)."""
    n = 30_000 * SCALE
    keys = make_keys(n)
    entries = [(key, rowid) for rowid, key in enumerate(keys)]

    def build_incremental():
        index = OrderedIndex("bench")
        for key, rowid in entries:
            index.insert(key, rowid)
        return index

    def build_bulk():
        return OrderedIndex.bulk_build("bench", entries)

    # observational equivalence at a cheap size (the hypothesis property
    # in tests/test_index_properties.py covers this exhaustively)
    small = entries[: n // 20]
    incremental = OrderedIndex("check")
    for key, rowid in small:
        incremental.insert(key, rowid)
    assert list(OrderedIndex.bulk_build("check", small).items()) == list(
        incremental.items()
    )

    seed_s, new_s = gated_ab(build_incremental, build_bulk, 2.0)
    speedup = record("bulk_index_build", seed_s, new_s, 2.0, n=n)
    assert speedup >= gate(2.0)


def make_xml_store(molecules: int) -> XMLDatabase:
    children = {}
    for i in range(molecules):
        children[f"molecule{{M{i}}}"] = {
            "name": f"mol{i}",
            "interactions": {
                f"interaction{{{j}}}": {"partner": f"M{(i + j) % molecules}"}
                for j in range(i % 3)
            },
        }
    db = XMLDatabase()
    db.load_tree(Tree.from_dict({"molecules": children}))
    return db


def test_xml_indexed_lookup():
    """Descendant XPath steps through the OrderedIndex-backed element
    index vs the prior path without an index: exporting the whole store
    as a value tree and walking it per query."""
    molecules = 150 * SCALE
    db = make_xml_store(molecules)
    index = ElementIndex(db)
    expressions = ["//name", "//partner", "//interactions", "//interaction"] * 3

    def run_unindexed():
        total = 0
        for expression in expressions:
            total += len(XPath(expression).evaluate(db.subtree(Path())))
        return total

    def run_indexed():
        total = 0
        for expression in expressions:
            total += len(evaluate_indexed(db, index, expression))
        return total

    assert run_unindexed() == run_indexed()  # identical result sets
    seed_s, new_s = gated_ab(run_unindexed, run_indexed, 2.0)
    speedup = record(
        "xml_indexed_lookup",
        seed_s,
        new_s,
        2.0,
        nodes=db.node_count(),
        queries=len(expressions),
    )
    assert speedup >= gate(2.0)


def test_datalog_incremental_eval():
    """Repeated add_fact → evaluate cycles: the prior engine threw the
    model and every fact index away on each ``add_fact`` and recomputed
    the fixpoint from scratch; the persistent lifecycle restarts
    semi-naive iteration from the previous model with the new fact as
    the delta."""
    n = 25 * SCALE
    rounds = 6
    edges = [(i, i + 1) for i in range(n)]

    def build():
        program = Program()
        program.add_facts("edge", edges)
        x, y, z = Var("X"), Var("Y"), Var("Z")
        # right-recursive closure: the edge literal leads, so a delta on
        # edge restricts the first literal instead of rescanning path
        program.add_rule(Rule(Atom("path", (x, y)), (Literal(Atom("edge", (x, y))),)))
        program.add_rule(
            Rule(
                Atom("path", (x, z)),
                (Literal(Atom("edge", (x, y))), Literal(Atom("path", (y, z)))),
            )
        )
        return program

    results = []

    def run(incremental):
        program = build()
        program.evaluate()
        for round_no in range(rounds):
            program.add_fact("edge", (-round_no, 0))
            if not incremental:
                # the seed behavior: add_fact invalidated everything, so
                # every evaluate() was a from-scratch recompute
                program._invalidate()
            program.evaluate()
        results.append(program.query("path"))

    seed_s, new_s = gated_ab(lambda: run(False), lambda: run(True), 2.0)
    assert len({frozenset(model) for model in results}) == 1  # identical models
    speedup = record(
        "datalog_incremental_eval", seed_s, new_s, 2.0, edges=n, rounds=rounds
    )
    assert speedup >= gate(2.0)


def test_wal_checksummed_append(tmp_path):
    """WAL v2 framing tax: per-record CRC + LSN + segment bookkeeping vs
    a replica of the v1 append path (encode + bare length prefix +
    buffered write).  This gate points *backwards*: the v2 path does
    strictly more work per record, so the assertion is an overhead
    ceiling, not a speedup floor — the checksummed append must stay
    within 1.5x of the v1 cost (speedup >= 1/1.5 ~= 0.67)."""
    from repro.storage.wal import WalRecord, WriteAheadLog, _encode_payload
    from repro.storage.wal import KIND_INSERT

    n = 4_000 * SCALE
    schema = TableSchema(
        "t",
        [Column("id", ColumnType.INT, nullable=False), Column("v", ColumnType.TEXT)],
        primary_key=("id",),
    )
    schemas = {"t": schema}
    records = [WalRecord(KIND_INSERT, 1, "t", (i, f"v{i}")) for i in range(n)]

    class SeedV1Log:
        """The v1 append path, verbatim in spirit: no checksum, no LSN,
        no segment header, no rotation check."""

        def __init__(self, path):
            self._file = open(path, "ab")

        def append(self, record):
            payload = _encode_payload(record, schemas)
            self._file.write(struct.pack("<I", len(payload)) + payload)

        def close(self):
            self._file.close()

    def run_seed():
        log = SeedV1Log(str(tmp_path / "seed.wal.v1"))
        for rec in records:
            log.append(rec)
        log.close()

    def run_new():
        log = WriteAheadLog(str(tmp_path / "new.wal"), schemas)
        for rec in records:
            log.append(rec)
        log.close()
        for segment in log.segment_paths():
            os.remove(segment)

    # the checksummed log must still round-trip what it wrote
    probe = WriteAheadLog(str(tmp_path / "probe.wal"), schemas)
    for rec in records[:50]:
        probe.append(rec)
    probe.flush()
    assert [r.row for r in probe.scan(mode="strict")] == [
        r.row for r in records[:50]
    ]
    probe.close()

    floor = 0.67  # 1 / the 1.5x overhead ceiling
    seed_s, new_s = gated_ab(run_seed, run_new, floor)
    speedup = record("wal_checksummed_append", seed_s, new_s, floor, n=n)
    assert speedup >= gate(floor), (
        f"checksummed append costs {1 / speedup:.2f}x the v1 path "
        f"(ceiling 1.5x)"
    )


def test_compiled_filter():
    """Residual predicate evaluation per row: the interpreted
    ``Expr.eval`` tree walk (virtual dispatch + operand recursion per
    row) vs the closure ``compile_expr`` builds once per plan.  The
    floor is modest — both sides are Python — but the compiled form is
    what every FilterNode and join residual now runs, so it gates the
    per-row regression budget."""
    from repro.storage.expr import compile_expr

    n = 6_000 * SCALE
    repeats = 10
    rng = random.Random(53)
    envs = [
        {"k": rng.randrange(n), "g": rng.randrange(16), "s": make_loc(rng, i)}
        for i in range(n)
    ]
    predicate = And(
        Cmp(">=", Col("k"), Const(n // 10)),
        Cmp("<", Col("k"), Const(n - n // 10)),
        Cmp("=", Col("g"), Const(3)),
    )
    compiled = compile_expr(predicate)
    assert [predicate.eval(e) for e in envs] == [bool(compiled(e)) for e in envs]

    def run_interpreted():
        total = 0
        for _ in range(repeats):
            evaluate = predicate.eval
            total += sum(1 for env in envs if evaluate(env))
        return total

    def run_compiled():
        total = 0
        for _ in range(repeats):
            fn = compile_expr(predicate)  # built once per "plan", as in FilterNode
            total += sum(1 for env in envs if fn(env))
        return total

    assert run_interpreted() == run_compiled()
    seed_s, new_s = gated_ab(run_interpreted, run_compiled, 1.3)
    speedup = record("compiled_filter", seed_s, new_s, 1.3, rows=n, repeats=repeats)
    assert speedup >= gate(1.3)


def test_plan_cache_repeat_qps():
    """End-to-end repeated-query throughput through ``Database.execute``:
    one query shape, literals drawn from a Table-2 update-pattern script
    (the curation workload's access pattern — the same provenance
    locations probed again and again as transactions revisit a working
    set).  The cached database answers from the plan cache (exact hits
    when a literal repeats, statistics-snapshot re-plans otherwise);
    the ``plan_cache_size=0`` baseline re-plans with live statistics on
    every call.  Gate: cached throughput >= 2x uncached."""
    from repro.storage.db import Database
    from repro.workloads.patterns import generate_pattern
    from repro.workloads.synth import (
        mimi_like_tree,
        organelledb_like,
        source_subtree_paths,
    )

    rows = 1_500 * SCALE
    repeats = 3
    # literals come from a generated pattern script: the concrete paths
    # its inserts/copies/deletes touch, revisited round-robin
    source = organelledb_like(n_proteins=30, seed=5)
    script = generate_pattern(
        "mix", 120, mimi_like_tree(n_molecules=10, seed=6),
        source_subtree_paths(source), seed=9,
    )
    locs = []
    for update in script:
        if hasattr(update, "path"):  # Insert / Delete
            locs.append(f"T/{update.path}/{update.label}")
        else:  # Copy
            locs.append(str(update.dst))
    assert len(locs) >= 100

    schema = TableSchema(
        "prov",
        [
            Column("tid", ColumnType.INT, nullable=False),
            Column("op", ColumnType.TEXT, nullable=False),
            Column("loc", ColumnType.TEXT, nullable=False),
        ],
        primary_key=("tid",),
        indexes=(IndexSpec("prov_loc", ("loc", "tid"), ordered=True),),
    )

    def build(plan_cache_size):
        db = Database("qps", plan_cache_size=plan_cache_size)
        table = db.create_table(schema)
        rng = random.Random(61)
        batch = [
            (i, "I", locs[i % len(locs)] if i % 3 else make_loc(rng, i))
            for i in range(rows)
        ]
        table.bulk_insert(batch)
        return db

    def make_query(loc):
        return Query(
            TableRef("prov"),
            where=Cmp("=", Col("loc"), Const(loc)),
            order_by=[(Col("tid"), False)],
        )

    counts = []

    def run(db):
        total = 0
        for _ in range(repeats):
            for loc in locs:
                total += len(db.execute(make_query(loc)))
        counts.append(total)

    cached_db = build(128)
    uncached_db = build(0)
    seed_s, new_s = gated_ab(lambda: run(uncached_db), lambda: run(cached_db), 2.0)
    assert len(set(counts)) == 1 and counts[0] > 0  # identical answers
    stats = cached_db.stats()["plan_cache"]
    assert stats["hits"] > 0  # repeated literals became exact hits
    queries = repeats * len(locs)
    speedup = record(
        "plan_cache_repeat_qps", seed_s, new_s, 2.0,
        rows=rows, queries=queries,
        cached_qps=round(queries / new_s, 1),
        uncached_qps=round(queries / seed_s, 1),
    )
    assert speedup >= gate(2.0)


def test_datalog_indexed_join():
    """Transitive closure over a chain: per-binding probes vs full-set
    unification on the ``edge`` literal (use_fact_indexes=False is the
    seed behavior)."""
    n = 12 * SCALE
    edges = [(i, i + 1) for i in range(n)]

    def solve(use_fact_indexes):
        program = Program(use_fact_indexes=use_fact_indexes)
        program.add_facts("edge", edges)
        x, y, z = Var("X"), Var("Y"), Var("Z")
        program.add_rule(Rule(Atom("path", (x, y)), (Literal(Atom("edge", (x, y))),)))
        program.add_rule(
            Rule(
                Atom("path", (x, z)),
                (Literal(Atom("path", (x, y))), Literal(Atom("edge", (y, z)))),
            )
        )
        return program.query("path")

    assert solve(False) == solve(True)  # identical models
    seed_s, new_s = gated_ab(lambda: solve(False), lambda: solve(True), 5.0)
    speedup = record("datalog_indexed_join", seed_s, new_s, 5.0, edges=n)
    assert speedup >= gate(5.0)


def test_xml_axis_scan():
    """Descendant axis scans off the interval encoding: one staircase
    multi-range sweep of the ``(base_label, pre)`` index per (contexts,
    label) pair (counter-asserted) vs the seed evaluator — a pointer DFS
    from every context node that visits and label-tests each descendant.
    The interval side's work is proportional to the *matches*; the
    walk's is proportional to the subtree sizes, which is why the gap
    widens with fan-out."""
    molecules = 150 * SCALE
    db = make_xml_store(molecules)
    index = ElementIndex(db)
    contexts = list(index.lookup_iter("molecule"))  # document (pre) order
    labels = ["interaction", "partner", "name"]
    repeats = 4

    def walk_axis(label: str) -> list:
        # the seed descendant step, verbatim: depth-first pointer chase
        # from each context, label-testing every visited node
        out = []
        for root in contexts:
            stack = [
                cid
                for _label, cid in sorted(
                    db._nodes[root].children.items(), reverse=True
                )
            ]
            while stack:
                nid = stack.pop()
                node_label = db.label_of(nid)
                if node_label == label or base_label(node_label) == label:
                    out.append(nid)
                stack.extend(
                    cid
                    for _label, cid in sorted(
                        db._nodes[nid].children.items(), reverse=True
                    )
                )
        return out

    for label in labels:  # identical ids, identical document order
        assert walk_axis(label) == descendants_by_label(db, contexts, label)

    before = dict(db.access_counts)
    matched = descendants_by_label(db, contexts, "partner")
    assert matched
    assert db.access_counts["multi_range_scan"] == before["multi_range_scan"] + 1
    assert db.access_counts["range_scan"] == before["range_scan"]  # no per-node reads

    def run_walk():
        for _ in range(repeats):
            for label in labels:
                walk_axis(label)

    def run_interval():
        for _ in range(repeats):
            for label in labels:
                descendants_by_label(db, contexts, label)

    seed_s, new_s = gated_ab(run_walk, run_interval, 3.0)
    speedup = record(
        "xml_axis_scan",
        seed_s,
        new_s,
        3.0,
        nodes=db.node_count(),
        contexts=len(contexts),
        labels=len(labels),
        repeats=repeats,
    )
    assert speedup >= gate(3.0)


def test_prov_ancestor_coverage():
    """Ancestor-coverage probes (the hot inner fetch of ``infer_at``,
    ``trace`` and ``getMod``): the whole probe chain of a deep location
    resolves in one presorted multi-range pass with the ``tid <= bound``
    cut pushed into the index tail (counter-asserted) vs the seed
    ``_fetch_for`` — one separate index probe per ancestor, each
    fetching and parsing *all* tids at that location and filtering the
    time-travel bound client-side, because the seed's per-loc lookup
    could not push a tid range into its ``(loc,)`` key."""
    n_chains = 40 * SCALE
    depth = 12
    history = 24  # records per touched location, spread across tids
    rng = random.Random(47)
    prov = ProvTable()
    texts, records, tid = [], [], 0
    for c in range(n_chains):
        segments = [f"T/g{c % 25}/m{c}"] + [f"n{d}" for d in range(depth)]
        texts.append("/".join(segments))
        parts = texts[-1].split("/")
        for cut in rng.sample(range(2, len(parts)), 4):
            for _ in range(history):
                tid += 1
                records.append(
                    ProvRecord(tid, "I", Path.parse("/".join(parts[:cut])))
                )
    rng.shuffle(records)  # histories interleave across locations
    prov.write_batch(records, category="bench")
    bound = tid // 16  # deep time travel: most of each history is out of window
    chains = [Path.parse(text).probe_chain() for text in texts]
    index_name = f"{prov.table_name}_loc"
    table = prov._table

    def serial():
        # the seed _fetch_for, verbatim: one index probe per ancestor,
        # every row at the location parsed and sorted (the seed's (loc,)
        # key has no tid component), the version window filtered after
        out = []
        for chain in chains:
            rows = []
            for ancestor in chain:
                text = str(ancestor)
                rows.extend(
                    row
                    for _rid, row in table.range_scan(
                        index_name, low=(text,), high=(text, MAX_KEY)
                    )
                )
            fetched = sorted(
                (ProvRecord.from_row(row) for row in rows), key=_record_order
            )
            out.extend(rec for rec in fetched if rec.tid <= bound)
        return out

    def batched():  # records_at_locs: one probe pass, bound in the tail
        out = []
        for chain in chains:
            out.extend(
                prov.records_at_locs(chain, category="bench", max_tid=bound)
            )
        return out

    assert [rec.as_row() for rec in serial()] == [
        rec.as_row() for rec in batched()
    ]  # identical record sequences
    before = dict(table.access_counts)
    result = prov.records_at_locs(chains[0], category="bench", max_tid=bound)
    assert result is not None
    assert table.access_counts["inlj_probe"] == before["inlj_probe"] + 1
    assert table.access_counts["multi_range_scan"] == before["multi_range_scan"] + 1
    assert table.access_counts["range_scan"] == before["range_scan"]  # one pass

    seed_s, new_s = gated_ab(serial, batched, 3.0)
    speedup = record(
        "prov_ancestor_coverage",
        seed_s,
        new_s,
        3.0,
        rows=len(records),
        chains=n_chains,
        chain_len=depth + 3,
        history=history,
        bound=bound,
    )
    assert speedup >= gate(3.0)
