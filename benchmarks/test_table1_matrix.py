"""Table 1: the experiment matrix.

Checks that the harness's experiment definitions match the paper's
summary table and prints it.
"""

from __future__ import annotations

from repro.bench import EXPERIMENTS, render_table1


def test_table1_matrix(benchmark):
    table = benchmark.pedantic(render_table1, rounds=1, iterations=1)
    print()
    print(table)

    by_id = {experiment["id"]: experiment for experiment in EXPERIMENTS}
    assert set(by_id) == {1, 2, 3, 4, 5}

    assert by_id[1]["length"] == 3500
    assert by_id[1]["patterns"] == ("add", "delete", "copy", "ac-mix", "mix")
    assert by_id[2]["length"] == 14000
    assert by_id[2]["patterns"] == ("mix", "real")
    assert by_id[3]["patterns"] == (
        "del-random", "del-add", "del-copy", "del-mix", "del-real"
    )
    assert by_id[4]["txn_length"] == (7, 100, 500, 1000)
    assert by_id[4]["methods"] == ("HT",)
    assert by_id[5]["measured"] == "query time"
    for experiment in EXPERIMENTS:
        if experiment["id"] != 4:
            assert experiment["methods"] == ("N", "H", "T", "HT")
