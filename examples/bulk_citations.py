"""Bulk updates and approximate provenance (Section 6).

"It is common in curated databases to copy citation data from standard
sources, and it may be laborious to do this for thousands of
citations."  This example:

1. bulk-copies every citation of one journal from a PubMed-like source
   into the curated database, as a single transaction (the natural
   setting for transactional provenance);
2. bulk-inserts a curation flag under every imported citation;
3. records *approximate* provenance — one wildcard-pattern link instead
   of hundreds of exact links — and shows the three-valued queries the
   approximation supports ("may have come from" / "cannot have come
   from").

Run:  python examples/bulk_citations.py
"""

from repro.common.clock import VirtualClock
from repro.core.approx import ApproxProvStore
from repro.core.bulk import BulkUpdater
from repro.core.editor import CurationEditor
from repro.core.provenance import ProvTable
from repro.core.stores import make_store
from repro.core.tree import Tree
from repro.wrappers.memory import MemorySourceDB, MemoryTargetDB


def build_pubmed(n: int = 40) -> Tree:
    citations = {}
    for index in range(n):
        pmid = f"pmid{10000000 + index}"
        citations[pmid] = {
            "title": f"On the curation of scientific record {index}",
            "journal": "J Curated Biol" if index % 2 == 0 else "Nucleic Acids Res",
            "year": 1998 + (index % 9),
        }
    return Tree.from_dict({"citations": citations})


def main() -> None:
    pubmed = MemorySourceDB("PubMed", build_pubmed())
    mydb = MemoryTargetDB("MyDB", Tree.from_dict({"refs": {}}))

    store = make_store("T", ProvTable(clock=VirtualClock()))
    approx = ApproxProvStore()
    editor = CurationEditor(target=mydb, sources=[pubmed], store=store)
    bulk = BulkUpdater(editor, approx_store=approx)

    # 1. import every J Curated Biol citation, one transaction
    performed = bulk.bulk_copy(
        "PubMed",
        "citations/*[journal='J Curated Biol']",
        "MyDB/refs",
        approximate=True,
    )
    print(f"bulk copy imported {len(performed)} citations in one transaction")

    # 2. flag each imported citation as needing review
    flagged = bulk.bulk_insert("refs/*", "curation_status", "needs-review",
                               approximate=True)
    print(f"bulk insert flagged {len(flagged)} citations")
    print()

    sample = performed[0][1]  # an imported citation's location in MyDB
    print(f"Exact provenance records stored: {store.row_count}")
    print(f"Approximate records stored:      {approx.row_count}")
    print()
    print("Approximate records:")
    for record in approx.records():
        src = f" <- {record.src}" if record.src is not None else ""
        print(f"  (t={record.tid}, {record.op}, {record.loc}{src})")
    print()

    # 3. the three-valued queries approximation supports
    title = sample.child("title")
    candidate = f"PubMed/citations/{sample.last}"
    wrong = "PubMed/citations/pmid99999999"
    print(f"possible sources of {sample}:")
    for tid, src in approx.possible_sources(sample):
        print(f"  t={tid}: {src}")
    print(f"may {sample} have come from {candidate}? ",
          approx.may_have_come_from(sample, candidate))
    print(f"cannot {sample} have come from {wrong}? ",
          approx.cannot_have_come_from(sample, wrong))
    print(f"bulk transactions that may have touched {title}:",
          approx.may_have_been_touched(title))
    print()
    print("Note: the exact store knows precisely; the approximate store "
          "trades certainty for O(1) records per bulk update.")


if __name__ == "__main__":
    main()
