"""Curating a plain directory tree with full provenance.

"Source and target databases can be relational or XML DBMSs, or consist
of files stored in filesystems or Web sites; all are common forms of
scientific databases" (Section 1.3).  This example wraps an ordinary
directory as the curated target:

* the source is the relational engine (an OrganelleDB-like catalog);
* the target is a directory of plain files, updated through the
  provenance-aware editor;
* the provenance store survives alongside, and version archives are
  taken at each commit — so any reference version of the *file tree*
  can be reconstructed and every file's origin queried.

Run:  python examples/filesystem_curation.py
"""

import os
import tempfile

from repro import (
    CurationEditor,
    FileSystemTargetDB,
    ProvTable,
    ProvenanceQueries,
    RelationalSourceDB,
    VersionArchive,
    make_store,
)
from repro.workloads.synth import organelledb_like


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="curated_fsdb_")
    os.makedirs(os.path.join(workdir, "proteins"))

    source_db = organelledb_like(n_proteins=10, seed=3)
    source = RelationalSourceDB("OrganelleDB", source_db)
    target = FileSystemTargetDB("FsDB", workdir)

    archive = VersionArchive()
    store = make_store("HT", ProvTable())
    editor = CurationEditor(
        target=target, sources=[source], store=store, archive=archive
    )

    # Curate: import two protein records (each becomes a directory of
    # field files), then annotate one by hand.
    editor.copy_paste("OrganelleDB/protein/O00000", "FsDB/proteins/O00000")
    editor.copy_paste("OrganelleDB/protein/O00003", "FsDB/proteins/O00003")
    v1 = editor.commit()
    editor.insert("FsDB/proteins/O00000", "curator_note", "checked 2026-06-12")
    v2 = editor.commit()

    print(f"Curated directory: {workdir}")
    for root, _dirs, files in sorted(os.walk(workdir)):
        rel = os.path.relpath(root, workdir)
        for name in sorted(files):
            print(f"  {os.path.join(rel, name)}")
    print()

    note = os.path.join(workdir, "proteins", "O00000", "curator_note")
    with open(note) as handle:
        print(f"curator_note content: {handle.read()!r}")
    print()

    queries = ProvenanceQueries(store, target_name="FsDB")
    print("Provenance of the files:")
    print("  localization of O00000 copied in txn:",
          queries.get_hist("FsDB/proteins/O00000/localization"))
    print("  curator_note typed in txn:",
          queries.get_src("FsDB/proteins/O00000/curator_note"))
    print("  everything touching proteins/:",
          sorted(queries.get_mod("FsDB/proteins")))
    print()

    print(f"Archived reference versions: {archive.version_tids}")
    old = archive.reconstruct(v1)
    print(f"  version {v1} had curator_note:",
          old.contains_path("proteins/O00000/curator_note"))
    new = archive.reconstruct(v2)
    print(f"  version {v2} has curator_note:",
          new.contains_path("proteins/O00000/curator_note"))


if __name__ == "__main__":
    main()
