"""Data availability: reconstructing a vanished source (Section 5).

Two curated databases T1 and T2 are built by copying from a shared
source S, with provenance stores P1 and P2.  Then S disappears.  The
provenance records — "impossible to reproduce, so potentially priceless"
— let us partially reconstruct S from the surviving copies, and even
surface disagreements between the two targets.

Run:  python examples/lost_source_recovery.py
"""

from repro.common.clock import VirtualClock
from repro.core.editor import CurationEditor
from repro.core.provenance import ProvTable
from repro.core.recovery import Contributor, reconstruct_source
from repro.core.stores import make_store
from repro.core.tree import Tree
from repro.wrappers.memory import MemorySourceDB, MemoryTargetDB


def make_source() -> Tree:
    return Tree.from_dict({
        "prot1": {"name": "ABC1", "organism": "H.sapiens", "loc": "membrane"},
        "prot2": {"name": "CRP", "organism": "H.sapiens", "loc": "serum"},
        "prot3": {"name": "TOR1", "organism": "S.cerevisiae", "loc": "vacuole"},
    })


def build_target(name: str, source: MemorySourceDB):
    store = make_store("HT", ProvTable(clock=VirtualClock()))
    target = MemoryTargetDB(name, Tree.from_dict({"data": {}}))
    editor = CurationEditor(target=target, sources=[source], store=store)
    return editor, store


def main() -> None:
    source = MemorySourceDB("S", make_source())

    # T1 copies prot1 and prot2; T2 copies prot2 and prot3.
    editor1, store1 = build_target("T1", source)
    editor1.copy_paste("S/prot1", "T1/data/prot1")
    editor1.copy_paste("S/prot2", "T1/data/prot2")
    editor1.commit()
    # T1's curator then *edits* a copied value (it is no longer evidence
    # for S's contents) ...
    editor1.delete("T1/data/prot1/loc")
    editor1.insert("T1/data/prot1", "loc", "plasma membrane")
    editor1.commit()

    # T2 copied later, after S silently changed prot2's name — the classic
    # curated-database hazard ("the databases from which the data was
    # copied have changed", Section 1.1.1).  The two targets now hold
    # different values with equally pristine provenance.
    drifted = make_source()
    drifted.resolve("prot2").remove_child("name")
    drifted.resolve("prot2").add_child("name", Tree.leaf("CRP-beta"))
    editor2, store2 = build_target("T2", MemorySourceDB("S", drifted))
    editor2.copy_paste("S/prot2", "T2/data/p2")     # pasted under another name
    editor2.copy_paste("S/prot3", "T2/data/p3")
    editor2.commit()

    print("--- S vanishes. Reconstructing it from T1 and T2 ---\n")
    result = reconstruct_source(
        "S",
        [
            Contributor("T1", store1, editor1.target_tree()),
            Contributor("T2", store2, editor2.target_tree()),
        ],
    )

    print(f"Recovered {result.recovered_leaves} leaf values of S:")
    print(result.tree.render())
    print()
    print("Evidence (which surviving database vouches for each value):")
    for src_path, names in sorted(result.evidence.items(), key=lambda kv: str(kv[0])):
        print(f"  {src_path}: {', '.join(names)}")
    print()
    if result.conflicts:
        print("Conflicts (contributors disagree; kept out of the tree):")
        for conflict in result.conflicts:
            claims = ", ".join(f"{name}={value!r}" for name, value in conflict.claims)
            print(f"  {conflict.src_path}: {claims}")
    print()
    print("Notes:")
    print(" * T1's edited 'loc' field is correctly NOT claimed as evidence")
    print("   (a later transaction touched it).")
    print(" * prot2/name is reported as a conflict rather than guessed.")
    print(" * Even partial recovery 'may be better than nothing' (Section 5).")


if __name__ == "__main__":
    main()
