"""Walk through the paper's running example: Figures 3, 4, and 5.

Executes the ten-step copy-paste update of Figure 3 against the source
and target databases of Figure 4, under all four provenance storage
methods, and prints the four provenance tables of Figure 5 — which can
be compared row by row with the paper.

Run:  python examples/paper_walkthrough.py
"""

from repro.common.clock import VirtualClock
from repro.core.editor import CurationEditor
from repro.core.provenance import ProvTable
from repro.core.stores import make_store
from repro.core.tree import Tree
from repro.core.updates import parse_script
from repro.wrappers.memory import MemorySourceDB, MemoryTargetDB

FIGURE3 = """
(1) delete c5 from T;
(2) copy S1/a1/y into T/c1/y;
(3) insert {c2 : {}} into T;
(4) copy S1/a2 into T/c2;
(5) insert {y : {}} into T/c2;
(6) copy S2/b3/y into T/c2/y;
(7) copy S1/a3 into T/c3;
(8) insert {c4 : {}} into T;
(9) copy S2/b2 into T/c4;
(10) insert {y : 12} into T/c4;
"""


def fresh_editor(method: str) -> CurationEditor:
    s1 = Tree.from_dict({"a1": {"x": 1, "y": 2}, "a2": {"x": 3}, "a3": {"x": 7, "y": 5}})
    s2 = Tree.from_dict({"b1": {"x": 1, "y": 2}, "b2": {"x": 4}, "b3": {"x": 7, "y": 6}})
    t = Tree.from_dict({"c1": {"x": 1, "y": 3}, "c5": {"x": 9, "y": 7}})
    store = make_store(method, ProvTable(clock=VirtualClock()), first_tid=121)
    return CurationEditor(
        target=MemoryTargetDB("T", t),
        sources=[MemorySourceDB("S1", s1), MemorySourceDB("S2", s2)],
        store=store,
    )


def show(title: str, editor: CurationEditor) -> None:
    print(title)
    print(f"  {'Tid':>4}  {'Op':2}  {'Loc':12}  Src")
    for record in editor.store.records():
        src = str(record.src) if record.src is not None else "⊥"
        print(f"  {record.tid:>4}  {record.op:2}  {str(record.loc):12}  {src}")
    print(f"  ({editor.store.row_count} records)")
    print()


def main() -> None:
    updates = parse_script(FIGURE3)

    print("Figure 3: the update operation")
    for index, update in enumerate(updates, start=1):
        print(f"  ({index}) {update};")
    print()

    # (a) naive: one transaction per operation
    naive = fresh_editor("N")
    naive.run_script(updates)
    print("Figure 4: the resulting target database T'")
    print(naive.target_tree().render())
    print()
    show("Figure 5(a): naive provenance, one transaction per operation", naive)

    # (b) transactional: the entire update as one transaction
    transactional = fresh_editor("T")
    transactional.run_script(updates, commit_every=len(updates))
    show("Figure 5(b): transactional provenance, entire update as one transaction",
         transactional)

    # (c) hierarchical
    hierarchical = fresh_editor("H")
    hierarchical.run_script(updates)
    show("Figure 5(c): hierarchical provenance", hierarchical)

    # (d) hierarchical-transactional
    hier_trans = fresh_editor("HT")
    hier_trans.run_script(updates, commit_every=len(updates))
    show("Figure 5(d): hierarchical-transactional provenance", hier_trans)


if __name__ == "__main__":
    main()
