"""Quickstart: the paper's motivating scenario (Section 1.1.1, Figure 1).

A molecular biologist keeps a small curated database of proteins
involved in cholesterol efflux.  She:

  (a) copies protein records for ABC1 and CRP from a SwissProt-like
      source into her database;
  (b) renames the copied PTM so it is not confused with PTMs from other
      sites;
  (c) copies publication details from OMIM and related data from NCBI;
  (d) notices a mistake in a PubMed publication number and corrects it.

A year later she finds a discrepancy in a PTM — and *because every
action was tracked by the provenance-aware editor*, she can ask where
the data came from instead of discarding it.

Run:  python examples/quickstart.py
"""

from repro.common.clock import VirtualClock
from repro.core.editor import CurationEditor
from repro.core.network import ProvenanceNetwork
from repro.core.provenance import ProvTable
from repro.core.queries import ProvenanceQueries
from repro.core.stores import make_store
from repro.core.tree import Tree
from repro.wrappers.memory import MemorySourceDB, MemoryTargetDB


def build_sources():
    swissprot = Tree.from_dict({
        "O95477": {
            "name": "ABC1",
            "organism": "H.sapiens",
            "PTM": {"kind": "phosphoserine", "position": 2054},
        },
        "P02741": {
            "name": "CRP",
            "organism": "H.sapiens",
            "function": "acute phase response",
        },
    })
    omim = Tree.from_dict({
        "600046": {
            "title": "ATP-BINDING CASSETTE, SUBFAMILY A, MEMBER 1",
            "pubmed": 12504680,
        },
    })
    ncbi = Tree.from_dict({
        "NP_005493": {"gi": 6512, "refseq_status": "REVIEWED"},
    })
    return swissprot, omim, ncbi


def main() -> None:
    swissprot, omim, ncbi = build_sources()

    # MyDB: the biologist's curated target database, initially empty
    # sections for proteins and publications.
    mydb = MemoryTargetDB("MyDB", Tree.from_dict({"proteins": {}, "publications": {}}))

    store = make_store("HT", ProvTable(clock=VirtualClock()))
    editor = CurationEditor(
        target=mydb,
        sources=[
            MemorySourceDB("SwissProt", swissprot),
            MemorySourceDB("OMIM", omim),
            MemorySourceDB("NCBI", ncbi),
        ],
        store=store,
    )

    # (a) copy the interesting proteins from SwissProt
    editor.copy_paste("SwissProt/O95477", "MyDB/proteins/ABC1")
    editor.copy_paste("SwissProt/P02741", "MyDB/proteins/CRP")
    editor.commit()

    # (b) fix the new entry so the SwissProt PTM is not confused with
    #     PTMs found on other sites: move it under a qualified name
    editor.copy_paste("MyDB/proteins/ABC1/PTM", "MyDB/proteins/ABC1/SwissProt-PTM")
    editor.delete("MyDB/proteins/ABC1/PTM")
    editor.commit()

    # (c) copy publication details from OMIM and related data from NCBI
    editor.copy_paste("OMIM/600046", "MyDB/publications/600046")
    editor.copy_paste("NCBI/NP_005493", "MyDB/proteins/ABC1/refseq")
    editor.commit()

    # (d) correct a mistaken PubMed number by hand (an insert of raw data)
    editor.delete("MyDB/publications/600046/pubmed")
    editor.insert("MyDB/publications/600046", "pubmed", 12504680)
    editor.commit()

    print("MyDB after curation:")
    print(editor.target_tree().render())
    print()

    # One year later: where did this anomalous PTM come from?
    queries = ProvenanceQueries(store, target_name="MyDB")
    ptm = "MyDB/proteins/ABC1/SwissProt-PTM/kind"
    print(f"Trace of {ptm}:")
    for step in queries.trace(ptm):
        print(f"  txn {step.tid:3d}  at {step.loc}  "
              f"{step.record if step.record else '(unchanged)'}")
    print()
    print("Hist (transactions that copied it):", queries.get_hist(ptm))
    print("Src (transaction that typed it in):", queries.get_src(ptm),
          "(None: it was copied in, not typed in)")
    print("Src of the corrected pubmed number:",
          queries.get_src("MyDB/publications/600046/pubmed"))
    print("Mod (everything that touched ABC1):",
          sorted(queries.get_mod("MyDB/proteins/ABC1")))
    print()

    # Ownership across databases (the Own query of Section 2.2)
    network = ProvenanceNetwork()
    network.register("MyDB", store)
    print(f"Own({ptm}):")
    for segment in network.own(ptm):
        print(f"  {segment.database:10s}  {segment.loc}  via {segment.via}")

    print()
    print(f"Provenance store: {store.row_count} records, {store.byte_size} bytes")


if __name__ == "__main__":
    main()
