"""repro — a reproduction of *Provenance Management in Curated Databases*
(Buneman, Chapman, Cheney; SIGMOD 2006).

The package implements CPDB, the paper's copy-paste provenance system,
together with every substrate it ran on:

* :mod:`repro.core` — tree data model, the copy-paste update language,
  the four provenance storage strategies (naive, transactional,
  hierarchical, hierarchical-transactional), inference, queries, the
  provenance-aware editor, and the Section 5/6 extensions (archiving,
  multi-database Own, lost-source recovery, approximate provenance,
  bulk updates);
* :mod:`repro.storage` — an embedded relational engine (the MySQL
  substitute) with SQL subset, indexes, WAL and crash recovery;
* :mod:`repro.xmldb` — a native keyed tree/XML store (the Timber
  substitute) with an XPath subset;
* :mod:`repro.datalog` — a Datalog engine running the paper's query
  definitions verbatim;
* :mod:`repro.wrappers` — the Figure 6 contracts over memory,
  relational, XML, and filesystem databases;
* :mod:`repro.workloads` / :mod:`repro.bench` — the evaluation: Table 2/3
  workload generators and the harness regenerating Figures 7-13.

Quick start::

    from repro import CurationEditor, MemorySourceDB, MemoryTargetDB
    from repro import ProvTable, ProvenanceQueries, Tree, make_store

    editor = CurationEditor(
        target=MemoryTargetDB("T", Tree.from_dict({"area": {}})),
        sources=[MemorySourceDB("S", Tree.from_dict({"rec": {"v": 1}}))],
        store=make_store("HT", ProvTable()),
    )
    editor.copy_paste("S/rec", "T/area/rec")
    editor.commit()
    ProvenanceQueries(editor.store).get_hist("T/area/rec")  # -> [1]
"""

from .common.clock import CostModel, VirtualClock
from .core.archive import VersionArchive
from .core.editor import CurationEditor, EditorError
from .core.network import ProvenanceNetwork
from .core.paths import Path, PathError, ROOT
from .core.provenance import (
    OP_COPY,
    OP_DELETE,
    OP_INSERT,
    ProvRecord,
    ProvTable,
    ProvenanceStore,
)
from .core.queries import ProvenanceQueries, TraceStep
from .core.recovery import Contributor, RecoveryResult, reconstruct_source
from .core.stores import (
    HierarchicalStore,
    HierarchicalTransactionalStore,
    NaiveStore,
    TransactionalStore,
    make_store,
)
from .core.tree import Tree, TreeError, Value
from .core.updates import (
    Copy,
    Delete,
    Insert,
    Update,
    UpdateError,
    Workspace,
    apply_sequence,
    apply_update,
    parse_script,
    parse_update,
)
from .wrappers import (
    FileSystemSourceDB,
    FileSystemTargetDB,
    MemorySourceDB,
    MemoryTargetDB,
    RelationalSourceDB,
    SourceDB,
    TargetDB,
    WrapperError,
    XMLSourceDB,
    XMLTargetDB,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # clock
    "VirtualClock",
    "CostModel",
    # data model
    "Path",
    "PathError",
    "ROOT",
    "Tree",
    "TreeError",
    "Value",
    # update language
    "Insert",
    "Delete",
    "Copy",
    "Update",
    "UpdateError",
    "Workspace",
    "apply_update",
    "apply_sequence",
    "parse_update",
    "parse_script",
    # provenance
    "OP_INSERT",
    "OP_COPY",
    "OP_DELETE",
    "ProvRecord",
    "ProvTable",
    "ProvenanceStore",
    "NaiveStore",
    "TransactionalStore",
    "HierarchicalStore",
    "HierarchicalTransactionalStore",
    "make_store",
    "ProvenanceQueries",
    "TraceStep",
    # editor & extensions
    "CurationEditor",
    "EditorError",
    "VersionArchive",
    "ProvenanceNetwork",
    "Contributor",
    "RecoveryResult",
    "reconstruct_source",
    # wrappers
    "SourceDB",
    "TargetDB",
    "WrapperError",
    "MemorySourceDB",
    "MemoryTargetDB",
    "RelationalSourceDB",
    "FileSystemSourceDB",
    "FileSystemTargetDB",
    "XMLSourceDB",
    "XMLTargetDB",
]
