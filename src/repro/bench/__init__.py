"""Benchmark harness: the paper's five experiments (Table 1) and report
rendering for every figure of the evaluation section (Figures 7-13)."""

from .experiments import (
    EXPERIMENTS,
    QueryTimes,
    experiment1,
    experiment2,
    experiment3,
    experiment4,
    experiment5,
    scaled,
)
from .report import (
    render_fig7,
    render_fig8,
    render_fig9,
    render_fig10,
    render_fig11,
    render_fig12,
    render_fig13,
    render_table1,
)

__all__ = [
    "EXPERIMENTS",
    "experiment1",
    "experiment2",
    "experiment3",
    "experiment4",
    "experiment5",
    "QueryTimes",
    "scaled",
    "render_table1",
    "render_fig7",
    "render_fig8",
    "render_fig9",
    "render_fig10",
    "render_fig11",
    "render_fig12",
    "render_fig13",
]
