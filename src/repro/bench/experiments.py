"""The five experiments of Table 1.

===  ======  ===========  ==========================================  =========
Exp  Length  Txn length   Update pattern                              Methods
===  ======  ===========  ==========================================  =========
1    3500    5            add, delete, copy, ac-mix, mix              N H T HT
2    14000   5            mix, real                                   N H T HT
3    14000   5            del-random/-add/-mix/-copy/-real            N H T HT
4    3500    7/100/500/1000  real                                     HT
5    14000   5            real (then getSrc/getMod/getHist queries)   N H T HT
===  ======  ===========  ==========================================  =========

Experiments honour ``REPRO_SCALE`` (a divisor, default 10 so the suite is
CI-friendly) or ``REPRO_FULL_SCALE=1`` for the paper's full lengths.
Scripts are generated once per (pattern, length) and replayed against
every method, as the paper did.
"""

from __future__ import annotations

import os
import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..common.clock import CostModel
from ..core.paths import Path
from ..core.queries import ProvenanceQueries
from ..core.updates import Copy, Insert, Update
from ..workloads.patterns import DELETION_POLICIES
from ..workloads.runner import (
    CurationSetup,
    RunResult,
    build_curation_setup,
    generate_script,
    run_updates,
)

__all__ = [
    "EXPERIMENTS",
    "scaled",
    "experiment1",
    "experiment2",
    "experiment3",
    "experiment4",
    "experiment5",
    "QueryTimes",
]

METHODS = ("N", "H", "T", "HT")

#: Table 1, as data (used by the Table 1 bench and the reports)
EXPERIMENTS = (
    {
        "id": 1, "length": 3500, "txn_length": 5,
        "patterns": ("add", "delete", "copy", "ac-mix", "mix"),
        "methods": METHODS, "measured": "space", "figures": ("7",),
    },
    {
        "id": 2, "length": 14000, "txn_length": 5,
        "patterns": ("mix", "real"),
        "methods": METHODS, "measured": "space, time", "figures": ("8", "9", "10"),
    },
    {
        "id": 3, "length": 14000, "txn_length": 5,
        "patterns": DELETION_POLICIES,
        "methods": METHODS, "measured": "space", "figures": ("11",),
    },
    {
        "id": 4, "length": 3500, "txn_length": (7, 100, 500, 1000),
        "patterns": ("real",),
        "methods": ("HT",), "measured": "time", "figures": ("12",),
    },
    {
        "id": 5, "length": 14000, "txn_length": 5,
        "patterns": ("real",),
        "methods": METHODS, "measured": "query time", "figures": ("13",),
    },
)


def scaled(steps: int) -> int:
    """Apply the REPRO_SCALE / REPRO_FULL_SCALE environment contract."""
    if os.environ.get("REPRO_FULL_SCALE") == "1":
        return steps
    divisor = float(os.environ.get("REPRO_SCALE", "10"))
    return max(50, int(steps / divisor))


def _sizes_for(steps: int) -> Dict[str, int]:
    """Source/target sizes proportional to the workload length (the paper
    used fixed 6 MB / 27 MB datasets; we keep the dataset comfortably
    larger than the touched region)."""
    return {
        "n_proteins": max(300, steps // 4),
        "n_molecules": max(100, steps // 10),
    }


def _run_all_methods(
    pattern: str,
    steps: int,
    txn_length: int,
    seed: int = 7,
    deletion_policy: str = "del-random",
    methods: Sequence[str] = METHODS,
    use_indexes: bool = True,
    updates: Optional[Sequence[Update]] = None,
) -> Dict[str, RunResult]:
    sizes = _sizes_for(steps)
    if updates is None:
        updates = generate_script(
            pattern, steps, seed=seed, deletion_policy=deletion_policy, **sizes
        )
    results: Dict[str, RunResult] = {}
    for method in methods:
        setup = build_curation_setup(method, seed=seed, use_indexes=use_indexes, **sizes)
        result = run_updates(setup, updates, txn_length=txn_length)
        result.pattern = pattern
        results[method] = result
    return results


# ----------------------------------------------------------------------
# Experiment 1 — Figure 7: storage after 3500-step patterns
# ----------------------------------------------------------------------
def experiment1(
    steps: Optional[int] = None, txn_length: int = 5, seed: int = 7
) -> Dict[str, Dict[str, RunResult]]:
    """``{pattern: {method: RunResult}}`` for the five 3500-step patterns."""
    steps = steps if steps is not None else scaled(3500)
    out: Dict[str, Dict[str, RunResult]] = {}
    for pattern in ("add", "delete", "copy", "ac-mix", "mix"):
        out[pattern] = _run_all_methods(pattern, steps, txn_length, seed=seed)
    return out


# ----------------------------------------------------------------------
# Experiment 2 — Figures 8, 9, 10: 14000-step mix and real
# ----------------------------------------------------------------------

#: The real pattern is a 7-operation cycle (copy, 3 adds, 3 deletes of
#: the copied subtree's elements).  The paper's reported transactional
#: savings ("only about 25-35% as many records as the naive approach")
#: require the deletes to cancel against their copy *within one
#: transaction*, i.e. commits aligned with cycles — a curator naturally
#: commits after completing one record import.  Table 1 lists transaction
#: length 5 for experiments 2/5; we use 7 for the real pattern so the
#: cancellation the paper measured actually occurs (EXPERIMENTS.md
#: records this deviation).
REAL_TXN_LENGTH = 7


def experiment2(
    steps: Optional[int] = None, txn_length: int = 5, seed: int = 7
) -> Dict[str, Dict[str, RunResult]]:
    steps = steps if steps is not None else scaled(14000)
    out: Dict[str, Dict[str, RunResult]] = {}
    for pattern in ("mix", "real"):
        pattern_txn = REAL_TXN_LENGTH if pattern == "real" else txn_length
        out[pattern] = _run_all_methods(pattern, steps, pattern_txn, seed=seed)
    return out


# ----------------------------------------------------------------------
# Experiment 3 — Figure 11: deletion patterns, (ac) vs (acd)
# ----------------------------------------------------------------------
def experiment3(
    steps: Optional[int] = None, txn_length: int = 5, seed: int = 7
) -> Dict[str, Dict[str, Dict[str, RunResult]]]:
    """``{policy: {"ac"|"acd": {method: RunResult}}}``.

    The (ac) column runs the same script with the deletes filtered out
    ("provenance table size when only the adds and copies are
    performed"); (acd) runs the full script."""
    steps = steps if steps is not None else scaled(14000)
    sizes = _sizes_for(steps)
    out: Dict[str, Dict[str, Dict[str, RunResult]]] = {}
    for policy in DELETION_POLICIES:
        script = generate_script(
            "mix", steps, seed=seed, deletion_policy=policy, **sizes
        )
        ac_script = [
            update for update in script if isinstance(update, (Insert, Copy))
        ]
        out[policy] = {
            "ac": _run_all_methods(policy, steps, txn_length, updates=ac_script),
            "acd": _run_all_methods(policy, steps, txn_length, updates=script),
        }
    return out


# ----------------------------------------------------------------------
# Experiment 4 — Figure 12: transaction length vs processing time
# ----------------------------------------------------------------------
def experiment4(
    steps: Optional[int] = None,
    txn_lengths: Sequence[int] = (7, 100, 500, 1000),
    seed: int = 7,
) -> Dict[int, RunResult]:
    """HT over the 3500-step real pattern at several transaction sizes."""
    if steps is None:
        # even when scaled down, the run must span several transactions of
        # the largest size or the linear-commit-growth shape degenerates
        steps = max(scaled(3500), 2 * max(txn_lengths))
    sizes = _sizes_for(steps)
    script = generate_script("real", steps, seed=seed, **sizes)
    out: Dict[int, RunResult] = {}
    for txn_length in txn_lengths:
        setup = build_curation_setup("HT", seed=seed, **sizes)
        result = run_updates(setup, script, txn_length=txn_length)
        result.pattern = "real"
        out[txn_length] = result
    return out


# ----------------------------------------------------------------------
# Experiment 5 — Figure 13: provenance query times
# ----------------------------------------------------------------------
@dataclass
class QueryTimes:
    """Average virtual-clock ms per query, per method."""

    method: str
    get_src_ms: float
    get_mod_ms: float
    get_hist_ms: float
    store_rows: int


def _query_locations(updates: Sequence[Update], count: int, seed: int) -> List[Path]:
    """Random query locations: roots the curator created (copy and insert
    destinations), which is where provenance questions are asked."""
    rng = random.Random(seed)
    candidates: List[Path] = []
    for update in updates:
        if isinstance(update, Copy):
            candidates.append(update.dst)
        elif isinstance(update, Insert):
            candidates.append(update.path.child(update.label))
    if not candidates:
        raise ValueError("no query candidates in the script")
    return [rng.choice(candidates) for _ in range(count)]


def experiment5(
    steps: Optional[int] = None,
    txn_length: Optional[int] = None,
    seed: int = 7,
    n_queries: int = 25,
) -> Dict[str, QueryTimes]:
    """Query times after a 14000-step real run, measured without indexes
    on the provenance relation (the paper's worst case)."""
    steps = steps if steps is not None else scaled(14000)
    txn_length = txn_length if txn_length is not None else REAL_TXN_LENGTH
    sizes = _sizes_for(steps)
    script = generate_script("real", steps, seed=seed, **sizes)
    locations = _query_locations(script, n_queries, seed + 13)
    out: Dict[str, QueryTimes] = {}
    for method in METHODS:
        setup = build_curation_setup(
            method, seed=seed, use_indexes=False, **sizes
        )
        run_updates(setup, script, txn_length=txn_length)
        queries = ProvenanceQueries(setup.store)
        timings: Dict[str, float] = {}
        for name, fn in (
            ("get_src", queries.get_src),
            ("get_mod", queries.get_mod),
            ("get_hist", queries.get_hist),
        ):
            before = setup.clock.total("prov.query")
            for loc in locations:
                fn(loc)
            timings[name] = (setup.clock.total("prov.query") - before) / len(locations)
        out[method] = QueryTimes(
            method=method,
            get_src_ms=timings["get_src"],
            get_mod_ms=timings["get_mod"],
            get_hist_ms=timings["get_hist"],
            store_rows=setup.table.row_count,
        )
    return out
