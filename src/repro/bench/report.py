"""Render each figure/table of the evaluation as text.

Every renderer prints the same rows/series the paper's figure plots, so
EXPERIMENTS.md can put paper-claim and measured value side by side.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from ..workloads.runner import RunResult
from .experiments import EXPERIMENTS, QueryTimes

__all__ = [
    "render_table1",
    "render_fig7",
    "render_fig8",
    "render_fig9",
    "render_fig10",
    "render_fig11",
    "render_fig12",
    "render_fig13",
    "format_table",
]

METHODS = ("N", "H", "T", "HT")


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Simple fixed-width table rendering."""
    columns = [list(map(str, column)) for column in zip(headers, *rows)]
    widths = [max(len(cell) for cell in column) for column in columns]
    def render_row(row):
        return "  ".join(str(cell).rjust(width) for cell, width in zip(row, widths))
    lines = [render_row(headers), render_row(["-" * width for width in widths])]
    lines.extend(render_row(row) for row in rows)
    return "\n".join(lines)


def render_table1() -> str:
    rows = []
    for experiment in EXPERIMENTS:
        txn = experiment["txn_length"]
        rows.append(
            (
                experiment["id"],
                experiment["length"],
                ", ".join(map(str, txn)) if isinstance(txn, tuple) else txn,
                ", ".join(experiment["patterns"]),
                ", ".join(experiment["methods"]),
                experiment["measured"],
                ", ".join(experiment["figures"]),
            )
        )
    return "Table 1: Summary of experiments\n" + format_table(
        ("Exp", "Upd. Length", "Trans. Length", "Update Pattern", "Prov. Method",
         "Measured", "Figures"),
        rows,
    )


def render_fig7(results: Dict[str, Dict[str, RunResult]]) -> str:
    """Provenance rows per (pattern, method) after the 3500-step runs."""
    patterns = list(results)
    rows = [
        [method] + [results[pattern][method].prov_rows for pattern in patterns]
        for method in METHODS
    ]
    return (
        "Figure 7: provenance store rows after update patterns\n"
        + format_table(["Method"] + patterns, rows)
    )


def render_fig8(results: Dict[str, Dict[str, RunResult]]) -> str:
    """Rows and physical size for the 14000-step mix/real runs."""
    rows = []
    for method in METHODS:
        row = [method]
        for pattern in ("mix", "real"):
            result = results[pattern][method]
            row.append(result.prov_rows)
            row.append(f"{result.prov_bytes / 1e6:.2f}MB")
        rows.append(row)
    return (
        "Figure 8: provenance store size after 14000-step runs\n"
        + format_table(
            ("Method", "mix rows", "mix size", "real rows", "real size"), rows
        )
    )


def render_fig9(results: Dict[str, Dict[str, RunResult]], pattern: str = "mix") -> str:
    """Average per-operation times (virtual ms) for the 14000-step run."""
    rows = []
    for method in METHODS:
        result = results[pattern][method]
        rows.append(
            (
                method,
                f"{result.avg_ms.get('target.update', 0.0):.1f}",
                f"{result.avg_ms.get('prov.add', 0.0):.1f}",
                f"{result.avg_ms.get('prov.delete', 0.0):.1f}",
                f"{result.avg_ms.get('prov.paste', 0.0):.1f}",
                f"{result.avg_ms.get('prov.commit', 0.0):.1f}",
            )
        )
    return (
        f"Figure 9: average times (virtual ms) during the 14000-{pattern} run\n"
        + format_table(
            ("Method", "Dataset Update", "Add Prov.", "Delete Prov.",
             "Paste Prov.", "Commit Prov."),
            rows,
        )
    )


def render_fig10(results: Dict[str, Dict[str, RunResult]], pattern: str = "mix") -> str:
    """Provenance overhead per operation as % of dataset-update time."""
    rows = []
    for method in METHODS:
        result = results[pattern][method]
        rows.append(
            (
                method,
                f"{result.overhead_percent('add'):.1f}%",
                f"{result.overhead_percent('delete'):.1f}%",
                f"{result.overhead_percent('paste'):.1f}%",
            )
        )
    return (
        "Figure 10: provenance overhead per operation (% of base op time)\n"
        + format_table(("Method", "Add", "Delete", "Copy"), rows)
    )


def render_fig11(results: Dict[str, Dict[str, Dict[str, RunResult]]]) -> str:
    """Deletion effects: rows for (ac) and (acd) per policy and method."""
    policies = list(results)
    headers = ["Method", "Variant"] + policies
    rows = []
    for method in METHODS:
        for variant in ("ac", "acd"):
            rows.append(
                [method, variant]
                + [results[policy][variant][method].prov_rows for policy in policies]
            )
    return (
        "Figure 11: effect of deletion patterns on provenance storage (rows)\n"
        + format_table(headers, rows)
    )


def render_fig12(results: Dict[int, RunResult]) -> str:
    """Transaction length vs per-operation processing time (HT, real)."""
    rows = []
    for txn_length, result in sorted(results.items()):
        rows.append(
            (
                f"size {txn_length}",
                f"{result.avg_ms.get('prov.add', 0.0):.1f}",
                f"{result.avg_ms.get('prov.delete', 0.0):.1f}",
                f"{result.avg_ms.get('prov.paste', 0.0):.1f}",
                f"{result.avg_ms.get('prov.commit', 0.0):.1f}",
                f"{result.amortized_ms_per_op():.1f}",
            )
        )
    return (
        "Figure 12: transaction length vs processing time (virtual ms, HT/real)\n"
        + format_table(
            ("Txn length", "Add", "Delete", "Copy", "Commit", "Amortized"), rows
        )
    )


def render_fig13(results: Dict[str, QueryTimes]) -> str:
    rows = []
    for method in METHODS:
        timing = results[method]
        rows.append(
            (
                method,
                f"{timing.get_src_ms:.1f}",
                f"{timing.get_mod_ms:.1f}",
                f"{timing.get_hist_ms:.1f}",
                timing.store_rows,
            )
        )
    return (
        "Figure 13: provenance query times (virtual ms, no indexes)\n"
        + format_table(("Method", "getSrc", "getMod", "getHist", "rows"), rows)
    )
