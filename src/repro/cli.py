"""Command-line interface.

::

    python -m repro walkthrough
        Replay the paper's Figures 3-5 worked example and print the four
        provenance tables.

    python -m repro figures [7 8 9 10 11 12 13 table1 | all]
        Run the corresponding experiments and print each figure
        (honours REPRO_SCALE / REPRO_FULL_SCALE).

    python -m repro apply SCRIPT --target tree.json \
           --source S1=s1.json [--method HT] [--commit-every N] \
           [--query src=T/a/b] [--query hist=T/a] [--query mod=T]
        Apply a copy-paste update script (the paper's concrete syntax)
        to a JSON tree with provenance tracking; print the final tree,
        the provenance table, and any requested queries.

    python -m repro recover SNAPSHOT --wal-dir DIR [--name db] \
           [--mode strict|tolerant] [--json]
        Rebuild a database from a checksummed snapshot plus its WAL and
        print the recovery report (transactions replayed/aborted/
        dropped, torn-tail and quarantined bytes, corruption site if
        any) and the recovered per-table row counts.  ``--mode strict``
        (the default) fails on the first corrupt WAL record; ``tolerant``
        replays the longest clean committed prefix.

Trees are JSON objects: nested objects are interior nodes, scalars are
leaf values (exactly :meth:`repro.core.tree.Tree.from_dict`).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Dict, List, Optional, Sequence

from .core.editor import CurationEditor
from .core.provenance import ProvTable
from .core.queries import ProvenanceQueries
from .core.stores import STORE_METHODS, make_store
from .core.tree import Tree
from .core.updates import parse_script
from .wrappers.memory import MemorySourceDB, MemoryTargetDB

__all__ = ["main"]


def _load_tree(path: str) -> Tree:
    with open(path, "r", encoding="utf-8") as handle:
        return Tree.from_dict(json.load(handle))


def _cmd_walkthrough(_args: argparse.Namespace) -> int:
    """Replay Figures 3-5 (self-contained; mirrors
    examples/paper_walkthrough.py)."""
    script = """
    (1) delete c5 from T;          (2) copy S1/a1/y into T/c1/y;
    (3) insert {c2 : {}} into T;   (4) copy S1/a2 into T/c2;
    (5) insert {y : {}} into T/c2; (6) copy S2/b3/y into T/c2/y;
    (7) copy S1/a3 into T/c3;      (8) insert {c4 : {}} into T;
    (9) copy S2/b2 into T/c4;      (10) insert {y : 12} into T/c4;
    """
    updates = parse_script(script)

    def fresh(method):
        store = make_store(method, ProvTable(), first_tid=121)
        return CurationEditor(
            target=MemoryTargetDB("T", Tree.from_dict(
                {"c1": {"x": 1, "y": 3}, "c5": {"x": 9, "y": 7}})),
            sources=[
                MemorySourceDB("S1", Tree.from_dict(
                    {"a1": {"x": 1, "y": 2}, "a2": {"x": 3}, "a3": {"x": 7, "y": 5}})),
                MemorySourceDB("S2", Tree.from_dict(
                    {"b1": {"x": 1, "y": 2}, "b2": {"x": 4}, "b3": {"x": 7, "y": 6}})),
            ],
            store=store,
        )

    configs = [
        ("Figure 5(a): naive", "N", None),
        ("Figure 5(b): transactional (one transaction)", "T", len(updates)),
        ("Figure 5(c): hierarchical", "H", None),
        ("Figure 5(d): hierarchical-transactional", "HT", len(updates)),
    ]
    first = True
    for title, method, commit_every in configs:
        editor = fresh(method)
        editor.run_script(updates, commit_every=commit_every)
        if first:
            print("Figure 4: resulting target database T'")
            print(editor.target_tree().render())
            print()
            first = False
        print(title)
        for record in editor.store.records():
            src = f" <- {record.src}" if record.src is not None else ""
            print(f"  ({record.tid}, {record.op}, {record.loc}{src})")
        print(f"  [{editor.store.row_count} records]")
        print()
    return 0


_FIGURES = ("table1", "7", "8", "9", "10", "11", "12", "13")


def _cmd_figures(args: argparse.Namespace) -> int:
    from .bench import (
        experiment1,
        experiment2,
        experiment3,
        experiment4,
        experiment5,
        render_fig7,
        render_fig8,
        render_fig9,
        render_fig10,
        render_fig11,
        render_fig12,
        render_fig13,
        render_table1,
    )

    wanted = list(args.which) or ["all"]
    if "all" in wanted:
        wanted = list(_FIGURES)
    unknown = [w for w in wanted if w not in _FIGURES]
    if unknown:
        print(f"unknown figure(s): {', '.join(unknown)}; "
              f"choose from {', '.join(_FIGURES)} or 'all'", file=sys.stderr)
        return 2

    exp2 = None
    if "table1" in wanted:
        print(render_table1(), end="\n\n")
    if "7" in wanted:
        print(render_fig7(experiment1()), end="\n\n")
    if {"8", "9", "10"} & set(wanted):
        exp2 = experiment2()
    if "8" in wanted:
        print(render_fig8(exp2), end="\n\n")
    if "9" in wanted:
        print(render_fig9(exp2), end="\n\n")
    if "10" in wanted:
        print(render_fig10(exp2), end="\n\n")
    if "11" in wanted:
        print(render_fig11(experiment3()), end="\n\n")
    if "12" in wanted:
        print(render_fig12(experiment4()), end="\n\n")
    if "13" in wanted:
        print(render_fig13(experiment5()), end="\n\n")
    return 0


def _parse_query_args(pairs: Sequence[str]) -> List[tuple]:
    queries = []
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--query expects kind=LOCATION, got {pair!r}")
        kind, loc = pair.split("=", 1)
        if kind not in ("src", "hist", "mod"):
            raise SystemExit(f"query kind must be src/hist/mod, got {kind!r}")
        queries.append((kind, loc))
    return queries


def _cmd_apply(args: argparse.Namespace) -> int:
    with open(args.script, "r", encoding="utf-8") as handle:
        updates = parse_script(handle.read())

    target_name = args.target_name
    target_tree = _load_tree(args.target) if args.target else Tree.empty()
    sources = []
    for spec in args.source:
        if "=" not in spec:
            print(f"--source expects NAME=tree.json, got {spec!r}", file=sys.stderr)
            return 2
        name, path = spec.split("=", 1)
        sources.append(MemorySourceDB(name, _load_tree(path)))

    store = make_store(args.method, ProvTable())
    editor = CurationEditor(
        target=MemoryTargetDB(target_name, target_tree),
        sources=sources,
        store=store,
    )
    editor.run_script(updates, commit_every=args.commit_every)
    if store.transactional and args.commit_every is None:
        editor.commit()

    print(f"Applied {len(updates)} operations "
          f"({store.method} provenance, {store.row_count} records).")
    print()
    print(f"Final {target_name}:")
    print(editor.target_tree().render() or "  (empty)")
    print()
    print("Provenance table:")
    print(f"  {'Tid':>4}  {'Op':2}  Loc -> Src")
    for record in store.records():
        src = f" <- {record.src}" if record.src is not None else ""
        print(f"  {record.tid:>4}  {record.op:2}  {record.loc}{src}")

    queries = _parse_query_args(args.query)
    if queries:
        print()
        engine = ProvenanceQueries(store, target_name=target_name)
        for kind, loc in queries:
            if kind == "src":
                answer = engine.get_src(loc)
            elif kind == "hist":
                answer = engine.get_hist(loc)
            else:
                answer = sorted(engine.get_mod(loc))
            print(f"{kind}({loc}) = {answer}")
    return 0


def _cmd_recover(args: argparse.Namespace) -> int:
    from .storage.errors import StorageError
    from .storage.snapshot import load_snapshot

    try:
        db = load_snapshot(args.snapshot, name=args.name, wal_dir=args.wal_dir)
        report = db.recover(mode=args.mode)
    except (StorageError, OSError) as exc:
        print(f"recovery failed: {exc}", file=sys.stderr)
        return 1
    tables = {name: table.row_count for name, table in sorted(db.tables.items())}
    if args.json:
        print(json.dumps({"report": report.as_dict(), "tables": tables}, indent=2))
        return 0
    print(report.summary())
    for name, rows in tables.items():
        print(f"  {name}: {rows} row(s)")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="CPDB reproduction: copy-paste provenance for curated databases",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("walkthrough", help="replay the paper's Figures 3-5 example")

    figures = sub.add_parser("figures", help="run experiments and print figures")
    figures.add_argument("which", nargs="*", default=["all"],
                         help="table1, 7-13, or 'all'")

    apply_cmd = sub.add_parser("apply", help="apply an update script with tracking")
    apply_cmd.add_argument("script", help="update script file (Figure 3 syntax)")
    apply_cmd.add_argument("--target", help="initial target tree (JSON)", default=None)
    apply_cmd.add_argument("--target-name", default="T")
    apply_cmd.add_argument("--source", action="append", default=[],
                           metavar="NAME=tree.json")
    apply_cmd.add_argument("--method", default="HT",
                           choices=sorted(set(STORE_METHODS)),
                           help="provenance storage strategy")
    apply_cmd.add_argument("--commit-every", type=int, default=None)
    apply_cmd.add_argument("--query", action="append", default=[],
                           metavar="src|hist|mod=LOCATION")

    recover_cmd = sub.add_parser(
        "recover", help="rebuild a database from snapshot + WAL and report"
    )
    recover_cmd.add_argument("snapshot", help="snapshot file to load")
    recover_cmd.add_argument("--wal-dir", required=True,
                             help="directory holding the database's WAL")
    recover_cmd.add_argument("--name", default="db",
                             help="database name (names the WAL file)")
    recover_cmd.add_argument("--mode", default="strict",
                             choices=("strict", "tolerant"),
                             help="fail on corruption, or replay the clean prefix")
    recover_cmd.add_argument("--json", action="store_true",
                             help="machine-readable report")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "walkthrough":
        return _cmd_walkthrough(args)
    if args.command == "figures":
        return _cmd_figures(args)
    if args.command == "apply":
        return _cmd_apply(args)
    if args.command == "recover":
        return _cmd_recover(args)
    raise SystemExit(2)  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
