"""Shared infrastructure: virtual clock and deterministic RNG helpers."""

from .clock import CostModel, VirtualClock

__all__ = ["VirtualClock", "CostModel"]
