"""32-bit content checksums for the durable file formats.

WAL segments and snapshot files seal their bytes with a 32-bit CRC so
recovery can *detect* corruption instead of replaying it.  Two
algorithms are registered and every durable file records which one
sealed it (a single flag byte in its header), so files written on one
machine verify on any other:

* ``ALG_CRC32`` (0) — zlib's CRC-32 (IEEE 802.3 polynomial).  Always
  available at C speed from the standard library.
* ``ALG_CRC32C`` (1) — CRC-32C (Castagnoli polynomial, the checksum
  used by iSCSI/ext4/LevelDB).  Preferred when a native implementation
  (the ``crc32c`` wheel) is importable; the table-driven pure-Python
  fallback below is ~20x slower per byte, which is fine for the
  read/verify side (once per recovery) but would blow the append
  path's framing budget — hence the writer-side preference logic in
  :data:`PREFERRED_ALG` rather than an unconditional CRC-32C.

Checksums are *error-detecting*, not cryptographic: the threat model is
torn writes, bit rot, and truncation, not an adversary forging records.
"""

from __future__ import annotations

import zlib
from typing import Callable

__all__ = [
    "ALG_CRC32",
    "ALG_CRC32C",
    "ALG_NAMES",
    "PREFERRED_ALG",
    "checksum",
    "checksum_fn",
    "crc32c",
]

ALG_CRC32 = 0
ALG_CRC32C = 1

ALG_NAMES = {ALG_CRC32: "crc32", ALG_CRC32C: "crc32c"}

# ----------------------------------------------------------------------
# CRC-32C (Castagnoli), reflected polynomial 0x82F63B78
# ----------------------------------------------------------------------

def _build_crc32c_table() -> "tuple[int, ...]":
    table = []
    for index in range(256):
        crc = index
        for _ in range(8):
            crc = (crc >> 1) ^ 0x82F63B78 if crc & 1 else crc >> 1
        table.append(crc)
    return tuple(table)


_CRC32C_TABLE = _build_crc32c_table()


def _crc32c_py(data: bytes, value: int = 0) -> int:
    """Pure-Python CRC-32C (the verify-side fallback)."""
    crc = value ^ 0xFFFFFFFF
    table = _CRC32C_TABLE
    for byte in data:
        crc = table[(crc ^ byte) & 0xFF] ^ (crc >> 8)
    return crc ^ 0xFFFFFFFF


try:  # pragma: no cover - exercised only where the wheel is installed
    from crc32c import crc32c as _crc32c_native  # type: ignore

    def crc32c(data: bytes, value: int = 0) -> int:
        return _crc32c_native(data, value)

    _HAVE_NATIVE_CRC32C = True
except ImportError:
    crc32c = _crc32c_py
    _HAVE_NATIVE_CRC32C = False


#: the algorithm new files are sealed with: CRC-32C when it runs at C
#: speed, else zlib's CRC-32 (readers handle both via the header flag)
PREFERRED_ALG = ALG_CRC32C if _HAVE_NATIVE_CRC32C else ALG_CRC32

_FUNCTIONS: "dict[int, Callable[[bytes, int], int]]" = {
    ALG_CRC32: lambda data, value=0: zlib.crc32(data, value) & 0xFFFFFFFF,
    ALG_CRC32C: crc32c,
}


def checksum(alg: int, data: bytes, value: int = 0) -> int:
    """The 32-bit checksum of ``data`` under registered algorithm ``alg``.

    ``value`` chains partial checksums (running CRC over streamed
    chunks).  Unknown algorithm ids raise ``ValueError`` — a file
    claiming an unregistered checksum is unreadable, not silently
    trusted.
    """
    try:
        fn = _FUNCTIONS[alg]
    except KeyError:
        raise ValueError(f"unknown checksum algorithm id {alg}") from None
    return fn(data, value)


def checksum_fn(alg: int) -> Callable[[bytes, int], int]:
    """The registered function for ``alg`` — resolve once, call in a hot
    loop without the per-call registry lookup."""
    try:
        return _FUNCTIONS[alg]
    except KeyError:
        raise ValueError(f"unknown checksum algorithm id {alg}") from None
