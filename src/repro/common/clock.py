"""Virtual time for reproducible performance experiments.

The paper's measured costs are dominated by client/server round trips: the
provenance store was MySQL reached over JDBC/TCP and the target database
was Timber reached over SOAP.  Re-running on modern hardware with
in-process stores would bury those effects in noise, so the harness
charges deterministic costs on a virtual clock.  The *mechanisms* (how
many round trips each strategy issues, how many rows each writes, the
extra existence check hierarchical tracking performs on inserts, the
batched single-round-trip commit of transactional tracking) are faithfully
implemented by the stores; the knobs below only fix the unit costs, and
are calibrated so the baseline (naive) matches the paper's reported
overhead (up to ~28-30 % of a target-database interaction).

Only *ratios* matter for the reproduced shapes; EXPERIMENTS.md records the
calibration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["VirtualClock", "CostModel"]


@dataclass
class CostModel:
    """Per-event costs, in milliseconds of virtual time.

    Attributes
    ----------
    round_trip_ms:
        Fixed cost of one client/server round trip (connection, parse,
        network latency).
    stmt_row_ms:
        Per-row marshalling cost inside a single INSERT statement (the
        naive tracker writes one statement per update operation, with one
        row per touched node).
    batch_row_ms:
        Per-row cost inside a batched commit write (prepared batch —
        cheaper per row than individual statements; this is the round-trip
        saving the paper credits for transactional provenance).
    scan_row_ms:
        Per-row cost of scanning the provenance relation during queries
        (Figure 13 was measured without indexes, i.e. worst case).
    local_ms:
        In-memory provlist manipulation (transactional tracking touches
        no store during updates, hence its near-zero per-op cost).
    check_ms:
        The hierarchical tracker's inferability check on inserts — the
        extra query the paper blames for hierarchical inserts being
        slower than naive ones.
    target_op_ms:
        One target-database interaction (Timber via SOAP); the paper's
        Figure 9 shows this averaging ~450 ms, the yardstick for all
        overhead percentages.
    retry_timeout_ms:
        How long the client waits before declaring a round trip lost (a
        conservative multiple of ``round_trip_ms``, as a real driver's
        socket timeout would be).  A *failed* round trip therefore costs
        more than a successful one — failure amplification: every lost
        request or response adds a full timeout plus the retry's own
        round trip to the paper's per-operation economics.
    """

    round_trip_ms: float = 30.0
    stmt_row_ms: float = 25.0
    batch_row_ms: float = 8.0
    scan_row_ms: float = 0.1
    local_ms: float = 1.0
    check_ms: float = 20.0
    target_op_ms: float = 450.0
    epoch_step_ms: float = 0.1
    retry_timeout_ms: float = 90.0

    # epoch_step_ms: the client-side cost of stepping the Trace walk
    # through one transaction (the t -> t-1 recursion of Section 2.2).
    # Query time scales with the number of *transactions*, which is why
    # transactional provenance (5x fewer transactions at commit-every-5)
    # answers queries ~2.5x faster in Figure 13.

    def statement_write_cost(self, rows: int) -> float:
        """One INSERT statement carrying ``rows`` rows."""
        return self.round_trip_ms + self.stmt_row_ms * rows

    def batch_write_cost(self, rows: int) -> float:
        """One batched (commit-time) write carrying ``rows`` rows."""
        return self.round_trip_ms + self.batch_row_ms * rows

    def query_cost(self, rows_scanned: int) -> float:
        """One query round trip scanning ``rows_scanned`` rows."""
        return self.round_trip_ms + self.scan_row_ms * rows_scanned

    # Backwards-compatible generic round trip used by StoreClient.
    def round_trip_cost(self, rows: int = 0) -> float:
        return self.round_trip_ms + self.stmt_row_ms * rows

    def failed_round_trip_cost(self, rows: int = 0) -> float:
        """A round trip that times out: the client still marshalled and
        sent the request, then waited out the timeout."""
        return self.round_trip_cost(rows) + self.retry_timeout_ms


class VirtualClock:
    """A monotonically advancing virtual clock with per-category accounting.

    ``charge(category, ms)`` advances time and attributes the cost to a
    category (e.g. ``"prov.paste"``, ``"target.update"``), letting the
    experiment harness report average per-operation costs exactly as the
    paper's Figures 9, 10, and 12 do.
    """

    def __init__(self) -> None:
        self._now_ms: float = 0.0
        self._by_category: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    @property
    def now_ms(self) -> float:
        return self._now_ms

    def charge(self, category: str, ms: float) -> None:
        if ms < 0:
            raise ValueError("cannot charge negative time")
        self._now_ms += ms
        self._by_category[category] = self._by_category.get(category, 0.0) + ms
        self._counts[category] = self._counts.get(category, 0) + 1

    def total(self, category: str) -> float:
        return self._by_category.get(category, 0.0)

    def count(self, category: str) -> int:
        return self._counts.get(category, 0)

    def average(self, category: str) -> float:
        count = self._counts.get(category, 0)
        if count == 0:
            return 0.0
        return self._by_category[category] / count

    def categories(self) -> Dict[str, float]:
        return dict(self._by_category)

    def reset(self) -> None:
        self._now_ms = 0.0
        self._by_category.clear()
        self._counts.clear()
