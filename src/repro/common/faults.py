"""Deterministic fault injection for the durability layer.

The durability claims in this repo (committed-prefix recovery, atomic
checkpoints, exactly-once client retries) are only claims until a fault
actually happens.  This module makes faults *schedulable*: a
:class:`FaultPlan` is configured with the exact faults to inject —
which write to tear at which byte, which bit to flip, which syscall
gets ``EIO``, which named point crashes — and is threaded through
``WriteAheadLog``, ``save_snapshot``/``checkpoint``, and the client
transport.  Tests then assert that every injected fault ends in either
full recovery of the committed prefix or a typed error naming the
corruption site.

Design notes
------------

* :class:`SimulatedCrash` derives from ``BaseException`` (like
  ``KeyboardInterrupt``), **not** ``Exception``: a crash must blow
  through every ``except Exception`` cleanup handler — a real power cut
  does not run rollback paths, append ABORT records, or close files
  tidily, and a simulated one that did would test the wrong thing.
* All faults are one-shot and consumed in plan order; counters are
  plan-global, so one plan can coordinate faults across several files
  (e.g. "the 3rd write overall, which lands in the snapshot temp
  file").  Write counters are 1-based.
* :meth:`FaultPlan.reached` is the crash-point hook: instrumented code
  calls it at named points (``checkpoint.after_fsync``,
  ``wal.truncate.mid``, ...) and the plan raises there if scheduled.
  The full list of points lives in ``docs/ARCHITECTURE.md``.
"""

from __future__ import annotations

import errno
import os
from typing import Any, BinaryIO, Dict, List, Optional, Tuple

__all__ = [
    "SimulatedCrash",
    "FaultPlan",
    "FaultyFile",
    "NO_FAULTS",
    "durable_fsync",
    "fsync_directory",
]


class SimulatedCrash(BaseException):
    """An injected crash.  BaseException so cleanup handlers don't run."""

    def __init__(self, point: str, detail: str = "") -> None:
        self.point = point
        self.detail = detail
        super().__init__(f"simulated crash at {point}" + (f" ({detail})" if detail else ""))


class FaultPlan:
    """A schedule of faults to inject, plus a log of those that fired.

    Configuration methods (chainable)::

        plan = (FaultPlan()
                .tear_write(on_write=3, keep_bytes=5)   # prefix, then crash
                .flip_bit(on_write=2, byte=4, bit=7)    # silent corruption
                .short_write(on_write=1, drop_bytes=2)  # silent truncation
                .fail_io(on_call=4)                     # OSError(EIO)
                .crash_at("checkpoint.after_fsync"))    # named crash point

    ``fired`` records every fault that actually triggered, so tests can
    assert the injection happened (a fault that never fires is a test
    bug, not a pass).
    """

    def __init__(self) -> None:
        self._write_faults: Dict[int, Tuple[Any, ...]] = {}
        self._io_faults: Dict[int, int] = {}
        self._crash_points: set = set()
        self._writes = 0
        self._calls = 0
        self.fired: List[str] = []

    # -- configuration -------------------------------------------------
    def tear_write(self, *, on_write: int, keep_bytes: int) -> "FaultPlan":
        """The ``on_write``-th write persists only its first
        ``keep_bytes`` bytes, then the process crashes (torn write)."""
        self._write_faults[on_write] = ("tear", keep_bytes)
        return self

    def short_write(self, *, on_write: int, drop_bytes: int) -> "FaultPlan":
        """The ``on_write``-th write silently drops its last
        ``drop_bytes`` bytes — a kernel short write whose return value
        the caller never checked.  No crash: execution continues."""
        self._write_faults[on_write] = ("short", drop_bytes)
        return self

    def flip_bit(self, *, on_write: int, byte: int, bit: int = 0) -> "FaultPlan":
        """The ``on_write``-th write lands with ``bit`` of ``byte``
        (offset into that write's buffer, modulo its length) inverted —
        media bit rot, compressed into the write for determinism."""
        self._write_faults[on_write] = ("flip", byte, bit)
        return self

    def fail_io(self, *, on_call: int, error: int = errno.EIO) -> "FaultPlan":
        """The ``on_call``-th syscall (write/flush/fsync, counted
        together) raises ``OSError(error)``."""
        self._io_faults[on_call] = error
        return self

    def crash_at(self, point: str) -> "FaultPlan":
        """Crash when instrumented code reaches the named point."""
        self._crash_points.add(point)
        return self

    # -- runtime hooks -------------------------------------------------
    def reached(self, point: str) -> None:
        if point in self._crash_points:
            self._crash_points.discard(point)
            self.fired.append(f"crash@{point}")
            raise SimulatedCrash(point)

    def wrap(self, handle: BinaryIO, name: str = "?") -> "FaultyFile":
        return FaultyFile(handle, self, name)

    # -- internals (called by FaultyFile) ------------------------------
    def _syscall(self, kind: str, name: str) -> None:
        self._calls += 1
        error = self._io_faults.pop(self._calls, None)
        if error is not None:
            self.fired.append(f"eio@{kind}:{name}")
            raise OSError(error, os.strerror(error), name)

    def _next_write_fault(self) -> Optional[Tuple[Any, ...]]:
        self._writes += 1
        return self._write_faults.pop(self._writes, None)


class FaultyFile:
    """A binary file handle that injects the plan's write faults.

    Proxies everything else (``tell``, ``seek``, ``fileno``, ...) to
    the underlying handle; ``fsync()`` is a first-class method so
    :func:`durable_fsync` can route the syscall through the fault
    counters.
    """

    def __init__(self, handle: BinaryIO, plan: FaultPlan, name: str = "?") -> None:
        self._file = handle
        self._plan = plan
        self._name = name

    def write(self, data: bytes) -> int:
        plan = self._plan
        plan._syscall("write", self._name)
        fault = plan._next_write_fault()
        if fault is None:
            return self._file.write(data)
        kind = fault[0]
        if kind == "tear":
            keep = min(fault[1], len(data))
            self._file.write(data[:keep])
            self._file.flush()
            plan.fired.append(f"tear@{self._name}+{keep}")
            raise SimulatedCrash(
                f"torn write on {self._name}", f"kept {keep}/{len(data)} bytes"
            )
        if kind == "short":
            kept = max(0, len(data) - fault[1])
            self._file.write(data[:kept])
            plan.fired.append(f"short@{self._name}-{fault[1]}")
            return len(data)  # the unchecked lie a short write tells
        # kind == "flip"
        _kind, byte, bit = fault
        corrupted = bytearray(data)
        if corrupted:
            corrupted[byte % len(corrupted)] ^= 1 << bit
        self._file.write(bytes(corrupted))
        plan.fired.append(f"flip@{self._name}[{byte}].{bit}")
        return len(data)

    def flush(self) -> None:
        self._plan._syscall("flush", self._name)
        self._file.flush()

    def fsync(self) -> None:
        self._plan._syscall("fsync", self._name)
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        self._file.close()

    def __getattr__(self, attribute: str) -> Any:
        return getattr(self._file, attribute)


class _NoFaults:
    """The no-op plan: zero-cost hooks for the production path."""

    fired: List[str] = []

    def reached(self, point: str) -> None:
        return None

    def wrap(self, handle: BinaryIO, name: str = "?") -> BinaryIO:
        return handle


#: shared no-op plan; ``faults or NO_FAULTS`` is the threading idiom
NO_FAULTS = _NoFaults()


def durable_fsync(handle: Any) -> None:
    """flush + fsync ``handle``, honouring fault-injection wrappers.

    Plain files take the ``os.fsync`` path; :class:`FaultyFile` exposes
    ``fsync()`` so the syscall passes through the plan's counters.
    """
    fsync = getattr(handle, "fsync", None)
    if fsync is not None:
        fsync()
    else:
        handle.flush()
        os.fsync(handle.fileno())


def fsync_directory(path: str) -> None:
    """fsync the directory containing ``path`` so a rename into it is
    durable (POSIX: the rename itself lives in the directory's data).

    Platforms whose directory handles reject ``os.fsync`` (Windows)
    are skipped — the rename is still atomic there, just not provably
    ordered, which matches what every portable database does.
    """
    directory = os.path.dirname(os.path.abspath(path))
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-specific
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-specific
        pass
    finally:
        os.close(fd)
