"""Core of the reproduction: the paper's data model, update language,
provenance storage strategies, and provenance queries."""

from .paths import Path, PathError, ROOT
from .tree import Tree, TreeError, Value
from .updates import (
    Copy,
    Delete,
    Insert,
    Update,
    UpdateError,
    Workspace,
    apply_sequence,
    apply_update,
    format_update,
    parse_script,
    parse_update,
)

__all__ = [
    "Path",
    "PathError",
    "ROOT",
    "Tree",
    "TreeError",
    "Value",
    "Insert",
    "Delete",
    "Copy",
    "Update",
    "UpdateError",
    "Workspace",
    "apply_update",
    "apply_sequence",
    "parse_update",
    "parse_script",
    "format_update",
]
