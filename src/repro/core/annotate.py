"""Queries mixing provenance and raw data (Section 2.2).

The paper sketches queries over both the database and its provenance,
e.g. projecting a field together with its current provenance::

    Q(x, px) <- R(k, x, y), From(tnow, "R/" + k + "/A", px)

"Such queries are tricky to write by hand, and we are interested in
providing advanced support for provenance queries" — this module is that
support: it joins the target's current leaves against the provenance
store, annotating every value with where it came from.

Two views are provided:

* :func:`from_view` — the paper's ``From(tnow, p, px)``: each leaf with
  its location in the *previous* version (identity for unchanged data);
* :func:`origin_view` — the transitively traced ultimate origin of each
  leaf: an external source location, a local insertion, or pre-tracking
  data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from .paths import Path
from .provenance import OP_COPY, OP_INSERT
from .queries import ProvenanceQueries
from .tree import Tree, Value

__all__ = ["Annotated", "from_view", "origin_view"]


@dataclass(frozen=True)
class Annotated:
    """One leaf of the target with its provenance annotation.

    ``origin`` is a location (for ``kind="copied"``: the place the data
    ultimately came from) or ``None``; ``tid`` the relevant transaction
    (insertion or final copy), or ``None`` for pre-tracking data.
    """

    loc: Path
    value: Value
    kind: str  # "copied" | "inserted" | "initial" | "unchanged"
    origin: Optional[Path]
    tid: Optional[int]


def _leaves(target_name: str, tree: Tree) -> Iterator[tuple]:
    for rel, value in tree.leaf_values():
        yield Path([target_name]).join(rel), value


def from_view(
    tree: Tree,
    queries: ProvenanceQueries,
    under: "Path | str | None" = None,
) -> List[Annotated]:
    """Each current leaf with its ``From(tnow, p, q)`` annotation: where
    the data sat at the end of the previous transaction."""
    out: List[Annotated] = []
    scope = Path.of(under) if under is not None else None
    for loc, value in _leaves(queries.target_name, tree):
        if scope is not None and not scope.is_prefix_of(loc):
            continue
        record = queries.effective(queries.tnow, loc)
        if record is None:
            out.append(Annotated(loc, value, "unchanged", loc, None))
        elif record.op == OP_COPY:
            out.append(Annotated(loc, value, "copied", record.src, record.tid))
        elif record.op == OP_INSERT:
            out.append(Annotated(loc, value, "inserted", None, record.tid))
    return out


def origin_view(
    tree: Tree,
    queries: ProvenanceQueries,
    under: "Path | str | None" = None,
) -> List[Annotated]:
    """Each current leaf annotated with its *ultimate* origin, obtained
    by tracing the whole copy chain:

    * ``copied``  — entered the target from an external source (origin =
      the source location, tid = the transaction that brought it in);
    * ``inserted`` — typed in by a curator (tid = that transaction);
    * ``initial`` — predates provenance tracking.
    """
    out: List[Annotated] = []
    scope = Path.of(under) if under is not None else None
    for loc, value in _leaves(queries.target_name, tree):
        if scope is not None and not scope.is_prefix_of(loc):
            continue
        steps = queries.trace(loc)
        last = steps[-1] if steps else None
        if last is None or last.record is None:
            out.append(Annotated(loc, value, "initial", None, None))
            continue
        record = last.record
        if record.op == OP_INSERT:
            out.append(Annotated(loc, value, "inserted", None, record.tid))
        elif record.op == OP_COPY:
            # chain ended on a copy: either it exited T (external origin)
            # or stopped at the first recorded transaction
            out.append(Annotated(loc, value, "copied", record.src, record.tid))
        else:  # pragma: no cover - deletes never terminate a live trace
            out.append(Annotated(loc, value, "initial", None, None))
    return out
