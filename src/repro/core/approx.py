"""Approximate provenance for bulk updates (Section 6).

A bulk update may touch data proportional to the database size; storing
exact links would overwhelm the provenance store.  The paper proposes
storing *pattern* records instead::

    Prov(t, C, T/a/*/b, S/a/*/b)

"this single link may abbreviate a large number of more detailed links";
storage stays proportional to the size of the update expression.  The
price is certainty: "we can only say that some data *may* (or *cannot*)
have come from a given source location."

:class:`ApproxRecord` holds a pair of wildcard patterns whose wildcards
are positionally aligned (the ``*`` that matched ``T/a/X/b`` binds the
same ``X`` in ``S/a/*/b``).  :class:`ApproxProvStore` stores them and
answers the three-valued queries ``may_have_come_from`` /
``cannot_have_come_from`` and ``possible_sources``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from .paths import Path
from .provenance import OP_COPY, OP_DELETE, OP_INSERT

__all__ = ["PathPattern", "ApproxRecord", "ApproxProvStore"]


@dataclass(frozen=True)
class PathPattern:
    """A path with single-label wildcards, e.g. ``T/a/*/b``."""

    labels: Tuple[str, ...]

    WILDCARD = "*"

    @classmethod
    def parse(cls, text: str) -> "PathPattern":
        return cls(tuple(Path.parse(text.replace("*", "\x00")).labels)).__normalize()

    def __normalize(self) -> "PathPattern":
        return PathPattern(tuple(
            self.WILDCARD if label == "\x00" else label for label in self.labels
        ))

    @property
    def wildcard_count(self) -> int:
        return sum(1 for label in self.labels if label == self.WILDCARD)

    def match(self, path: "Path | str") -> Optional[Tuple[str, ...]]:
        """Match a concrete path; returns the wildcard bindings in order,
        or ``None`` on mismatch."""
        labels = Path.of(path).labels
        if len(labels) != len(self.labels):
            return None
        bindings: List[str] = []
        for pattern_label, label in zip(self.labels, labels):
            if pattern_label == self.WILDCARD:
                bindings.append(label)
            elif pattern_label != label:
                return None
        return tuple(bindings)

    def match_prefix(
        self, path: "Path | str"
    ) -> Optional[Tuple[Tuple[str, ...], Path]]:
        """Match the pattern against a *prefix* of ``path``; returns the
        wildcard bindings plus the remaining suffix.  A pattern link at a
        subtree root covers its descendants, exactly like hierarchical
        provenance inference."""
        labels = Path.of(path).labels
        if len(labels) < len(self.labels):
            return None
        bindings: List[str] = []
        for pattern_label, label in zip(self.labels, labels):
            if pattern_label == self.WILDCARD:
                bindings.append(label)
            elif pattern_label != label:
                return None
        return tuple(bindings), Path(labels[len(self.labels):])

    def substitute(self, bindings: Sequence[str]) -> Path:
        """Instantiate the pattern with wildcard bindings, in order."""
        bindings = list(bindings)
        labels: List[str] = []
        for label in self.labels:
            if label == self.WILDCARD:
                if not bindings:
                    raise ValueError(f"not enough bindings for {self}")
                labels.append(bindings.pop(0))
            else:
                labels.append(label)
        if bindings:
            raise ValueError(f"too many bindings for {self}")
        return Path(labels)

    def __str__(self) -> str:
        return "/".join(self.labels)


@dataclass(frozen=True)
class ApproxRecord:
    """One approximate provenance link.

    For copies the two patterns must have the same number of wildcards
    (positionally aligned); ``src`` is ``None`` for inserts/deletes.
    """

    tid: int
    op: str
    loc: PathPattern
    src: Optional[PathPattern] = None

    def __post_init__(self) -> None:
        if self.op == OP_COPY:
            if self.src is None:
                raise ValueError("approximate copy records need a source pattern")
            if self.loc.wildcard_count != self.src.wildcard_count:
                raise ValueError(
                    "copy patterns must have positionally aligned wildcards: "
                    f"{self.loc} vs {self.src}"
                )
        elif self.src is not None:
            raise ValueError(f"{self.op} records must not carry a source")


class ApproxProvStore:
    """A store of approximate records with three-valued source queries."""

    def __init__(self) -> None:
        self._records: List[ApproxRecord] = []

    def add(self, record: ApproxRecord) -> None:
        self._records.append(record)

    def record_bulk_copy(self, tid: int, dst_pattern: str, src_pattern: str) -> ApproxRecord:
        record = ApproxRecord(
            tid, OP_COPY, PathPattern.parse(dst_pattern), PathPattern.parse(src_pattern)
        )
        self.add(record)
        return record

    def record_bulk_delete(self, tid: int, pattern: str) -> ApproxRecord:
        record = ApproxRecord(tid, OP_DELETE, PathPattern.parse(pattern))
        self.add(record)
        return record

    def record_bulk_insert(self, tid: int, pattern: str) -> ApproxRecord:
        record = ApproxRecord(tid, OP_INSERT, PathPattern.parse(pattern))
        self.add(record)
        return record

    def records(self) -> List[ApproxRecord]:
        return list(self._records)

    @property
    def row_count(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    # Three-valued queries
    # ------------------------------------------------------------------
    def possible_sources(self, loc: "Path | str") -> List[Tuple[int, Path]]:
        """Every (tid, source location) the data at ``loc`` *may* have
        been copied from.  A pattern matching an ancestor of ``loc``
        contributes the correspondingly extended source (copy links cover
        subtrees)."""
        loc = Path.of(loc)
        out: List[Tuple[int, Path]] = []
        for record in self._records:
            if record.op != OP_COPY:
                continue
            matched = record.loc.match_prefix(loc)
            if matched is None:
                continue
            bindings, suffix = matched
            assert record.src is not None
            out.append((record.tid, record.src.substitute(bindings).join(suffix)))
        return out

    def may_have_come_from(self, loc: "Path | str", src: "Path | str") -> bool:
        src = Path.of(src)
        return any(candidate == src for _tid, candidate in self.possible_sources(loc))

    def cannot_have_come_from(self, loc: "Path | str", src: "Path | str") -> bool:
        """The definite negative answer approximate provenance *can* give."""
        return not self.may_have_come_from(loc, src)

    def may_have_been_touched(self, loc: "Path | str") -> List[int]:
        """Transactions whose bulk operations may have affected ``loc``
        (a copy/delete of an ancestor region counts)."""
        loc = Path.of(loc)
        touched = set()
        for record in self._records:
            if record.op == OP_INSERT:
                if record.loc.match(loc) is not None:
                    touched.add(record.tid)
            elif record.loc.match_prefix(loc) is not None:
                touched.add(record.tid)
        return sorted(touched)
