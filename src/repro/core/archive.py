"""Commit-point archiving of reference versions (Section 5).

The paper argues that provenance and archiving are complementary: "both
provenance recording and archiving are necessary in order to preserve
completely the scientific record".  Provenance links refer to *versions*
of the target database (each commit makes the current state the next
reference copy), so being able to reconstruct any reference version makes
the provenance record independently checkable.

The archive stores version 0 in full and subsequent versions as deltas
(added/changed leaf values and deleted paths), in the spirit of Buneman
et al.'s "Archiving scientific data": storage grows with the amount of
change, not with versions × database size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .paths import Path
from .tree import Tree, Value

__all__ = ["VersionDelta", "VersionArchive", "diff_trees"]


@dataclass(frozen=True)
class VersionDelta:
    """Changes from the previous reference version to this one.

    ``upserts`` maps a path to its node payload: ``("leaf", value)`` for
    leaves, ``("node", None)`` for interior/empty nodes.  ``deletes``
    lists removed subtree roots.
    """

    tid: int
    upserts: Tuple[Tuple[Path, Tuple[str, Value]], ...]
    deletes: Tuple[Path, ...]

    @property
    def change_count(self) -> int:
        return len(self.upserts) + len(self.deletes)


def _payload(node: Tree) -> Tuple[str, Value]:
    return ("leaf", node.value) if node.is_leaf_value else ("node", None)


def diff_trees(old: Tree, new: Tree) -> Tuple[List[Tuple[Path, Tuple[str, Value]]], List[Path]]:
    """Structural diff: (upserts, deleted subtree roots)."""
    old_nodes = {path: _payload(node) for path, node in old.nodes()}
    upserts: List[Tuple[Path, Tuple[str, Value]]] = []
    new_paths = set()
    for path, node in new.nodes():
        new_paths.add(path)
        payload = _payload(node)
        if old_nodes.get(path) != payload:
            upserts.append((path, payload))
    deletes: List[Path] = []
    for path in sorted(old_nodes, key=Path.sort_key):
        if path in new_paths:
            continue
        if path.is_root or path.parent in new_paths:
            deletes.append(path)  # only subtree roots; children are implied
    return upserts, deletes


class VersionArchive:
    """Delta archive of the target database's reference versions."""

    def __init__(self) -> None:
        self._base: Optional[Tree] = None
        self._base_tid: Optional[int] = None
        self._deltas: List[VersionDelta] = []
        self._latest: Optional[Tree] = None

    # ------------------------------------------------------------------
    def record_version(self, tid: int, tree: Tree) -> None:
        """Archive the state at the end of transaction ``tid``."""
        if self._base is None:
            self._base = tree.deep_copy()
            self._base_tid = tid
            self._latest = self._base.deep_copy()
            return
        if self._deltas and tid <= self._deltas[-1].tid:
            raise ValueError(f"versions must be archived in tid order, got {tid}")
        assert self._latest is not None
        upserts, deletes = diff_trees(self._latest, tree)
        self._deltas.append(VersionDelta(tid, tuple(upserts), tuple(deletes)))
        self._latest = tree.deep_copy()

    # ------------------------------------------------------------------
    @property
    def version_tids(self) -> List[int]:
        if self._base_tid is None:
            return []
        return [self._base_tid] + [delta.tid for delta in self._deltas]

    def reconstruct(self, tid: int) -> Tree:
        """The archived state at the reference version ``tid`` (the
        greatest archived version <= ``tid``)."""
        if self._base is None or self._base_tid is None:
            raise KeyError("the archive is empty")
        if tid < self._base_tid:
            raise KeyError(f"no version at or before tid {tid}")
        tree = self._base.deep_copy()
        for delta in self._deltas:
            if delta.tid > tid:
                break
            _apply_delta(tree, delta)
        return tree

    def latest(self) -> Tree:
        if self._latest is None:
            raise KeyError("the archive is empty")
        return self._latest.deep_copy()

    def delta_for(self, tid: int) -> Optional[VersionDelta]:
        for delta in self._deltas:
            if delta.tid == tid:
                return delta
        return None

    def storage_cost(self) -> int:
        """Total archived change entries (base counts its node count)."""
        base = self._base.node_count() if self._base is not None else 0
        return base + sum(delta.change_count for delta in self._deltas)


def _apply_delta(tree: Tree, delta: VersionDelta) -> None:
    for path in delta.deletes:
        parent = tree.resolve(path.parent)
        parent.remove_child(path.last)
    # parents before children so fresh interior nodes exist first
    for path, (kind, value) in sorted(delta.upserts, key=lambda item: len(item[0])):
        if path.is_root:
            continue
        parent = tree.resolve(path.parent)
        if parent.has_child(path.last):
            node = parent.child(path.last)
            if kind == "leaf":
                node.children.clear()
                node.set_value(value)
            elif node.is_leaf_value:
                node.set_value(None)
        else:
            parent.add_child(
                path.last, Tree.leaf(value) if kind == "leaf" else Tree.empty()
            )
