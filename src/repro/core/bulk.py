"""Bulk updates lowered to copy-paste operations (Section 6).

"It is common in curated databases to copy citation data from standard
sources, and it may be laborious to do this for thousands of citations,
each of which may need to be restructured according to some standard
recipe."  The technical challenge the paper names is connecting a bulk
update language to the copy-paste semantics; this module does it by
*lowering*: a bulk operation selects a set of nodes with a pattern and
expands into the equivalent sequence of atomic editor actions, executed
as one transaction (the paper: "In this setting transactional provenance
is most natural because of the inherent parallelism").

Each bulk method also supports ``approximate=True``, which records a
single wildcard-pattern link in an :class:`~repro.core.approx.ApproxProvStore`
instead of exact per-node links — the storage/precision trade-off of
Section 6.  (In approximate mode the exact store still sees the
transaction boundary so tids stay aligned.)
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from ..xmldb.xpath import XPath
from .approx import ApproxProvStore
from .editor import CurationEditor, EditorError
from .paths import Path

__all__ = ["BulkUpdater"]


class BulkUpdater:
    """Pattern-driven bulk operations over a provenance-aware editor."""

    def __init__(
        self,
        editor: CurationEditor,
        approx_store: Optional[ApproxProvStore] = None,
    ) -> None:
        self.editor = editor
        self.approx_store = approx_store

    # ------------------------------------------------------------------
    def _select(self, db_name: str, pattern: str) -> List[Path]:
        if db_name == self.editor.target.name:
            tree = self.editor.target.tree_from_db()
        else:
            try:
                tree = self.editor.sources[db_name].tree_from_db()
            except KeyError:
                raise EditorError(f"unknown database {db_name!r}") from None
        return XPath(pattern).evaluate(tree)

    def _require_approx(self) -> ApproxProvStore:
        if self.approx_store is None:
            raise EditorError("approximate mode needs an ApproxProvStore")
        return self.approx_store

    # ------------------------------------------------------------------
    def bulk_copy(
        self,
        source_name: str,
        select: str,
        dst_parent: "Path | str",
        rename: Optional[Callable[[Path], str]] = None,
        approximate: bool = False,
    ) -> List[Tuple[Path, Path]]:
        """Copy every node matching ``select`` in ``source_name`` under
        ``dst_parent`` in the target.  ``rename`` maps each matched
        source path to the new edge label (default: its last label).

        Returns the (absolute src, absolute dst) pairs performed.
        """
        matches = self._select(source_name, select)
        dst_parent = Path.of(dst_parent)
        performed: List[Tuple[Path, Path]] = []
        self.editor.begin()
        for rel in matches:
            label = rename(rel) if rename is not None else rel.last
            src_abs = Path([source_name]).join(rel)
            dst_abs = dst_parent.child(label)
            self.editor.copy_paste(src_abs, dst_abs)
            performed.append((src_abs, dst_abs))
        tid = self.editor.commit()
        if approximate and performed:
            self._require_approx().record_bulk_copy(
                tid,
                str(dst_parent) + "/*",
                f"{source_name}/{_pattern_of(select)}",
            )
        return performed

    def bulk_delete(self, select: str, approximate: bool = False) -> List[Path]:
        """Delete every target node matching ``select`` (one transaction)."""
        target = self.editor.target.name
        matches = self._select(target, select)
        self.editor.begin()
        deleted: List[Path] = []
        # delete deepest-first so ancestors survive until their turn
        for rel in sorted(matches, key=len, reverse=True):
            abs_path = Path([target]).join(rel)
            self.editor.delete(abs_path)
            deleted.append(abs_path)
        tid = self.editor.commit()
        if approximate and deleted:
            self._require_approx().record_bulk_delete(
                tid, f"{target}/{_pattern_of(select)}"
            )
        return deleted

    def bulk_insert(
        self,
        select: str,
        label: str,
        value=None,
        approximate: bool = False,
    ) -> List[Path]:
        """Insert ``{label: value}`` under every target node matching
        ``select`` (one transaction)."""
        target = self.editor.target.name
        matches = self._select(target, select)
        self.editor.begin()
        inserted: List[Path] = []
        for rel in matches:
            abs_parent = Path([target]).join(rel)
            self.editor.insert(abs_parent, label, value)
            inserted.append(abs_parent.child(label))
        tid = self.editor.commit()
        if approximate and inserted:
            self._require_approx().record_bulk_insert(
                tid, f"{target}/{_pattern_of(select)}/{label}"
            )
        return inserted


def _pattern_of(select: str) -> str:
    """Render an XPath select as a wildcard path pattern (predicates are
    dropped: approximate records over-approximate by design)."""
    steps = [step for step in select.strip("/").split("/") if step]
    cleaned = []
    for step in steps:
        name = step.split("[", 1)[0]
        cleaned.append(name if name else "*")
    return "/".join(cleaned)
