"""CPDB: the provenance-aware editor/browser (Section 3).

The editor is the only write path to the target database: it intercepts
every user action (insert, delete, copy/paste), applies it to the target
through its wrapper, and records the resulting provenance links through
the configured storage strategy.  "In order to ensure the consistency of
the target database and its provenance record, it is essential that the
target database and provenance record are writable only via high-level
interfaces that track provenance" (Section 1.3).

Costs: every action pays one target-database interaction
(``target.update`` on the virtual clock — the SOAP-to-Timber round trip
of the original system); the provenance strategies charge their own
``prov.*`` costs internally.

The editor also supports replaying update scripts in the paper's
concrete syntax (:func:`repro.core.updates.parse_script`), which is how
the test suite reproduces Figures 3-5 verbatim.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..common.clock import CostModel, VirtualClock
from ..wrappers.base import SourceDB, TargetDB, WrapperError
from .paths import Path
from .provenance import ProvenanceStore
from .tree import Tree, Value
from .updates import Copy, Delete, Insert, Update

__all__ = ["CurationEditor", "EditorError"]


class EditorError(Exception):
    """Raised for invalid editor actions (unknown database, writes to a
    source, malformed locations)."""


class CurationEditor:
    """The provenance-aware editor connecting sources, target, and store.

    Parameters
    ----------
    target:
        The wrapped target database (MiMI-on-Timber in the paper).
    sources:
        The wrapped source databases (OrganelleDB-on-MySQL in the paper),
        keyed by name.
    store:
        A provenance storage strategy (N / T / H / HT).
    clock, cost_model:
        Virtual-clock instrumentation; defaults to the store's.
    archive:
        Optional commit-point archiver (see :mod:`repro.core.archive`);
        ``commit()`` notifies it with the new reference version.
    """

    def __init__(
        self,
        target: TargetDB,
        sources: "Dict[str, SourceDB] | Sequence[SourceDB]",
        store: ProvenanceStore,
        clock: Optional[VirtualClock] = None,
        cost_model: Optional[CostModel] = None,
        archive=None,
        txn_log=None,
        user: str = "curator",
    ) -> None:
        self.target = target
        if not isinstance(sources, dict):
            sources = {source.name: source for source in sources}
        self.sources: Dict[str, SourceDB] = dict(sources)
        if target.name in self.sources:
            raise EditorError(
                f"target name {target.name!r} collides with a source database"
            )
        self.store = store
        self.clock = clock if clock is not None else store.table.clock
        self.cost_model = cost_model if cost_model is not None else store.table.cost_model
        self.archive = archive
        #: optional per-transaction metadata table (Section 2.1: "commit
        #: time and user identity ... in a separate table with key Tid")
        self.txn_log = txn_log
        self.user = user
        self.operations_performed = 0

    # ------------------------------------------------------------------
    # Path plumbing
    # ------------------------------------------------------------------
    def _split_target(self, path: "Path | str", action: str) -> Path:
        path = Path.of(path)
        if path.is_root or path.head != self.target.name:
            raise EditorError(
                f"{action} may only touch the target database "
                f"{self.target.name!r}, got {path}"
            )
        return path.tail

    def _resolve_source(self, path: "Path | str") -> tuple[SourceDB, Path]:
        path = Path.of(path)
        if path.is_root:
            raise EditorError("copy source must name a database")
        if path.head == self.target.name:
            return self.target, path.tail
        try:
            return self.sources[path.head], path.tail
        except KeyError:
            raise EditorError(f"unknown source database {path.head!r}") from None

    def _charge_target(self) -> None:
        self.clock.charge("target.update", self.cost_model.target_op_ms)
        self.operations_performed += 1

    # ------------------------------------------------------------------
    # User actions
    # ------------------------------------------------------------------
    def insert(self, path: "Path | str", label: str, value: Value = None) -> None:
        """``ins {label : value} into path`` (``value=None`` inserts the
        empty node)."""
        rel = self._split_target(path, "insert")
        self.target.add_node(rel, label, value)
        self._charge_target()
        loc = Path.of(path).child(label)
        self.store.track_insert(loc)

    def delete(self, path: "Path | str") -> Tree:
        """Delete the node at ``path`` (``del last-label from parent``);
        returns the removed subtree."""
        rel = self._split_target(path, "delete")
        if rel.is_root:
            raise EditorError("cannot delete the target root")
        removed = self.target.delete_node(rel)
        self._charge_target()
        self.store.track_delete(Path.of(path), removed)
        return removed

    def copy_paste(self, src: "Path | str", dst: "Path | str") -> Tree:
        """``copy src into dst``: copy the subtree at ``src`` (from any
        source database or the target itself) to ``dst`` in the target;
        returns the pasted subtree."""
        src = Path.of(src)
        dst = Path.of(dst)
        dst_rel = self._split_target(dst, "paste")
        if dst_rel.is_root:
            raise EditorError("cannot paste over the target root")
        source_db, src_rel = self._resolve_source(src)
        copied = source_db.copy_node(src_rel)
        overwritten = self.target.paste_node(dst_rel, copied)
        self._charge_target()
        self.store.track_copy(dst, src, copied, overwritten)
        return copied

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    def begin(self) -> None:
        self.store.begin()

    def commit(self, note: Optional[str] = None) -> int:
        """Commit the open transaction; returns the transaction id of the
        new reference version.  For per-operation strategies this is just
        an archive/metadata point."""
        self.store.commit()
        tid = self.store.last_tid
        if self.archive is not None:
            self.archive.record_version(tid, self.target_tree())
        if self.txn_log is not None:
            self.txn_log.record_commit(tid, self.user, note)
        return tid

    # ------------------------------------------------------------------
    # Script replay and inspection
    # ------------------------------------------------------------------
    def apply(self, update: Update) -> None:
        """Apply one parsed update (the paper's concrete syntax)."""
        if isinstance(update, Insert):
            self.insert(update.path, update.label, update.value)
        elif isinstance(update, Delete):
            self.delete(update.path.child(update.label))
        elif isinstance(update, Copy):
            self.copy_paste(update.src, update.dst)
        else:  # pragma: no cover - defensive
            raise EditorError(f"unknown update {update!r}")

    def run_script(self, updates: Iterable[Update], commit_every: Optional[int] = None) -> None:
        """Replay a sequence of updates, optionally committing every
        ``commit_every`` operations (and once at the end)."""
        pending = 0
        for update in updates:
            self.apply(update)
            pending += 1
            if commit_every is not None and pending >= commit_every:
                self.commit()
                pending = 0
        if pending and commit_every is not None:
            self.commit()

    def target_tree(self) -> Tree:
        """A snapshot of the target database's current tree view."""
        return self.target.tree_from_db()
