"""The hierarchical-provenance inference view (Section 2.1.3).

The full provenance table ``Prov`` is definable from the hierarchical
table ``HProv`` by the recursive query::

    Infer(t, p)          <- not exists x, q. HProv(t, x, p, q)
    Prov(t, op, p, q)    <- HProv(t, op, p, q).
    Prov(t, C, p/a, q/a) <- Prov(t, C, p, q), Infer(t, p/a).
    Prov(t, I, p/a, _)   <- Prov(t, I, p, _), Infer(t, p/a).
    Prov(t, D, p/a, _)   <- Prov(t, D, p, _), Infer(t, p/a).

(The paper prints the guard of the recursive rules as ``Infer(t, p)``;
as its own prose explains — "the provenance of every target path p/a
*not mentioned in HProv* is q/a" — the check belongs on the child
``p/a``, which is what we implement.)

Two forms are provided:

* :func:`infer_at` — the on-the-fly point lookup CPDB actually uses
  ("Prov is calculated from HProv as necessary for paths in T"): find
  the nearest ancestor with an explicit record and rebase.  Each
  ancestor probe is a charged store round trip, which is what makes some
  queries slower on hierarchical stores (Figure 13).
* :func:`expand` — materialize the full table for one transaction, given
  the tree states before and after it (inserted/copied paths are
  enumerated from the post-state, deleted paths from the pre-state).
  Tests use this to check that hierarchical stores are lossless.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from .paths import Path
from .provenance import OP_COPY, OP_DELETE, OP_INSERT, ProvRecord, ProvTable
from .tree import Tree
from .updates import Workspace

__all__ = ["infer_at", "expand", "expand_all"]


def infer_at(table: ProvTable, tid: int, loc: Path) -> Optional[ProvRecord]:
    """Effective provenance record for ``(tid, loc)`` under hierarchical
    inference: the explicit record if present, otherwise the nearest
    ancestor's record rebased to ``loc``.  ``None`` means unchanged."""
    record = table.record_at(tid, loc)
    if record is not None:
        return record
    for ancestor in loc.ancestors():
        if len(ancestor) < 1:
            break  # never look above the database root
        record = table.record_at(tid, ancestor)
        if record is None:
            continue
        if record.op == OP_COPY:
            assert record.src is not None
            return ProvRecord(tid, OP_COPY, loc, loc.rebase(ancestor, record.src))
        return ProvRecord(tid, record.op, loc)
    return None


def _expand_down(
    record: ProvRecord,
    subtree: Tree,
    explicit: Dict[Path, ProvRecord],
    out: List[ProvRecord],
) -> None:
    """Emit inferred child records below ``record.loc``, stopping at
    locations with their own explicit record.  Iterative (explicit
    work stack) so arbitrarily deep subtrees cannot exhaust the Python
    recursion limit; children are pushed reverse-sorted so they pop —
    and are appended to ``out`` — in the same depth-first label order
    the recursive form produced."""
    stack = [(record, subtree)]
    while stack:
        parent, node = stack.pop()
        for label in sorted(node.children, reverse=True):
            child_loc = parent.loc.child(label)
            if child_loc in explicit:
                continue  # Infer(t, child) fails; the explicit record rules
            if parent.op == OP_COPY:
                assert parent.src is not None
                child = ProvRecord(parent.tid, OP_COPY, child_loc, parent.src.child(label))
            else:
                child = ProvRecord(parent.tid, parent.op, child_loc)
            stack.append((child, node.children[label]))
        if parent is not record:
            out.append(parent)


def expand(
    hprov: Iterable[ProvRecord],
    pre: Workspace,
    post: Workspace,
) -> List[ProvRecord]:
    """Materialize the full provenance table for one transaction.

    ``pre``/``post`` are the workspace states before and after the
    transaction: copied and inserted regions are enumerated from the
    post-state, deleted regions from the pre-state.
    """
    records = list(hprov)
    tids = {record.tid for record in records}
    if len(tids) > 1:
        raise ValueError(
            f"expand() handles one transaction at a time, got tids {sorted(tids)}"
        )
    explicit = {record.loc: record for record in records}
    out: List[ProvRecord] = list(records)
    for record in records:
        state = pre if record.op == OP_DELETE else post
        if not state.contains_path(record.loc):
            continue  # nothing below this location in the relevant state
        subtree = state.resolve(record.loc)
        _expand_down(record, subtree, explicit, out)
    out.sort(key=lambda record: (record.tid, record.loc.sort_key()))
    return out


def expand_all(
    hprov: Iterable[ProvRecord],
    states: Dict[int, Workspace],
) -> List[ProvRecord]:
    """Expand a multi-transaction hierarchical table.

    ``states[t]`` is the workspace at the *end* of transaction ``t``
    (``states[t0 - 1]`` being the initial state); transaction ``t``
    expands against pre-state ``states[t-1]`` and post-state ``states[t]``.
    """
    by_tid: Dict[int, List[ProvRecord]] = {}
    for record in hprov:
        by_tid.setdefault(record.tid, []).append(record)
    out: List[ProvRecord] = []
    for tid in sorted(by_tid):
        out.extend(expand(by_tid[tid], states[tid - 1], states[tid]))
    return out
