"""The hierarchical-provenance inference view (Section 2.1.3).

The full provenance table ``Prov`` is definable from the hierarchical
table ``HProv`` by the recursive query::

    Infer(t, p)          <- not exists x, q. HProv(t, x, p, q)
    Prov(t, op, p, q)    <- HProv(t, op, p, q).
    Prov(t, C, p/a, q/a) <- Prov(t, C, p, q), Infer(t, p/a).
    Prov(t, I, p/a, _)   <- Prov(t, I, p, _), Infer(t, p/a).
    Prov(t, D, p/a, _)   <- Prov(t, D, p, _), Infer(t, p/a).

(The paper prints the guard of the recursive rules as ``Infer(t, p)``;
as its own prose explains — "the provenance of every target path p/a
*not mentioned in HProv* is q/a" — the check belongs on the child
``p/a``, which is what we implement.)

Two forms are provided:

* :func:`infer_at` — the on-the-fly point lookup CPDB actually uses
  ("Prov is calculated from HProv as necessary for paths in T"): find
  the nearest ancestor with an explicit record and rebase.  The whole
  ancestor chain is fetched as *one* presorted multi-range probe of the
  ``(loc, tid)`` index (one charged round trip, ``tid`` pinned as both
  head and tail bound so every range is an exact point probe); the
  nearest-ancestor rebase then happens client-side over the fetched
  batch, mirroring ``ProvQueries._effective_from``.
* :func:`expand` — materialize the full table for one transaction, given
  the tree states before and after it (inserted/copied paths are
  enumerated from the post-state, deleted paths from the pre-state).
  Tests use this to check that hierarchical stores are lossless.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from .paths import Path
from .provenance import OP_COPY, OP_DELETE, OP_INSERT, ProvRecord, ProvTable
from .tree import Tree
from .updates import Workspace

__all__ = ["infer_at", "expand", "expand_all"]


def infer_at(table: ProvTable, tid: int, loc: Path) -> Optional[ProvRecord]:
    """Effective provenance record for ``(tid, loc)`` under hierarchical
    inference: the explicit record if present, otherwise the nearest
    ancestor's record rebased to ``loc``.  ``None`` means unchanged.

    One batched probe, not a round trip per ancestor: ``loc`` plus its
    proper ancestors (:meth:`Path.probe_chain`, duplicates deduped by
    the batch) go through :meth:`ProvTable.records_at_locs` with ``tid``
    pushed as both the head and tail bound, so the ``(loc, tid)`` index
    answers the whole chain in a single presorted multi-range pass of
    exact point probes."""
    chain = loc.probe_chain()
    found: Dict[Path, ProvRecord] = {
        record.loc: record
        for record in table.records_at_locs(chain, max_tid=tid, min_tid=tid)
    }
    for ancestor in chain:
        record = found.get(ancestor)
        if record is None:
            continue
        if ancestor == loc:
            return record
        if record.op == OP_COPY:
            assert record.src is not None
            return ProvRecord(tid, OP_COPY, loc, loc.rebase(ancestor, record.src))
        return ProvRecord(tid, record.op, loc)
    return None


def _iter_locs_under(base: Path, subtree: Tree) -> Iterator[Path]:
    """Proper descendant locations of ``base`` in document order.

    Sibling labels are visited sorted, so the stream is exactly
    ascending ``Path.sort_key`` order — the same total order the
    interval encoding's ``pre`` rank induces on a store
    (:mod:`repro.xmldb.store`).  Iterative (explicit stack, children
    pushed reverse-sorted) so arbitrarily deep subtrees cannot exhaust
    the Python recursion limit."""
    stack = [
        (base.child(label), subtree.children[label])
        for label in sorted(subtree.children, reverse=True)
    ]
    while stack:
        loc, node = stack.pop()
        yield loc
        for label in sorted(node.children, reverse=True):
            stack.append((loc.child(label), node.children[label]))


def _expand_down(
    record: ProvRecord,
    subtree: Tree,
    explicit: Dict[Path, ProvRecord],
    out: List[ProvRecord],
) -> None:
    """Emit inferred child records below ``record.loc``, stopping at
    locations with their own explicit record.

    A presorted one-pass merge over the hierarchy encoding's order: the
    subtree's locations stream in document order
    (:func:`_iter_locs_under`), the explicit records under ``record.loc``
    mark covered prefix *intervals* in that same order (a location's
    descendants are contiguous after it, exactly like a ``(pre, post)``
    window), and one cursor over the sorted blockers skips each covered
    interval — no per-node membership test against every explicit
    record, and no descent state to thread: an inferred record is
    derived from ``record`` directly (op inherited; COPY sources rebased
    with :meth:`Path.rebase`)."""
    blockers = sorted(
        (other for other in explicit if other != record.loc and record.loc < other),
        key=Path.sort_key,
    )
    cursor, fence = 0, len(blockers)
    for loc in _iter_locs_under(record.loc, subtree):
        while (
            cursor < fence
            and blockers[cursor].sort_key() < loc.sort_key()
            and not blockers[cursor].is_prefix_of(loc)
        ):
            cursor += 1  # that blocker's interval ended before ``loc``
        if cursor < fence and blockers[cursor].is_prefix_of(loc):
            continue  # inside a covered interval: the explicit record rules
        if record.op == OP_COPY:
            assert record.src is not None
            out.append(
                ProvRecord(record.tid, OP_COPY, loc, loc.rebase(record.loc, record.src))
            )
        else:
            out.append(ProvRecord(record.tid, record.op, loc))


def expand(
    hprov: Iterable[ProvRecord],
    pre: Workspace,
    post: Workspace,
) -> List[ProvRecord]:
    """Materialize the full provenance table for one transaction.

    ``pre``/``post`` are the workspace states before and after the
    transaction: copied and inserted regions are enumerated from the
    post-state, deleted regions from the pre-state.
    """
    records = list(hprov)
    tids = {record.tid for record in records}
    if len(tids) > 1:
        raise ValueError(
            f"expand() handles one transaction at a time, got tids {sorted(tids)}"
        )
    explicit = {record.loc: record for record in records}
    out: List[ProvRecord] = list(records)
    for record in records:
        state = pre if record.op == OP_DELETE else post
        if not state.contains_path(record.loc):
            continue  # nothing below this location in the relevant state
        subtree = state.resolve(record.loc)
        _expand_down(record, subtree, explicit, out)
    out.sort(key=lambda record: (record.tid, record.loc.sort_key()))
    return out


def expand_all(
    hprov: Iterable[ProvRecord],
    states: Dict[int, Workspace],
) -> List[ProvRecord]:
    """Expand a multi-transaction hierarchical table.

    ``states[t]`` is the workspace at the *end* of transaction ``t``
    (``states[t0 - 1]`` being the initial state); transaction ``t``
    expands against pre-state ``states[t-1]`` and post-state ``states[t]``.
    """
    by_tid: Dict[int, List[ProvRecord]] = {}
    for record in hprov:
        by_tid.setdefault(record.tid, []).append(record)
    out: List[ProvRecord] = []
    for tid in sorted(by_tid):
        out.extend(expand(by_tid[tid], states[tid - 1], states[tid]))
    return out
