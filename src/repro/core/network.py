"""Multi-database provenance: the ``Own`` query (Section 2.2).

If only the target tracks provenance, answers are partial — Hist and Mod
stop when the chain of provenance exits T.  When *several* databases
track and publish provenance, the chains compose: "What is the history
of 'ownership' of a piece of data?  That is, what sequence of databases
contained the previous copies of a node?"

:class:`ProvenanceNetwork` registers any number of provenance-tracking
databases and chains their Trace queries.  Epoch correspondence across
independently-versioned databases is approximated by entering each
upstream database at its newest epoch (a simplification the paper leaves
open; documented in DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .paths import Path
from .provenance import OP_COPY, OP_INSERT, ProvenanceStore
from .queries import ProvenanceQueries

__all__ = ["OwnershipSegment", "ProvenanceNetwork"]


@dataclass(frozen=True)
class OwnershipSegment:
    """One hop of ownership: the data sat in ``database`` at ``loc``
    between (that database's) transactions ``first_tid``..``last_tid``;
    ``via`` names how it got there (``"copy"``, ``"insert"``, or
    ``"origin"`` when the chain can go no further)."""

    database: str
    loc: Path
    first_tid: int
    last_tid: int
    via: str


class ProvenanceNetwork:
    """A registry of provenance-tracking databases with composed queries."""

    def __init__(self) -> None:
        self._stores: Dict[str, ProvenanceStore] = {}

    def register(self, name: str, store: ProvenanceStore) -> None:
        if name in self._stores:
            raise ValueError(f"database {name!r} already registered")
        self._stores[name] = store

    def is_registered(self, name: str) -> bool:
        return name in self._stores

    def queries_for(self, name: str) -> ProvenanceQueries:
        return ProvenanceQueries(self._stores[name], target_name=name)

    # ------------------------------------------------------------------
    def own(self, loc: "Path | str", max_hops: int = 16) -> List[OwnershipSegment]:
        """The ownership history of the data currently at ``loc``:
        a segment per database the data has lived in, newest first."""
        loc = Path.of(loc)
        segments: List[OwnershipSegment] = []
        current: Optional[Path] = loc
        for _hop in range(max_hops):
            if current is None or current.is_root:
                break
            db_name = current.head
            store = self._stores.get(db_name)
            if store is None:
                # data entered from an untracked database: the chain ends
                segments.append(
                    OwnershipSegment(db_name, current, 0, 0, "origin")
                )
                break
            queries = ProvenanceQueries(store, target_name=db_name)
            steps = queries.trace(current)
            last_step = steps[-1]
            first_tid = last_step.tid
            last_tid = steps[0].tid
            record = last_step.record
            if record is None:
                segments.append(
                    OwnershipSegment(db_name, current, first_tid, last_tid, "origin")
                )
                break
            if record.op == OP_INSERT:
                segments.append(
                    OwnershipSegment(db_name, current, first_tid, last_tid, "insert")
                )
                break
            # the chain exits this database via a copy
            assert record.src is not None
            segments.append(
                OwnershipSegment(db_name, current, first_tid, last_tid, "copy")
            )
            current = record.src
        return segments

    # ------------------------------------------------------------------
    def combined_hist(self, loc: "Path | str") -> List[Tuple[str, int]]:
        """Hist across the network: every (database, tid) that copied the
        data toward its current position, newest first."""
        loc = Path.of(loc)
        result: List[Tuple[str, int]] = []
        current: Optional[Path] = loc
        for _hop in range(64):
            if current is None or current.is_root:
                break
            db_name = current.head
            store = self._stores.get(db_name)
            if store is None:
                break
            queries = ProvenanceQueries(store, target_name=db_name)
            steps = queries.trace(current)
            next_loc: Optional[Path] = None
            for step in steps:
                if step.record is not None and step.record.op == OP_COPY:
                    result.append((db_name, step.tid))
                    if step.record.src is not None and not queries.in_target(step.record.src):
                        next_loc = step.record.src
            current = next_loc
        return result
