"""Path algebra for addressing data elements in edge-labeled trees.

The paper (Section 2) assumes every database can be viewed as a tree whose
edges are labeled such that a given sequence of labels occurs on at most one
path from the root.  A *path* ``p`` in ``Sigma*`` therefore addresses at most
one data element.  Examples from the paper::

    DB/R/tid/F                     -- a field in a relational database
    SwissProt/Release{20}/Q01780   -- an entry in a versioned flat file
    T/c2/y                         -- a node in the target tree

This module implements that path algebra: parsing from / rendering to the
``a/b/c`` concrete syntax, concatenation, prefix tests, parents and suffixes.
Paths are immutable and hashable so they can key provenance tables.

Paths are *interned*: :meth:`Path.parse` keeps a text -> path cache and a
labels -> path cache, so the same text always yields the same object and
the provenance hot paths (``ProvRecord.from_row``, ancestor walks) stop
re-tokenizing strings.  Interning is purely an optimization — equality
and hashing are still structural.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Tuple

__all__ = ["Label", "Path", "PathError", "ROOT"]

Label = str

#: Bound on each intern cache; on overflow the caches are wiped (the
#: working set re-warms immediately, and bounded beats unbounded growth
#: across long benchmark runs).
_INTERN_LIMIT = 1 << 16

_interned_by_text: Dict[str, "Path"] = {}
_interned_by_labels: Dict[Tuple[Label, ...], "Path"] = {}


class PathError(ValueError):
    """Raised for malformed path syntax or invalid path operations."""


def _check_label(label: Label) -> Label:
    if not isinstance(label, str):
        raise PathError(f"label must be a string, got {type(label).__name__}")
    if not label:
        raise PathError("empty label is not allowed in a path")
    if "/" in label:
        raise PathError(f"label may not contain '/': {label!r}")
    return label


class Path:
    """An immutable sequence of edge labels addressing a tree node.

    The empty path addresses the root of the tree it is resolved against.

    >>> p = Path.parse("T/c2/y")
    >>> p.labels
    ('T', 'c2', 'y')
    >>> str(p.parent)
    'T/c2'
    >>> Path.parse("T/c2") <= p
    True
    """

    __slots__ = ("_labels", "_hash", "_str")

    def __init__(self, labels: Iterable[Label] = ()) -> None:
        labels = tuple(_check_label(label) for label in labels)
        object.__setattr__(self, "_labels", labels)
        object.__setattr__(self, "_hash", hash(labels))
        object.__setattr__(self, "_str", None)

    def __setattr__(self, name: str, value: object) -> None:
        raise AttributeError("Path is immutable")

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def parse(cls, text: str) -> "Path":
        """Parse the ``a/b/c`` concrete syntax.  ``""`` parses to the root.

        Results are interned: the same text returns the same object.
        """
        if not isinstance(text, str):
            raise PathError(f"cannot parse {type(text).__name__} as a path")
        cached = _interned_by_text.get(text)
        if cached is not None:
            return cached
        stripped = text.strip("/")
        if not stripped:
            path = ROOT
        else:
            path = cls._intern(tuple(stripped.split("/")))
        if len(_interned_by_text) >= _INTERN_LIMIT:
            _interned_by_text.clear()
        _interned_by_text[text] = path
        return path

    @classmethod
    def _intern(cls, labels: Tuple[Label, ...]) -> "Path":
        """The canonical path for ``labels`` (validating on first sight)."""
        path = _interned_by_labels.get(labels)
        if path is None:
            path = cls(labels)
            if len(_interned_by_labels) >= _INTERN_LIMIT:
                _interned_by_labels.clear()
            _interned_by_labels[labels] = path
        return path

    @classmethod
    def of(cls, value: "Path | str | Iterable[Label]") -> "Path":
        """Coerce a value into a :class:`Path` (identity on paths)."""
        if isinstance(value, Path):
            return value
        if isinstance(value, str):
            return cls.parse(value)
        return cls(value)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def labels(self) -> Tuple[Label, ...]:
        return self._labels

    @property
    def is_root(self) -> bool:
        return not self._labels

    @property
    def parent(self) -> "Path":
        """The path with the last label removed.

        >>> str(Path.parse("a/b").parent)
        'a'
        """
        if self.is_root:
            raise PathError("the root path has no parent")
        return Path._intern(self._labels[:-1])

    @property
    def last(self) -> Label:
        """The final edge label of the path."""
        if self.is_root:
            raise PathError("the root path has no last label")
        return self._labels[-1]

    @property
    def head(self) -> Label:
        """The first edge label of the path."""
        if self.is_root:
            raise PathError("the root path has no head label")
        return self._labels[0]

    @property
    def tail(self) -> "Path":
        """The path with the first label removed."""
        if self.is_root:
            raise PathError("the root path has no tail")
        return Path._intern(self._labels[1:])

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def child(self, label: Label) -> "Path":
        """Extend the path by one label (written ``p/a`` in the paper)."""
        return Path._intern(self._labels + (_check_label(label),))

    def join(self, other: "Path | str") -> "Path":
        """Concatenate two paths."""
        other = Path.of(other)
        return Path._intern(self._labels + other._labels)

    def __truediv__(self, other: "Path | str | Label") -> "Path":
        if isinstance(other, Path):
            return self.join(other)
        if isinstance(other, str) and "/" in other:
            return self.join(Path.parse(other))
        return self.child(other)

    def is_prefix_of(self, other: "Path | str") -> bool:
        """``p <= q`` in the paper: every node under ``p`` extends ``p``."""
        other = Path.of(other)
        n = len(self._labels)
        return other._labels[:n] == self._labels

    def is_strict_prefix_of(self, other: "Path | str") -> bool:
        other = Path.of(other)
        return self != other and self.is_prefix_of(other)

    def __le__(self, other: "Path | str") -> bool:
        return self.is_prefix_of(other)

    def __lt__(self, other: "Path | str") -> bool:
        return self.is_strict_prefix_of(other)

    def relative_to(self, prefix: "Path | str") -> "Path":
        """The suffix of this path after ``prefix``.

        >>> str(Path.parse("a/b/c").relative_to("a"))
        'b/c'
        """
        prefix = Path.of(prefix)
        if not prefix.is_prefix_of(self):
            raise PathError(f"{prefix} is not a prefix of {self}")
        return Path._intern(self._labels[len(prefix._labels):])

    def rebase(self, old_prefix: "Path | str", new_prefix: "Path | str") -> "Path":
        """Replace ``old_prefix`` with ``new_prefix``.

        Used for hierarchical provenance inference: a node at ``p/a`` whose
        ancestor ``p`` was copied from ``q`` came from ``q/a``.
        """
        return Path.of(new_prefix).join(self.relative_to(old_prefix))

    def ancestors(self, include_self: bool = False) -> Iterator["Path"]:
        """Yield ancestors from the *longest* (closest) to the root.

        Hierarchical provenance inference wants the closest ancestor with an
        explicit record, hence the longest-first order.
        """
        start = len(self._labels) if include_self else len(self._labels) - 1
        for n in range(start, -1, -1):
            yield Path._intern(self._labels[:n])

    def probe_chain(self) -> List["Path"]:
        """``[self, parent, ..., top-level]`` — every location whose
        explicit record could cover ``self`` under hierarchical
        inference (never the database root).  Closest-first, so callers
        can stop at the first hit; the whole chain is fetched as one
        batched multi-range probe
        (:meth:`repro.core.provenance.ProvTable.records_at_locs`)."""
        chain = [self]
        for ancestor in self.ancestors():
            if len(ancestor) < 1:
                break
            chain.append(ancestor)
        return chain

    # ------------------------------------------------------------------
    # Dunder plumbing
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[Label]:
        return iter(self._labels)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Path._intern(self._labels[index])
        return self._labels[index]

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if isinstance(other, Path):
            return self._labels == other._labels
        if isinstance(other, str):
            return self._labels == Path.parse(other)._labels
        return NotImplemented

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        rendered = self._str
        if rendered is None:
            rendered = "/".join(self._labels)
            object.__setattr__(self, "_str", rendered)
        return rendered

    def __repr__(self) -> str:
        return f"Path({str(self)!r})"

    def sort_key(self) -> Tuple[Label, ...]:
        """A total order usable for deterministic output (root first)."""
        return self._labels


#: The empty path, addressing the root.
ROOT = Path()
_interned_by_labels[()] = ROOT
