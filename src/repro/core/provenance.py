"""Provenance records and the provenance store interface (Section 2.1).

The paper stores provenance "on the side" in an auxiliary relation::

    Prov(Tid, Op, Loc, Src)

where ``Tid`` is a transaction sequence number, ``Op`` is one of
``I`` (insert), ``C`` (copy), ``D`` (delete), ``Loc`` is the affected
location, and ``Src`` the source location for copies (ignored for inserts
and deletes).  ``{Tid, Loc}`` is a key.

:class:`ProvTable` realizes this relation inside the embedded relational
engine with the two access paths the queries need (equality on ``tid``,
ordered prefix on ``loc``), charging virtual-clock time for each round
trip exactly like the CPDB implementation paid JDBC round trips.

:class:`ProvenanceStore` is the strategy interface implemented by the
four methods of Section 2.1 (naive, transactional, hierarchical,
hierarchical-transactional).  The provenance-aware editor calls
``track_insert`` / ``track_delete`` / ``track_copy`` for every user
action and ``begin`` / ``commit`` at transaction boundaries.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from ..common.clock import CostModel, VirtualClock
from ..storage.db import Database
from ..storage.expr import Col
from ..storage.index import MAX_KEY
from ..storage.plan import IndexNestedLoopJoin, ValuesNode
from ..storage.schema import Column, IndexSpec, TableSchema
from ..storage.types import ColumnType
from .paths import Path
from .tree import Tree

__all__ = [
    "OP_INSERT",
    "OP_COPY",
    "OP_DELETE",
    "ProvRecord",
    "ProvTable",
    "ProvenanceStore",
]

OP_INSERT = "I"
OP_COPY = "C"
OP_DELETE = "D"

_VALID_OPS = (OP_INSERT, OP_COPY, OP_DELETE)


@dataclass(frozen=True)
class ProvRecord:
    """One row of the ``Prov`` (or ``HProv``) relation."""

    tid: int
    op: str
    loc: Path
    src: Optional[Path] = None

    def __post_init__(self) -> None:
        if self.op not in _VALID_OPS:
            raise ValueError(f"op must be one of {_VALID_OPS}, got {self.op!r}")
        if self.op == OP_COPY and self.src is None:
            raise ValueError("copy records require a source location")
        if self.op != OP_COPY and self.src is not None:
            raise ValueError(f"{self.op} records must not carry a source")

    def as_row(self) -> Tuple[int, str, str, Optional[str]]:
        return (self.tid, self.op, str(self.loc), str(self.src) if self.src else None)

    @classmethod
    def from_row(cls, row: Sequence) -> "ProvRecord":
        tid, op, loc, src = row
        return cls(tid, op, Path.parse(loc), Path.parse(src) if src else None)

    def __str__(self) -> str:
        src = str(self.src) if self.src is not None else "⊥"
        return f"({self.tid}, {self.op}, {self.loc}, {src})"


def prov_schema(table_name: str = "prov") -> TableSchema:
    """The provenance relation's schema with its two access paths."""
    return TableSchema(
        table_name,
        [
            Column("tid", ColumnType.INT, nullable=False),
            Column("op", ColumnType.CHAR, nullable=False),
            Column("loc", ColumnType.TEXT, nullable=False),
            Column("src", ColumnType.TEXT, nullable=True),
        ],
        primary_key=("tid", "loc"),
        indexes=(
            IndexSpec(f"{table_name}_tid", ("tid",)),
            # ordered on (loc, tid): prefix scans on loc still serve the
            # descendant queries, and the tid component lets time-travel
            # reads push their version window into the index instead of
            # fetching every epoch and filtering client-side
            IndexSpec(f"{table_name}_loc", ("loc", "tid"), ordered=True),
        ),
    )


class ProvTable:
    """The provenance relation, stored in the embedded engine.

    Every public method is one client/server round trip and charges the
    virtual clock under ``prov.<category>``.  ``use_indexes=False`` makes
    read queries pay full-scan costs, matching the paper's Figure 13
    setup ("no indexing was performed on the provenance relation").
    """

    def __init__(
        self,
        db: Optional[Database] = None,
        clock: Optional[VirtualClock] = None,
        cost_model: Optional[CostModel] = None,
        table_name: str = "prov",
        use_indexes: bool = True,
    ) -> None:
        self.db = db if db is not None else Database("provstore")
        self.clock = clock if clock is not None else VirtualClock()
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.table_name = table_name
        self.use_indexes = use_indexes
        if not self.db.has_table(table_name):
            self.db.create_table(prov_schema(table_name))
        self._table = self.db.table(table_name)
        # incremental MAX(tid): maintained by the table across every
        # mutation path, so max_tid stops full-scanning (the charged
        # round-trip cost is unchanged; only the Python-side work goes)
        self._table.track_max("tid")

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def write_statement(self, records: Sequence[ProvRecord], category: str) -> None:
        """One INSERT statement carrying all ``records`` (naive path)."""
        self.db.insert_many(self.table_name, [record.as_row() for record in records])
        self.clock.charge(
            f"prov.{category}", self.cost_model.statement_write_cost(len(records))
        )

    def write_batch(self, records: Sequence[ProvRecord], category: str = "commit") -> None:
        """One batched commit-time write (transactional path)."""
        self.db.insert_many(self.table_name, [record.as_row() for record in records])
        self.clock.charge(
            f"prov.{category}", self.cost_model.batch_write_cost(len(records))
        )

    # ------------------------------------------------------------------
    # Reads (each = one charged round trip)
    # ------------------------------------------------------------------
    def _scan_cost_rows(self, matched: int) -> int:
        """Rows 'scanned' by a read: with indexes only the matches, without
        them the whole relation (Figure 13's worst case)."""
        return matched if self.use_indexes else self._table.row_count

    def _charge_read(self, matched: int, category: str) -> None:
        self.clock.charge(
            f"prov.{category}", self.cost_model.query_cost(self._scan_cost_rows(matched))
        )

    def record_at(self, tid: int, loc: Path, category: str = "query") -> Optional[ProvRecord]:
        found = self._table.lookup_pk((tid, str(loc)))
        self._charge_read(1, category)
        if found is None:
            return None
        return ProvRecord.from_row(found[1])

    def records_for_tid(self, tid: int, category: str = "query") -> List[ProvRecord]:
        rows = [row for _rid, row in self._table.lookup_index(f"{self.table_name}_tid", (tid,))]
        self._charge_read(len(rows), category)
        return sorted((ProvRecord.from_row(row) for row in rows), key=_record_order)

    def _loc_rows(self, text: str, max_tid: Optional[int] = None) -> List[Tuple]:
        """Rows at exactly ``text``, optionally only those with
        ``tid <= max_tid`` — one ordered-index range scan over the
        composite ``(loc, tid)`` key, streamed in tid order."""
        high = (text, MAX_KEY) if max_tid is None else (text, max_tid)
        return [
            row
            for _rid, row in self._table.range_scan(
                f"{self.table_name}_loc", low=(text,), high=high
            )
        ]

    def records_at_loc(
        self, loc: Path, category: str = "query", max_tid: Optional[int] = None
    ) -> List[ProvRecord]:
        rows = self._loc_rows(str(loc), max_tid)
        self._charge_read(len(rows), category)
        return sorted((ProvRecord.from_row(row) for row in rows), key=_record_order)

    def records_under(self, prefix: Path, category: str = "query") -> List[ProvRecord]:
        """All records whose loc is at or under ``prefix`` (the Mod access
        pattern, ``loc LIKE 'p/%' OR loc = 'p'``)."""
        text = str(prefix)
        rows = [row for _rid, row in self._table.prefix_scan(f"{self.table_name}_loc", text + "/")]
        rows += self._loc_rows(text)
        self._charge_read(len(rows), category)
        return sorted((ProvRecord.from_row(row) for row in rows), key=_record_order)

    def records_at_locs(
        self,
        locs: Sequence[Path],
        category: str = "query",
        max_tid: Optional[int] = None,
        min_tid: Optional[int] = None,
    ) -> List[ProvRecord]:
        """Records at any of ``locs``, in *one* round trip **and one
        index pass** — the batch read behind the trace walks and
        ancestor-coverage fetches of :mod:`repro.core.queries`.

        Since PR 5 this rides the storage engine's join machinery: the
        probed locations form a :class:`~repro.storage.plan.ValuesNode`
        driver joined to the provenance table by an
        :class:`~repro.storage.plan.IndexNestedLoopJoin` on the ``(loc,
        tid)`` ordered index, with the time-travel window ``tid <=
        max_tid`` pushed into every probe range as the join's tail
        bound.  A single unchunked probe batch keeps the PR 4 contract:
        N locations charge one round trip and execute one presorted
        multi-range union pass (counter-asserted via ``multi_range_scan``
        *and* the join operator's ``inlj_probe`` counter).  Duplicate
        locations are probed once, IN-list set semantics.

        ``min_tid`` optionally pushes a head bound as the probe ranges'
        ``tail_low`` — with ``min_tid == max_tid`` the batch degenerates
        to exact ``(loc, tid)`` point probes, the shape
        :func:`repro.core.inference.infer_at` uses for its one-pass
        ancestor rebase."""
        texts = sorted({str(loc) for loc in locs})
        join = IndexNestedLoopJoin(
            ValuesNode([{"loc": text} for text in texts]),
            self._table,
            f"{self.table_name}_loc",
            (Col("loc"),),
            tail_low=None if min_tid is None else (min_tid, True),
            tail_high=None if max_tid is None else (max_tid, True),
            chunk=0,  # the batch is one charged round trip: one probe pass
        )
        records = [
            ProvRecord(
                env["tid"],
                env["op"],
                Path.parse(env["loc"]),
                Path.parse(env["src"]) if env["src"] else None,
            )
            for env in join.execute()
        ]
        self._charge_read(len(records), category)
        return sorted(records, key=_record_order)

    def all_records(self, category: str = "query") -> List[ProvRecord]:
        rows = [row for _rid, row in self._table.scan()]
        self._charge_read(len(rows), category)
        return sorted((ProvRecord.from_row(row) for row in rows), key=_record_order)

    def max_tid(self, category: str = "query") -> int:
        # same charge as the seed's full scan (the *store* still pays the
        # query), but the answer comes from the incremental aggregate
        self._charge_read(self._table.row_count, category)
        value = self._table.max_value("tid")
        return 0 if value is None else value

    # ------------------------------------------------------------------
    # Uncharged instrumentation (out-of-band measurements)
    # ------------------------------------------------------------------
    def peek_records(self) -> List[ProvRecord]:
        """All records without charging the clock (for tests/metrics)."""
        return sorted(
            (ProvRecord.from_row(row) for _rid, row in self._table.scan()),
            key=_record_order,
        )

    @property
    def row_count(self) -> int:
        return self._table.row_count

    @property
    def byte_size(self) -> int:
        return self._table.byte_size


def _record_order(record: ProvRecord) -> Tuple[int, Tuple[str, ...]]:
    return (record.tid, record.loc.sort_key())


class ProvenanceStore(abc.ABC):
    """Strategy interface for the four storage methods of Section 2.1.

    Contract (enforced by the editor):

    * ``begin()`` is called before the first operation of a transaction;
    * ``track_*`` is called once per user action, *after* the target
      database has applied it;
    * ``commit()`` ends the transaction.  Non-transactional strategies
      auto-commit each action and treat ``begin``/``commit`` as no-ops.

    ``track_delete`` receives the subtree that was removed and
    ``track_copy`` the subtree that was pasted plus whatever subtree the
    paste overwrote (``None`` if the destination was fresh) — everything
    each strategy needs to maintain its invariants without re-querying
    the target database.
    """

    #: strategy name, e.g. "naive"; set by subclasses
    method: str = "abstract"
    #: True when records describe net transaction effects
    transactional: bool = False
    #: True when only non-inferable (root) records are stored
    hierarchical: bool = False

    def __init__(self, table: ProvTable, first_tid: int = 1) -> None:
        self.table = table
        self._next_tid = first_tid

    # -- tid management -------------------------------------------------
    def allocate_tid(self) -> int:
        tid = self._next_tid
        self._next_tid += 1
        return tid

    @property
    def next_tid(self) -> int:
        return self._next_tid

    @property
    def last_tid(self) -> int:
        """The most recently committed transaction id (``tnow``)."""
        return self._next_tid - 1

    # -- tracking --------------------------------------------------------
    @abc.abstractmethod
    def track_insert(self, loc: Path) -> None:
        """A node was inserted at ``loc`` in the target."""

    @abc.abstractmethod
    def track_delete(self, loc: Path, deleted: Tree) -> None:
        """The subtree ``deleted`` was removed from ``loc``."""

    @abc.abstractmethod
    def track_copy(
        self, dst: Path, src: Path, copied: Tree, overwritten: Optional[Tree]
    ) -> None:
        """``copied`` was pasted at ``dst`` from ``src``; ``overwritten``
        is the subtree previously at ``dst`` (``None`` if none)."""

    def begin(self) -> None:
        """Start a transaction (no-op for per-operation strategies)."""

    def commit(self) -> None:
        """Commit the open transaction (no-op for per-operation strategies)."""

    # -- introspection -----------------------------------------------------
    @property
    def row_count(self) -> int:
        return self.table.row_count

    @property
    def byte_size(self) -> int:
        return self.table.byte_size

    def records(self) -> List[ProvRecord]:
        """All stored records (uncharged; for tests and reports)."""
        return self.table.peek_records()
