"""Publishing and exchanging provenance (Section 2.2).

"If some source databases do not track provenance and publish it in a
consistent form, many queries only have incomplete answers.  Of course,
if source databases also store provenance, we can provide more complete
answers by combining the provenance information of all of the
databases."

This module defines that consistent form: a versioned, self-describing
JSON document carrying a database's provenance records (and, optionally,
its hierarchical flag so consumers can interpret them correctly).
``import_published`` loads any number of documents into a
:class:`~repro.core.network.ProvenanceNetwork`, backing each with a
fresh read-only store — making the cross-database ``Own`` and combined
``Hist`` queries work over exchanged provenance rather than live stores.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from .network import ProvenanceNetwork
from .paths import Path
from .provenance import ProvRecord, ProvTable, ProvenanceStore

__all__ = ["export_provenance", "import_provenance", "import_published"]

FORMAT = "cpdb-provenance"
VERSION = 1


def export_provenance(name: str, store: ProvenanceStore) -> str:
    """Serialize a database's provenance to the exchange format."""
    records = [
        {
            "tid": record.tid,
            "op": record.op,
            "loc": str(record.loc),
            "src": str(record.src) if record.src is not None else None,
        }
        for record in store.records()
    ]
    return json.dumps(
        {
            "format": FORMAT,
            "version": VERSION,
            "database": name,
            "method": store.method,
            "hierarchical": store.hierarchical,
            "last_tid": store.last_tid,
            "records": records,
        },
        indent=2,
    )


class PublishedStore(ProvenanceStore):
    """A read-only store backing imported provenance.

    Consumers can run every query against it; tracking methods refuse to
    write (published provenance is somebody else's record of what
    happened — "the provenance information records what happened as it
    happened", Section 5)."""

    method = "published"
    transactional = False

    def __init__(self, table: ProvTable, hierarchical: bool, last_tid: int) -> None:
        super().__init__(table, first_tid=last_tid + 1)
        self.hierarchical = hierarchical

    def _refuse(self) -> None:
        raise PermissionError("published provenance is read-only")

    def track_insert(self, loc) -> None:  # noqa: D102 - refusal
        self._refuse()

    def track_delete(self, loc, deleted) -> None:  # noqa: D102 - refusal
        self._refuse()

    def track_copy(self, dst, src, copied, overwritten) -> None:  # noqa: D102
        self._refuse()


def import_provenance(document: str) -> tuple:
    """Parse an exchange document; returns ``(database_name, store)``."""
    data = json.loads(document)
    if data.get("format") != FORMAT:
        raise ValueError(f"not a {FORMAT} document")
    if data.get("version") != VERSION:
        raise ValueError(f"unsupported version {data.get('version')!r}")
    table = ProvTable(table_name="prov")
    records = [
        ProvRecord(
            entry["tid"],
            entry["op"],
            Path.parse(entry["loc"]),
            Path.parse(entry["src"]) if entry["src"] else None,
        )
        for entry in data["records"]
    ]
    if records:
        table.write_batch(records, "import")
    store = PublishedStore(
        table,
        hierarchical=bool(data.get("hierarchical")),
        last_tid=int(data.get("last_tid", max((r.tid for r in records), default=0))),
    )
    return data["database"], store


def import_published(documents: Iterable[str]) -> ProvenanceNetwork:
    """Build a provenance network from published documents, enabling the
    cross-database Own / combined-Hist queries of Section 2.2."""
    network = ProvenanceNetwork()
    for document in documents:
        name, store = import_provenance(document)
        network.register(name, store)
    return network
