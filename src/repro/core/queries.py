"""Provenance queries (Sections 2.2 and 3.3): From, Trace, Src, Hist, Mod.

The paper defines the queries in Datalog over the (possibly virtual) full
``Prov`` table::

    Unch(t, p) <- not exists Prov(t, _, p, _)
    From(t, p, q) <- Copy(t, p, q)          From(t, p, p) <- Unch(t, p)
    Trace  = reflexive transitive closure of From (stepping t -> t-1)

    Src(p)  = { u | Trace(p, tnow, q, u), Ins(u, q) }
    Hist(p) = { u | Trace(p, tnow, q, u), Copy(u, q, _) }
    Mod(p)  = { u | exists q >= p. Trace(q, tnow, r, u), not Unch(u, r) }

As in CPDB (Section 3.3), the implementations are *programs that issue
several basic queries* (charged store round trips) and then walk the
``t -> t-1`` recursion client-side (charged per epoch stepped).  The cost
structure this produces is the paper's Figure 13:

* query time grows with the number of transactions walked, so the
  transactional stores (5x fewer transactions at commit-every-5) answer
  markedly faster;
* hierarchical stores scan smaller relations (slightly faster getSrc and
  getHist) but getMod must additionally probe ancestors and infer
  coverage for descendants not listed in the store (slower getMod).

A Datalog transcription of the same definitions lives in
:mod:`repro.datalog.provenance_rules`; the test suite checks that these
procedural implementations agree with the declarative ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .paths import Path
from .provenance import (
    OP_COPY,
    OP_DELETE,
    OP_INSERT,
    ProvRecord,
    ProvenanceStore,
)

__all__ = ["TraceStep", "ProvenanceQueries"]


@dataclass(frozen=True)
class TraceStep:
    """One change event on a Trace chain: at the end of transaction
    ``tid`` the traced data sat at ``loc``; ``record`` is the effective
    provenance record explaining the change (``None`` marks the final
    unchanged-since-the-beginning step)."""

    tid: int
    loc: Path
    record: Optional[ProvRecord]


class ProvenanceQueries:
    """getSrc / getHist / getMod over any provenance store."""

    def __init__(
        self,
        store: ProvenanceStore,
        target_name: str = "T",
        tnow: Optional[int] = None,
        first_tid: int = 1,
    ) -> None:
        self.store = store
        self.table = store.table
        self.target_name = target_name
        self.tnow = tnow if tnow is not None else store.last_tid
        self.first_tid = first_tid

    # ------------------------------------------------------------------
    # Cost helpers
    # ------------------------------------------------------------------
    def _charge_epochs(self, epochs: int) -> None:
        if epochs > 0:
            self.table.clock.charge(
                "prov.query", self.table.cost_model.epoch_step_ms * epochs
            )

    # ------------------------------------------------------------------
    # Basic views
    # ------------------------------------------------------------------
    def _fetch_for(
        self, position: Path, bound: Optional[int] = None
    ) -> Dict[Tuple[int, Path], ProvRecord]:
        """One basic query: all records at ``position`` (and, for
        hierarchical stores, at its ancestors — their records cover the
        subtree), keyed by ``(tid, loc)`` for the client-side walk.

        ``bound`` is the time-travel version window: records of later
        transactions are irrelevant to a walk bounded at ``bound``, so
        the ``tid <= bound`` cut is pushed into the store's index range
        instead of being filtered client-side after a full fetch.

        The batch itself rides the storage engine's join machinery:
        ``records_at_locs`` joins the probed locations (position plus
        ancestor chain) to the ``(loc, tid)`` index through one
        ``IndexNestedLoopJoin`` probe pass, with ``bound`` as the
        join's tail range — so a trace step or ancestor-coverage fetch
        charges one round trip *and* executes one index pass."""
        locs = position.probe_chain() if self.store.hierarchical else [position]
        records = self.table.records_at_locs(locs, max_tid=bound)
        return {(record.tid, record.loc): record for record in records}

    def _effective_from(
        self,
        cache: Dict[Tuple[int, Path], ProvRecord],
        tid: int,
        position: Path,
    ) -> Optional[ProvRecord]:
        """Client-side nearest-ancestor inference over fetched records."""
        record = cache.get((tid, position))
        if record is not None:
            return record
        if not self.store.hierarchical:
            return None
        for ancestor in position.ancestors():
            if len(ancestor) < 1:
                break
            record = cache.get((tid, ancestor))
            if record is None:
                continue
            if record.op == OP_COPY:
                assert record.src is not None
                return ProvRecord(
                    tid, OP_COPY, position, position.rebase(ancestor, record.src)
                )
            return ProvRecord(tid, record.op, position)
        return None

    def effective(self, tid: int, loc: "Path | str") -> Optional[ProvRecord]:
        """The (possibly inferred) record at ``(tid, loc)``; ``None``
        means the location was unchanged in that transaction."""
        loc = Path.of(loc)
        return self._effective_from(self._fetch_for(loc, bound=tid), tid, loc)

    def in_target(self, loc: Path) -> bool:
        return not loc.is_root and loc.head == self.target_name

    def came_from(self, tid: int, loc: "Path | str") -> Optional[Path]:
        """``From(t, p, q)``: where the data now at ``p`` sat at the end
        of transaction ``t - 1``.  ``None`` when the data did not exist
        then (inserted at ``t``) or the location was deleted."""
        loc = Path.of(loc)
        record = self.effective(tid, loc)
        if record is None:
            return loc  # unchanged
        if record.op == OP_COPY:
            return record.src
        return None  # inserted or deleted at t: no earlier position

    # ------------------------------------------------------------------
    # Trace
    # ------------------------------------------------------------------
    def _latest_in(
        self,
        cache: Dict[Tuple[int, Path], ProvRecord],
        position: Path,
        bound: int,
    ) -> Optional[ProvRecord]:
        """The most recent change event governing ``position`` with
        tid <= bound, resolved client-side from the fetched records."""
        candidate_tids = sorted({tid for tid, _loc in cache if tid <= bound}, reverse=True)
        for tid in candidate_tids:
            record = self._effective_from(cache, tid, position)
            if record is not None:
                return record
            # that transaction touched an ancestor but a nearer record
            # shadowed it away from position; try the next older change
        return None

    def trace(self, loc: "Path | str", tnow: Optional[int] = None) -> List[TraceStep]:
        """The chain of change events behind the data currently at
        ``loc``, most recent first.  Transactions in which the traced
        data was unchanged contribute only the trivial ``From(t, p, p)``
        and are walked through (charged per epoch) without a step."""
        bound = tnow if tnow is not None else self.tnow
        position = Path.of(loc)
        steps: List[TraceStep] = []
        while bound >= self.first_tid:
            cache = self._fetch_for(position, bound=bound)
            record = self._latest_in(cache, position, bound)
            if record is None:
                # unchanged all the way back to the first transaction
                self._charge_epochs(bound - self.first_tid + 1)
                steps.append(TraceStep(bound, position, None))
                break
            self._charge_epochs(bound - record.tid + 1)
            steps.append(TraceStep(record.tid, position, record))
            if record.op in (OP_INSERT, OP_DELETE):
                break
            assert record.src is not None
            if not self.in_target(record.src):
                break  # provenance exits T (Section 2.2)
            position = record.src
            bound = record.tid - 1
        return steps

    # ------------------------------------------------------------------
    # The three queries of Section 2.2
    # ------------------------------------------------------------------
    def get_src(self, loc: "Path | str") -> Optional[int]:
        """The transaction that *inserted* the data now at ``loc``
        (``None`` if it predates tracking or came from an external
        source)."""
        for step in self.trace(loc):
            if step.record is not None and step.record.op == OP_INSERT:
                return step.tid
        return None

    def get_hist(self, loc: "Path | str") -> List[int]:
        """All transactions that copied the data now at ``loc`` toward
        its current position, most recent first."""
        return [
            step.tid
            for step in self.trace(loc)
            if step.record is not None and step.record.op == OP_COPY
        ]

    def get_mod(self, loc: "Path | str") -> Set[int]:
        """All transactions that created or modified data in the subtree
        under ``loc`` (including its copied-in history while it was
        elsewhere in the target)."""
        loc = Path.of(loc)
        result: Set[int] = set()
        seen: Set[Tuple[int, Path]] = set()
        work: List[Tuple[int, Path]] = [(self.tnow, loc)]
        while work:
            bound, root = work.pop()
            if (bound, root) in seen or bound < self.first_tid:
                continue
            seen.add((bound, root))
            under = self.table.records_under(root)
            for record in under:
                if record.tid > bound:
                    continue
                result.add(record.tid)
                self._follow_copy(record, work)
            self._charge_epochs(len(under))
            if self.store.hierarchical:
                self._ancestor_coverage(bound, root, result, work)
        return result

    def _follow_copy(self, record: ProvRecord, work: List[Tuple[int, Path]]) -> None:
        if record.op == OP_COPY and record.src is not None and self.in_target(record.src):
            work.append((record.tid - 1, record.src))

    def _ancestor_coverage(
        self,
        bound: int,
        root: Path,
        result: Set[int],
        work: List[Tuple[int, Path]],
    ) -> None:
        """For hierarchical stores a record at an *ancestor* of ``root``
        covers the whole subtree under it: a copy of ``T/x`` also modified
        everything under ``T/x/b``.  This extra fetch plus per-candidate
        inference ("each query must process all the descendants of a
        node, including ones not listed in the provenance store") is the
        overhead that makes getMod slower on hierarchical stores."""
        cache = self._fetch_for(root, bound=bound)
        # Insert barrier: an I record at root proves the location did not
        # exist just before that transaction (inserts require absence), so
        # earlier ancestor records cannot have covered it.  Without this,
        # getMod would over-approximate with transactions that touched an
        # ancestor before the queried location was created.
        barrier = max(
            (
                record.tid
                for (tid, rec_loc), record in cache.items()
                if rec_loc == root and record.op == OP_INSERT and tid <= bound
            ),
            default=0,
        )
        candidate_tids = sorted(
            {
                tid
                for tid, rec_loc in cache
                if rec_loc != root and barrier <= tid <= bound
            }
        )
        self._charge_epochs(len(candidate_tids))
        for tid in candidate_tids:
            effective = self._effective_from(cache, tid, root)
            if effective is None:
                continue
            result.add(tid)
            self._follow_copy(effective, work)
