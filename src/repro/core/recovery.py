"""Data availability: reconstructing a lost source (Section 5).

"Suppose two databases T1 and T2 are constructed using data from S, that
the construction process is recorded by provenance stores P1, P2, and
that later S disappears.  We can still be fairly certain about the
contents of S, since we can use the provenance records of T1 and T2 to
partially reconstruct S.  Even if T1 and T2 disagree ... this
information may be better than nothing."

:func:`reconstruct_source` does exactly this: for every copy link whose
source lies in the lost database, it checks that the copied leaf is
still *pristine* in the target (no later transaction touched it) and, if
so, claims the target's current value for the source location.
Disagreements between contributors are returned as conflicts instead of
silently resolved.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .paths import Path
from .provenance import OP_COPY, ProvRecord, ProvenanceStore
from .queries import ProvenanceQueries
from .tree import Tree, Value

__all__ = ["Contributor", "Conflict", "RecoveryResult", "reconstruct_source"]


@dataclass
class Contributor:
    """One surviving database: its provenance store, its current tree
    (rooted at the database, i.e. paths *relative* to the target name),
    and its name."""

    name: str
    store: ProvenanceStore
    tree: Tree


@dataclass(frozen=True)
class Conflict:
    """Two contributors claim different values for a source leaf."""

    src_path: Path
    claims: Tuple[Tuple[str, Value], ...]  # (contributor name, value)


@dataclass
class RecoveryResult:
    tree: Tree
    recovered_leaves: int
    conflicts: List[Conflict]
    evidence: Dict[Path, List[str]]  # src leaf -> contributor names


def _pristine_since(
    queries: ProvenanceQueries, leaf: Path, copy_tid: int
) -> bool:
    """True if no transaction after ``copy_tid`` touched ``leaf`` (or an
    ancestor or descendant of it): the target still holds the copied
    value."""
    table = queries.table
    for record in table.records_under(leaf):
        if record.tid > copy_tid:
            return False
    for ancestor in leaf.ancestors():
        if len(ancestor) < 1:
            break
        for record in table.records_at_loc(ancestor):
            if record.tid > copy_tid:
                return False
    return True


def reconstruct_source(
    source_name: str,
    contributors: Sequence[Contributor],
) -> RecoveryResult:
    """Partially rebuild the lost database ``source_name`` from the
    provenance and current contents of ``contributors``."""
    claims: Dict[Path, Dict[str, Value]] = {}
    for contributor in contributors:
        queries = ProvenanceQueries(contributor.store, target_name=contributor.name)
        for record in contributor.store.records():
            if record.op != OP_COPY or record.src is None:
                continue
            if record.src.is_root or record.src.head != source_name:
                continue
            _claim_from_copy(contributor, queries, record, claims)

    tree = Tree.empty()
    conflicts: List[Conflict] = []
    evidence: Dict[Path, List[str]] = {}
    recovered = 0
    for src_path in sorted(claims, key=Path.sort_key):
        values = claims[src_path]
        distinct = set(values.values())
        if len(distinct) > 1:
            conflicts.append(
                Conflict(src_path, tuple(sorted(values.items())))
            )
            continue
        value = next(iter(distinct))
        _install_leaf(tree, src_path.tail, value)
        evidence[src_path] = sorted(values)
        recovered += 1
    return RecoveryResult(tree, recovered, conflicts, evidence)


def _claim_from_copy(
    contributor: Contributor,
    queries: ProvenanceQueries,
    record: ProvRecord,
    claims: Dict[Path, Dict[str, Value]],
) -> None:
    """Claim source leaf values reachable through one copy record."""
    loc_rel = record.loc.tail  # paths in the tree are target-relative
    if not contributor.tree.contains_path(loc_rel):
        return  # the copied region is gone from the target
    subtree = contributor.tree.resolve(loc_rel)
    for sub, value in subtree.leaf_values():
        leaf_abs = record.loc.join(sub)
        if not _pristine_since(queries, leaf_abs, record.tid):
            continue
        assert record.src is not None
        src_leaf = record.src.join(sub)
        claims.setdefault(src_leaf, {})[contributor.name] = value


def _install_leaf(tree: Tree, rel: Path, value: Value) -> None:
    node = tree
    for label in rel.parent:
        if not node.has_child(label):
            node.add_child(label, Tree.empty())
        node = node.child(label)
    if node.has_child(rel.last):
        return
    node.add_child(rel.last, Tree.leaf(value))
