"""The four provenance storage strategies of Section 2.1."""

from .naive import NaiveStore
from .hierarchical import HierarchicalStore
from .transactional import TransactionalStore
from .hier_trans import HierarchicalTransactionalStore

__all__ = [
    "NaiveStore",
    "HierarchicalStore",
    "TransactionalStore",
    "HierarchicalTransactionalStore",
    "make_store",
    "STORE_METHODS",
]

STORE_METHODS = {
    "naive": NaiveStore,
    "hierarchical": HierarchicalStore,
    "transactional": TransactionalStore,
    "hier_trans": HierarchicalTransactionalStore,
    # the paper's single-letter method names
    "N": NaiveStore,
    "H": HierarchicalStore,
    "T": TransactionalStore,
    "HT": HierarchicalTransactionalStore,
}


def make_store(method, table, first_tid=1, **kwargs):
    """Instantiate a store by method name (``N``/``H``/``T``/``HT`` or the
    long names)."""
    try:
        cls = STORE_METHODS[method]
    except KeyError:
        raise ValueError(
            f"unknown provenance method {method!r}; choose from "
            f"{sorted(set(STORE_METHODS))}"
        ) from None
    return cls(table, first_tid=first_tid, **kwargs)
