"""Hierarchical-transactional provenance (Sections 2.1.4 and 3.2.4).

Combines both optimizations: the active list holds *hierarchical* records
(one per surviving operation — copy roots rather than whole subtrees),
and they are written in one batched round trip at commit.

Storage is ``i + d + C`` where ``C`` is the number of roots of copied
subtrees appearing in the output — bounded above by both ``|U|`` and the
transactional ``i + d + c`` (property-tested).  One caveat the paper's
analysis does not cover: copying a region that *mixes* origins (e.g. a
subtree containing nodes inserted earlier in the same transaction)
requires extra nested links at the destination, because a single root
link would wrongly imply the whole region came from the root's source.
The ``|U|`` bound therefore holds for *non-nested* records; the nested
extras are exactly the mixed-origin distinctions (property-tested in
``tests/test_stores_semantics.py``).

Per Section 3.2.4, several operations in one transaction can leave a
*redundant* hierarchical link (copy ``S/a`` to ``T/a``, then copy
``S/a/b`` to ``T/a/b``: the second link is inferable from the first).
The paper notes such redundancy is unusual and skips the extra check; we
default to the same behaviour but expose ``prune_redundant=True`` for the
ablation benchmark.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..paths import Path
from ..provenance import OP_COPY, OP_DELETE, OP_INSERT, ProvRecord, ProvTable
from ..tree import Tree
from .transactional import TransactionalStore

__all__ = ["HierarchicalTransactionalStore"]


class HierarchicalTransactionalStore(TransactionalStore):
    """Net-effect provenance with root-only (hierarchical) records."""

    method = "hier_trans"
    transactional = True
    hierarchical = True

    def __init__(
        self, table: ProvTable, first_tid: int = 1, prune_redundant: bool = False
    ) -> None:
        super().__init__(table, first_tid=first_tid)
        self.prune_redundant = prune_redundant

    def _mask_recreated(self, dst: Path, created: Tree) -> None:
        """Explicitly deleted locations that the new content re-creates
        stop being net-dead while that content lives — their death moves
        to the displaced set (revived by a later delete, like any other
        masked death).  The flat store needs no such step: every present
        node has its own link there, so the commit-time ``loc not in
        provlist`` filter encodes presence exactly; with root-only
        records a re-created node usually has no link of its own."""
        for sub, _node in created.nodes():
            loc = dst.join(sub)
            if loc in self._dead:
                self._dead.discard(loc)
                self._displaced.add(loc)

    # ------------------------------------------------------------------
    # Hierarchical active-list variants
    # ------------------------------------------------------------------
    def _charge_check(self, category: str) -> None:
        """The in-transaction inferability check (an active-list ancestor
        walk) — the small extra cost HT pays on inserts and copies
        relative to plain transactional tracking (Figure 10)."""
        self.table.clock.charge(
            f"prov.{category}", self.table.cost_model.check_ms
        )

    def _is_txn_created(self, loc: Path) -> bool:
        """With root-only records, a node was created this transaction iff
        some record at or above it covers it."""
        return any(
            ancestor in self._provlist
            for ancestor in loc.ancestors(include_self=True)
        )

    def _remove_links_at(self, loc: Path) -> None:
        # a destroyed region removes every record rooted inside it
        for key in [key for key in self._provlist if loc.is_prefix_of(key)]:
            del self._provlist[key]

    def _net_copy_links(self, dst: Path, src: Path, copied: Tree):
        """Root-only variant: one link for the copy root, plus rebased
        copies of the active-list records *inside* the source region —
        their distinctions (earlier copies, same-transaction inserts)
        must survive at the destination or inference would wrongly
        derive the children from the root's source."""
        links = {dst: self._net_link_for(src)}
        for key, link in list(self._provlist.items()):
            if src.is_strict_prefix_of(key):
                links[dst.join(key.relative_to(src))] = link
        return links

    # ------------------------------------------------------------------
    # Tracking (charges differ from plain transactional)
    # ------------------------------------------------------------------
    def track_insert(self, loc: Path) -> None:
        self.begin()
        self._charge_check("add")
        if loc in self._dead:
            self._dead.discard(loc)
            self._displaced.add(loc)
        self._provlist[loc] = (OP_INSERT, None)

    def track_copy(
        self, dst: Path, src: Path, copied: Tree, overwritten: Optional[Tree]
    ) -> None:
        self.begin()
        self._charge_check("paste")
        # compute net links before clearing (the source may sit inside
        # the overwritten region); records *inside* the region vanish but
        # a record at an ancestor of dst stays — the new record at dst
        # blocks inference below dst.  As in the base class, overwritten
        # input data is displaced (silent while the record survives,
        # revived by a later delete); dead locations the new content
        # re-creates are masked the same way, not forgotten.
        links = self._net_copy_links(dst, src, copied)
        if overwritten is not None:
            self._displace_region(dst, overwritten)
        self._mask_recreated(dst, copied)
        self._provlist.update(links)

    # ------------------------------------------------------------------
    # Commit-time compression
    # ------------------------------------------------------------------
    def _emitted_dead(self) -> List[Path]:
        """Roots of dead regions.

        A dead input location needs an explicit ``D`` record unless its
        parent also gets one (children of deleted nodes are inferred
        deleted).  Deaths masked by surviving content sit in
        ``_displaced``, not ``_dead``, so a dead region under a masked
        ancestor is emitted explicitly; a dead location whose {Tid, Loc}
        key was re-claimed by a surviving link is suppressed but does
        *not* shadow its children — keeping the expanded view equal to
        the full transactional table."""
        candidates = {loc for loc in self._dead if loc not in self._provlist}
        return [
            loc
            for loc in candidates
            if loc.is_root or loc.parent not in candidates
        ]

    def _net_records(self, tid: int) -> List[ProvRecord]:
        records = super()._net_records(tid)
        if self.prune_redundant:
            records = self._prune(records)
        return records

    def _prune(self, records: List[ProvRecord]) -> List[ProvRecord]:
        """Remove copy links inferable from another link in the same
        transaction (Section 3.2.4)."""
        by_loc: Dict[Path, ProvRecord] = {record.loc: record for record in records}
        kept: List[ProvRecord] = []
        for record in records:
            if record.op == OP_COPY and self._redundant_copy(record, by_loc):
                continue
            kept.append(record)
        return kept

    def _redundant_copy(
        self, record: ProvRecord, by_loc: Dict[Path, ProvRecord]
    ) -> bool:
        for ancestor in record.loc.ancestors():
            other = by_loc.get(ancestor)
            if other is None:
                continue
            if other.op != OP_COPY or other.src is None:
                return False
            inferred_src = record.loc.rebase(ancestor, other.src)
            return record.src == inferred_src
        return False
