"""Hierarchical provenance (Section 2.1.3).

Only non-inferable provenance links are stored: a copy-paste operation
``copy q into p`` adds the single record ``HProv(t, C, p, q)``; the
provenance of descendants is inferred by the recursive view in
:mod:`repro.core.inference`.  An update sequence ``U`` is described by a
table with at most ``|U|`` entries (property-tested).

Figure 5(c) is the hierarchical table for the paper's running example.
"""

from __future__ import annotations

from typing import Optional

from ..paths import Path
from ..provenance import (
    OP_COPY,
    OP_DELETE,
    OP_INSERT,
    ProvRecord,
    ProvenanceStore,
)
from ..tree import Tree

__all__ = ["HierarchicalStore"]


class HierarchicalStore(ProvenanceStore):
    """At most one record per operation.

    Inserts first query the provenance store to determine whether the
    record is inferable from an ancestor's record in the same
    transaction (Section 4.2: "we must first query the provenance
    database to determine whether to add the provenance record") — with
    one operation per transaction the check never fires, but the round
    trip is paid, which is why hierarchical inserts are *slower* than
    naive ones in Figure 10 even though copies are much faster.
    """

    method = "hierarchical"
    transactional = False
    hierarchical = True

    def _insert_is_inferable(self, tid: int, loc: Path) -> bool:
        """True when an ancestor's same-transaction record already implies
        an ``I`` record at ``loc`` (children of inserted nodes are assumed
        inserted)."""
        if loc.is_root:
            return False
        # the existence check is charged to the insert operation itself:
        # this round trip is the paper's explanation for hierarchical
        # inserts costing more than naive ones (Section 4.2)
        parent_record = self.table.record_at(tid, loc.parent, category="add")
        return parent_record is not None and parent_record.op == OP_INSERT

    def track_insert(self, loc: Path) -> None:
        tid = self.allocate_tid()
        if not self._insert_is_inferable(tid, loc):
            self.table.write_statement([ProvRecord(tid, OP_INSERT, loc)], "add")

    def track_delete(self, loc: Path, deleted: Tree) -> None:
        tid = self.allocate_tid()
        self.table.write_statement([ProvRecord(tid, OP_DELETE, loc)], "delete")

    def track_copy(
        self, dst: Path, src: Path, copied: Tree, overwritten: Optional[Tree]
    ) -> None:
        tid = self.allocate_tid()
        self.table.write_statement([ProvRecord(tid, OP_COPY, dst, src)], "paste")
