"""Naive provenance (Section 2.1.1).

One provenance record per copied, inserted, or deleted *node*; each update
operation is its own transaction.  Wasteful in space, but lossless: the
exact update operation sequence can be recovered from the table (a
property the test suite checks).

Figure 5(a) is the naive table for the paper's running example.
"""

from __future__ import annotations

from typing import List, Optional

from ..paths import Path
from ..provenance import (
    OP_COPY,
    OP_DELETE,
    OP_INSERT,
    ProvRecord,
    ProvenanceStore,
)
from ..tree import Tree

__all__ = ["NaiveStore"]


class NaiveStore(ProvenanceStore):
    """One record per touched node, one transaction per operation.

    Each tracking call issues one INSERT statement to the provenance
    store carrying one row per touched node — a single round trip whose
    marshalling cost grows with the subtree size, which is what makes
    naive copies the most expensive operation in Figures 9/10.
    """

    method = "naive"
    transactional = False
    hierarchical = False

    def track_insert(self, loc: Path) -> None:
        tid = self.allocate_tid()
        self.table.write_statement([ProvRecord(tid, OP_INSERT, loc)], "add")

    def track_delete(self, loc: Path, deleted: Tree) -> None:
        tid = self.allocate_tid()
        records = [
            ProvRecord(tid, OP_DELETE, loc.join(sub))
            for sub, _node in deleted.nodes()
        ]
        self.table.write_statement(records, "delete")

    def track_copy(
        self, dst: Path, src: Path, copied: Tree, overwritten: Optional[Tree]
    ) -> None:
        # Overwritten data produces no records in the naive method: the
        # paper's Figure 5(a) shows only C records for step (6), which
        # overwrote the node inserted at step (5).
        tid = self.allocate_tid()
        records = [
            ProvRecord(tid, OP_COPY, dst.join(sub), src.join(sub))
            for sub, _node in copied.nodes()
        ]
        self.table.write_statement(records, "paste")
