"""Transactional provenance (Section 2.1.2).

Update actions are grouped into transactions; only links describing the
*net changes* of a transaction are stored.  During the transaction an
active list (the paper's ``provlist``) is maintained in memory:

* an insert or copy adds links for the created nodes;
* a copy or delete removes any links on the list corresponding to
  overwritten or deleted data (temporary data leaves no trace);
* data present at transaction start that is destroyed is remembered so a
  net ``D`` record can be written;
* at commit, the whole list is written to the provenance store in a
  single batched round trip — the reason transactional tracking is nearly
  free per operation in Figures 9/10.

Storage for a transaction is ``i + d + c`` records, where ``i`` is the
number of inserted nodes in the output, ``d`` the number of nodes deleted
from the input, and ``c`` the number of copied nodes in the output
(property-tested).

A subtlety the paper's example does not exercise: a copy whose source was
itself created earlier *in the same transaction* must record the
*composed* source (the paper's motivating rule — "copies S1, deletes,
uses S2 instead — same effect as only copying from S2" — generalizes to
chains), because net links relate the transaction's output to its *input*
(the previous version), in which intra-transaction temporaries never
existed.  ``_compose_src`` implements this.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..paths import Path
from ..provenance import (
    OP_COPY,
    OP_DELETE,
    OP_INSERT,
    ProvRecord,
    ProvTable,
    ProvenanceStore,
)
from ..tree import Tree

__all__ = ["TransactionalStore", "PendingLink"]

#: an (op, src) pair on the active list; src is None for inserts
PendingLink = Tuple[str, Optional[Path]]


class TransactionalStore(ProvenanceStore):
    """Net-effect provenance with a fully expanded active list."""

    method = "transactional"
    transactional = True
    hierarchical = False

    def __init__(self, table: ProvTable, first_tid: int = 1) -> None:
        super().__init__(table, first_tid=first_tid)
        self._provlist: Dict[Path, PendingLink] = {}
        #: input (transaction-start) locations destroyed by an *explicit
        #: delete* — each nets a ``D`` record unless a surviving link
        #: re-claims its {Tid, Loc} key
        self._dead: Set[Path] = set()
        #: input locations destroyed by an *overwrite* (paste over
        #: existing data) — silent per the Figure 5(a) reading, because
        #: the overwriting record accounts for the region wholesale; if
        #: a later explicit delete destroys that masking content, the
        #: displaced deaths revert to ``_dead`` and net their ``D``
        self._displaced: Set[Path] = set()
        self._open = False

    # ------------------------------------------------------------------
    # Active-list helpers
    # ------------------------------------------------------------------
    def _charge_local(self, category: str) -> None:
        self.table.clock.charge(
            f"prov.{category}", self.table.cost_model.local_ms
        )

    def _is_txn_created(self, loc: Path) -> bool:
        """Was the node currently at ``loc`` created in this transaction?

        With a fully expanded list, every transaction-created node has its
        own entry."""
        return loc in self._provlist

    def _retire_region(self, root: Path, destroyed: Tree, graveyard: Set[Path]) -> None:
        """The subtree ``destroyed`` (the current content at ``root``) is
        about to disappear: drop links for transaction-created temporaries
        and add the input (transaction-start) nodes that died to
        ``graveyard`` (``_dead`` for explicit deletes, ``_displaced`` for
        overwrites).

        Coverage is decided for *all* nodes before any link is removed —
        removing a parent's link first would make its children look like
        input data."""
        locs = [root.join(sub) for sub, _node in destroyed.nodes()]
        created = [loc for loc in locs if self._is_txn_created(loc)]
        created_set = set(created)
        for loc in locs:
            if loc not in created_set:
                graveyard.add(loc)
        for loc in created:
            self._remove_links_at(loc)

    def _clear_region(self, root: Path, destroyed: Tree) -> None:
        """Explicit-delete bookkeeping: input nodes die loudly, and any
        displaced death whose masking content sat inside the destroyed
        region reverts to a net ``D``."""
        self._retire_region(root, destroyed, self._dead)
        for loc in [loc for loc in self._displaced if root.is_prefix_of(loc)]:
            self._displaced.discard(loc)
            self._dead.add(loc)

    def _displace_region(self, root: Path, destroyed: Tree) -> None:
        """Overwrite bookkeeping: input nodes die silently (the
        overwriting record accounts for the region), but recoverably."""
        self._retire_region(root, destroyed, self._displaced)

    def _remove_links_at(self, loc: Path) -> None:
        self._provlist.pop(loc, None)

    def _net_link_for(self, src_loc: Path) -> PendingLink:
        """The net link describing data copied from ``src_loc``: net
        records relate the transaction's output to its *input*, in which
        intra-transaction temporaries never existed.

        * source covered by a same-transaction copy → compose: the data
          really came from that copy's input-side source;
        * source covered by a same-transaction insert → the data
          originated *in this transaction*: it nets to an insertion;
        * otherwise → a plain copy link to ``src_loc`` (data from the
          previous version or an external database)."""
        for ancestor in src_loc.ancestors(include_self=True):
            link = self._provlist.get(ancestor)
            if link is None:
                continue
            op, link_src = link
            if op == OP_COPY and link_src is not None:
                return (OP_COPY, src_loc.rebase(ancestor, link_src))
            return (OP_INSERT, None)
        return (OP_COPY, src_loc)

    # ------------------------------------------------------------------
    # Tracking
    # ------------------------------------------------------------------
    def begin(self) -> None:
        if self._open:
            return
        self._open = True
        self._provlist.clear()
        self._dead.clear()
        self._displaced.clear()

    def track_insert(self, loc: Path) -> None:
        self.begin()
        self._charge_local("add")
        self._provlist[loc] = (OP_INSERT, None)

    def track_delete(self, loc: Path, deleted: Tree) -> None:
        self.begin()
        self._charge_local("delete")
        self._clear_region(loc, deleted)

    def track_copy(
        self, dst: Path, src: Path, copied: Tree, overwritten: Optional[Tree]
    ) -> None:
        self.begin()
        self._charge_local("paste")
        # net links must be computed against the list *before* the paste
        # clears the destination region (the source may sit inside it)
        links = self._net_copy_links(dst, src, copied)
        if overwritten is not None:
            # temporaries inside the region vanish without a trace;
            # overwritten *input* data is displaced — silent while the
            # overwriting record survives (Figure 5(a): step 6 overwrites
            # step 5's insert and records only the copy), but revived to
            # a net ``D`` if a later statement deletes the pasted region
            self._displace_region(dst, overwritten)
        self._provlist.update(links)

    def _net_copy_links(
        self, dst: Path, src: Path, copied: Tree
    ) -> Dict[Path, PendingLink]:
        """One net link per copied node, each composed individually (a
        copied region can mix previously-committed data, data copied in
        earlier this transaction, and data inserted this transaction)."""
        return {
            dst.join(sub): self._net_link_for(src.join(sub))
            for sub, _node in copied.nodes()
        }

    # ------------------------------------------------------------------
    # Commit
    # ------------------------------------------------------------------
    def _net_records(self, tid: int) -> List[ProvRecord]:
        records = [
            ProvRecord(tid, op, loc, src)
            for loc, (op, src) in self._provlist.items()
        ]
        records.extend(
            ProvRecord(tid, OP_DELETE, loc)
            for loc in self._emitted_dead()
        )
        records.sort(key=lambda record: record.loc.sort_key())
        return records

    def _emitted_dead(self) -> List[Path]:
        """Dead input locations that get an explicit ``D`` record.

        A dead location whose content was re-created — and whose
        re-creation *survived* to commit — carries an I/C link in the
        active list, which takes over the {Tid, Loc} key; everything
        still dead and linkless is written out in full."""
        return [loc for loc in self._dead if loc not in self._provlist]

    def commit(self) -> None:
        tid = self.allocate_tid()
        records = self._net_records(tid)
        if records:
            self.table.write_batch(records, "commit")
        else:
            # an empty commit still costs one round trip (the commit call)
            self.table.clock.charge(
                "prov.commit", self.table.cost_model.round_trip_ms
            )
        self._provlist.clear()
        self._dead.clear()
        self._displaced.clear()
        self._open = False

    # ------------------------------------------------------------------
    @property
    def pending_count(self) -> int:
        """Links currently on the active list (for tests)."""
        return len(self._provlist) + len(self._emitted_dead())
