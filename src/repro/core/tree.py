"""The paper's tree data model (Section 2).

Trees are unordered, edge-labeled, and store data values only at leaves.
The paper writes them as ``{a1: v1, ..., an: vn}`` where each ``vi`` is
either a subtree or a data value.  A leaf may hold a value from some domain
``D`` (here: ``str | int | float | bool | None``); the *empty tree* ``{}``
is also a valid leaf-like node with no value.

This module implements:

* :class:`Tree` — a mutable node with dict children or a leaf value;
* the three primitive mutations used by the update semantics,
  ``t ] {a: v}`` (disjoint add), ``t - a`` (remove edge), and
  ``t[p := t']`` (replace subtree), with the same failure conditions the
  paper specifies;
* structural helpers used throughout the system: path resolution, node
  enumeration, structural equality, deep copy, size accounting.

Mutating operations are confined to explicit methods; querying never
mutates.  Copies are deep, so a pasted subtree never aliases its source.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple, Union

from .paths import Label, Path, PathError

__all__ = ["Tree", "TreeError", "Value", "value_size"]

Value = Union[str, int, float, bool, None]

_VALUE_TYPES = (str, int, float, bool)


class TreeError(Exception):
    """Raised when a tree operation fails per the paper's semantics.

    The paper's semantics are partial functions: ``t ] u`` fails on shared
    top-level edge names, ``t - a`` fails if no edge ``a`` exists, and
    ``t[p := u]`` fails if ``p`` is not present in ``t``.
    """


def _check_value(value: Value) -> Value:
    if value is None:
        return None
    if isinstance(value, bool) or isinstance(value, _VALUE_TYPES):
        return value
    raise TreeError(
        f"leaf values must be str/int/float/bool/None, got {type(value).__name__}"
    )


class Tree:
    """An unordered edge-labeled tree node.

    A node is *either* an interior node with children (possibly zero — the
    empty tree ``{}``) *or* a leaf carrying a data value.  A node with a
    value may not have children.

    >>> t = Tree.from_dict({"c1": {"x": 1, "y": 2}})
    >>> t.resolve("c1/x").value
    1
    >>> sorted(str(p) for p, _ in t.nodes())
    ['', 'c1', 'c1/x', 'c1/y']
    """

    __slots__ = ("_children", "_value")

    def __init__(self, value: Value = None) -> None:
        self._children: Dict[Label, "Tree"] = {}
        self._value: Value = _check_value(value)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def leaf(cls, value: Value) -> "Tree":
        return cls(value)

    @classmethod
    def empty(cls) -> "Tree":
        return cls()

    @classmethod
    def from_dict(cls, data: "Value | dict") -> "Tree":
        """Build a tree from nested dicts; non-dict values become leaves.

        This mirrors the paper's ``{a1: v1, ..., an: vn}`` notation.
        """
        if isinstance(data, dict):
            node = cls()
            for label, sub in data.items():
                node.add_child(label, cls.from_dict(sub))
            return node
        return cls.leaf(data)

    def to_dict(self) -> "Value | dict":
        """Inverse of :meth:`from_dict` (leaves map to their values)."""
        if self.is_leaf_value:
            return self._value
        return {label: child.to_dict() for label, child in sorted(self._children.items())}

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def value(self) -> Value:
        return self._value

    @property
    def is_leaf_value(self) -> bool:
        """True when this node carries a data value (hence no children)."""
        return self._value is not None

    @property
    def is_empty(self) -> bool:
        """True for the empty tree ``{}`` — no children and no value."""
        return self._value is None and not self._children

    @property
    def children(self) -> Dict[Label, "Tree"]:
        """A read-only view of the children mapping (do not mutate)."""
        return self._children

    def child(self, label: Label) -> "Tree":
        try:
            return self._children[label]
        except KeyError:
            raise TreeError(f"no edge labeled {label!r}") from None

    def has_child(self, label: Label) -> bool:
        return label in self._children

    def resolve(self, path: "Path | str") -> "Tree":
        """Return the subtree rooted at ``path`` (``t.p`` in the paper).

        Raises :class:`TreeError` if the path is not present.
        """
        node = self
        for label in Path.of(path):
            if label not in node._children:
                raise TreeError(f"path not present: missing edge {label!r}")
            node = node._children[label]
        return node

    def contains_path(self, path: "Path | str") -> bool:
        node = self
        for label in Path.of(path):
            if label not in node._children:
                return False
            node = node._children[label]
        return True

    def nodes(self, prefix: Optional[Path] = None) -> Iterator[Tuple[Path, "Tree"]]:
        """Yield ``(path, node)`` for every node in the tree, root included.

        Children are visited in sorted label order so the enumeration is
        deterministic, which keeps provenance tables reproducible.
        """
        prefix = prefix if prefix is not None else Path()
        yield prefix, self
        for label in sorted(self._children):
            yield from self._children[label].nodes(prefix.child(label))

    def paths(self) -> Iterator[Path]:
        for path, _node in self.nodes():
            yield path

    def node_count(self) -> int:
        """Number of nodes including this one (the paper's subtree size)."""
        return 1 + sum(child.node_count() for child in self._children.values())

    def leaf_values(self) -> Iterator[Tuple[Path, Value]]:
        for path, node in self.nodes():
            if node.is_leaf_value:
                yield path, node.value

    # ------------------------------------------------------------------
    # Primitive mutations (the paper's partial operations)
    # ------------------------------------------------------------------
    def add_child(self, label: Label, subtree: "Tree") -> None:
        """``t ] {label: subtree}``: fails on a shared top-level edge name."""
        if self.is_leaf_value:
            raise TreeError(f"cannot add edge {label!r} under a leaf value")
        if label in self._children:
            raise TreeError(f"edge {label!r} already present (t ] u requires disjoint edges)")
        if not isinstance(subtree, Tree):
            raise TreeError(f"child must be a Tree, got {type(subtree).__name__}")
        self._children[label] = subtree

    def remove_child(self, label: Label) -> "Tree":
        """``t - label``: fails if no such edge exists; returns the subtree."""
        if label not in self._children:
            raise TreeError(f"cannot delete: no edge labeled {label!r}")
        return self._children.pop(label)

    def replace_at(self, path: "Path | str", subtree: "Tree") -> None:
        """``t[path := subtree]``: fails if ``path`` is not present.

        Replacing at the root replaces this node's entire contents.
        """
        path = Path.of(path)
        if path.is_root:
            self._children = subtree._children
            self._value = subtree._value
            return
        parent = self.resolve(path.parent)
        if not parent.has_child(path.last):
            raise TreeError(f"path not present: {path}")
        parent._children[path.last] = subtree

    def set_value(self, value: Value) -> None:
        """Set a leaf value; fails if the node has children."""
        if self._children and value is not None:
            raise TreeError("an interior node cannot carry a data value")
        self._value = _check_value(value)

    # ------------------------------------------------------------------
    # Copying and equality
    # ------------------------------------------------------------------
    def deep_copy(self) -> "Tree":
        """A structurally equal tree sharing no nodes with this one."""
        clone = Tree(self._value)
        clone._children = {label: child.deep_copy() for label, child in self._children.items()}
        return clone

    def structurally_equal(self, other: "Tree") -> bool:
        """Unordered structural equality (same edges, same leaf values)."""
        if not isinstance(other, Tree):
            return False
        if self._value != other._value:
            return False
        if self._children.keys() != other._children.keys():
            return False
        return all(
            child.structurally_equal(other._children[label])
            for label, child in self._children.items()
        )

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Tree):
            return self.structurally_equal(other)
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - trees are mutable
        raise TypeError("Tree is mutable and unhashable")

    def __repr__(self) -> str:
        if self.is_leaf_value:
            return f"Tree.leaf({self._value!r})"
        inner = ", ".join(f"{k}: ..." for k in sorted(self._children))
        return f"Tree({{{inner}}})"

    def render(self, indent: int = 0) -> str:
        """A human-readable indented rendering, used by examples."""
        lines = []
        if self.is_leaf_value:
            return repr(self._value)
        for label in sorted(self._children):
            child = self._children[label]
            if child.is_leaf_value:
                lines.append("  " * indent + f"{label}: {child.value!r}")
            else:
                lines.append("  " * indent + f"{label}:")
                rendered = child.render(indent + 1)
                if rendered:
                    lines.append(rendered)
        return "\n".join(lines)


def value_size(value: Value) -> int:
    """Approximate storage footprint of a leaf value, in bytes."""
    if value is None:
        return 0
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    return len(value.encode("utf-8"))
