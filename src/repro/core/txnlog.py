"""Transaction metadata (Section 2.1).

"Additional information about each transaction, such as commit time and
user identity, can be stored in a separate table with key Tid."  And
Section 2.2: Mod's answer "could then be combined with additional
information about transactions to identify all users that modified the
subtree at p."

:class:`TransactionLog` is that table — ``txn(tid, user, committed_ms,
note)`` in the embedded engine, sharing the provenance store's database —
and :func:`who_modified` is the promised combination of Mod with it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..storage.db import Database
from ..storage.schema import Column, TableSchema
from ..storage.types import ColumnType
from .paths import Path
from .provenance import ProvTable
from .queries import ProvenanceQueries

__all__ = ["TransactionInfo", "TransactionLog", "who_modified"]


@dataclass(frozen=True)
class TransactionInfo:
    tid: int
    user: str
    committed_ms: float
    note: Optional[str] = None


def txn_schema(table_name: str = "txn") -> TableSchema:
    return TableSchema(
        table_name,
        [
            Column("tid", ColumnType.INT, nullable=False),
            Column("user", ColumnType.TEXT, nullable=False),
            Column("committed_ms", ColumnType.REAL, nullable=False),
            Column("note", ColumnType.TEXT),
        ],
        primary_key=("tid",),
    )


class TransactionLog:
    """Per-transaction metadata keyed by Tid.

    Lives in the same database as the provenance relation (pass the
    :class:`ProvTable`'s db) so that, as in CPDB, one store holds the
    full provenance record.  Commit times default to the virtual clock's
    current reading, keeping experiments deterministic.
    """

    def __init__(self, table: ProvTable, table_name: str = "txn") -> None:
        self._prov_table = table
        self.db: Database = table.db
        self.table_name = table_name
        if not self.db.has_table(table_name):
            self.db.create_table(txn_schema(table_name))

    def record_commit(
        self, tid: int, user: str, note: Optional[str] = None
    ) -> TransactionInfo:
        info = TransactionInfo(
            tid=tid,
            user=user,
            committed_ms=self._prov_table.clock.now_ms,
            note=note,
        )
        self.db.insert(
            self.table_name, (info.tid, info.user, info.committed_ms, info.note)
        )
        return info

    def info(self, tid: int) -> Optional[TransactionInfo]:
        found = self.db.table(self.table_name).lookup_pk((tid,))
        if found is None:
            return None
        return TransactionInfo(*found[1])

    def all_transactions(self) -> List[TransactionInfo]:
        return sorted(
            (TransactionInfo(*row) for _rid, row in self.db.table(self.table_name).scan()),
            key=lambda info: info.tid,
        )

    def by_user(self, user: str) -> List[TransactionInfo]:
        return [info for info in self.all_transactions() if info.user == user]


def who_modified(
    queries: ProvenanceQueries,
    log: TransactionLog,
    loc: "Path | str",
) -> Dict[str, Set[int]]:
    """Which users modified the subtree under ``loc``, and in which
    transactions — Mod(p) joined with the transaction table."""
    result: Dict[str, Set[int]] = {}
    for tid in queries.get_mod(Path.of(loc)):
        info = log.info(tid)
        user = info.user if info is not None else "<unknown>"
        result.setdefault(user, set()).add(tid)
    return result
