"""The paper's atomic update language and its formal semantics (Section 2).

::

    u ::= ins {a : v} into p  |  del a from p  |  copy q into p

with semantics over trees::

    [[ins {a : v} into p]](t) = t[p := (t.p ] {a : v})]
    [[del a from p]](t)       = t[p := (t.p - a)]
    [[copy q into p]](t)      = t[p := t.q]
    [[U ; U']](t)             = [[U']]([[U]](t))

In the paper's examples paths are *absolute*: the first label names a
database (``T``, ``S1``, ...).  We model the collection of databases as a
:class:`Workspace` — a set of named roots.  Insertions, copies, and deletes
may only modify the target database; a copy's *source* may be any root
(that is how data moves from ``S1``/``S2`` into ``T``).

The module also provides a concrete syntax parser so update scripts can be
written exactly as in Figure 3 of the paper::

    copy S1/a1/y into T/c1/y
    insert {c2 : {}} into T
    del c5 from T

(``ins`` and ``insert``, ``del`` and ``delete`` are accepted as synonyms.)
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Union

from .paths import Label, Path, PathError
from .tree import Tree, TreeError, Value

__all__ = [
    "Insert",
    "Delete",
    "Copy",
    "Update",
    "UpdateError",
    "Workspace",
    "apply_update",
    "apply_sequence",
    "parse_update",
    "parse_script",
    "format_update",
]


class UpdateError(Exception):
    """Raised when an update fails (bad target root, partial-op failure)."""


@dataclass(frozen=True)
class Insert:
    """``ins {label : value} into path``.

    ``value`` is either a data value or ``None`` for the empty tree ``{}``
    (the paper restricts inserted values to these two forms).
    """

    label: Label
    value: Value
    path: Path

    def __str__(self) -> str:
        return format_update(self)


@dataclass(frozen=True)
class Delete:
    """``del label from path``."""

    label: Label
    path: Path

    def __str__(self) -> str:
        return format_update(self)


@dataclass(frozen=True)
class Copy:
    """``copy src into dst`` — replaces the subtree at ``dst`` with a deep
    copy of the subtree at ``src``."""

    src: Path
    dst: Path

    def __str__(self) -> str:
        return format_update(self)


Update = Union[Insert, Delete, Copy]


class Workspace:
    """A collection of named database roots viewed as trees.

    ``Workspace({"T": t, "S1": s1})`` resolves absolute paths like
    ``T/c1/y`` by selecting the root named by the head label.  Only the
    designated *target* root may be modified.
    """

    def __init__(self, roots: Dict[str, Tree], target: str = "T") -> None:
        if target not in roots:
            raise UpdateError(f"target root {target!r} not among roots {sorted(roots)}")
        self.roots: Dict[str, Tree] = dict(roots)
        self.target = target

    # ------------------------------------------------------------------
    def resolve(self, path: "Path | str") -> Tree:
        """Resolve an absolute path to a subtree."""
        path = Path.of(path)
        if path.is_root:
            raise UpdateError("absolute paths must start with a database name")
        root_name = path.head
        if root_name not in self.roots:
            raise UpdateError(f"unknown database {root_name!r} in path {path}")
        try:
            return self.roots[root_name].resolve(path.tail)
        except TreeError as exc:
            raise UpdateError(f"cannot resolve {path}: {exc}") from exc

    def contains_path(self, path: "Path | str") -> bool:
        path = Path.of(path)
        if path.is_root or path.head not in self.roots:
            return False
        return self.roots[path.head].contains_path(path.tail)

    def target_tree(self) -> Tree:
        return self.roots[self.target]

    def _require_target(self, path: Path, what: str) -> Path:
        if path.is_root or path.head != self.target:
            raise UpdateError(
                f"{what} may only be performed in the target database "
                f"{self.target!r}, got path {path}"
            )
        return path.tail

    def snapshot(self) -> "Workspace":
        """A deep copy of the workspace (used by transactional provenance
        to remember the reference version at transaction start)."""
        return Workspace(
            {name: tree.deep_copy() for name, tree in self.roots.items()},
            target=self.target,
        )


def apply_update(ws: Workspace, update: Update) -> None:
    """Apply one atomic update to the workspace, in place.

    Failure conditions follow the paper's partial semantics and raise
    :class:`UpdateError` without modifying the workspace.
    """
    if isinstance(update, Insert):
        rel = ws._require_target(update.path, "insertions")
        try:
            node = ws.target_tree().resolve(rel)
            child = Tree.empty() if update.value is None else Tree.leaf(update.value)
            node.add_child(update.label, child)
        except TreeError as exc:
            raise UpdateError(f"{format_update(update)} failed: {exc}") from exc
    elif isinstance(update, Delete):
        rel = ws._require_target(update.path, "deletions")
        try:
            node = ws.target_tree().resolve(rel)
            node.remove_child(update.label)
        except TreeError as exc:
            raise UpdateError(f"{format_update(update)} failed: {exc}") from exc
    elif isinstance(update, Copy):
        dst_rel = ws._require_target(update.dst, "copies")
        source = ws.resolve(update.src)  # may be any root, incl. the target
        copied = source.deep_copy()
        target = ws.target_tree()
        if dst_rel.is_root:
            raise UpdateError("cannot copy over the target root itself")
        # The paper's formal t[p := t.q] is partial (fails if p is absent),
        # but its own example (Figure 3, step 7: "copy S1/a3 into T/c3")
        # copies into a path that does not exist yet.  We therefore treat
        # copy as replace-or-create: the destination's *parent* must exist;
        # the final edge is created if missing and replaced otherwise.
        parent = _resolve_target_parent(ws, dst_rel)
        if parent.is_leaf_value:
            raise UpdateError(f"{format_update(update)} failed: parent is a leaf value")
        parent.children[dst_rel.last] = copied
    else:  # pragma: no cover - defensive
        raise UpdateError(f"unknown update kind: {update!r}")


def _resolve_target_parent(ws: Workspace, rel: Path) -> Tree:
    try:
        return ws.target_tree().resolve(rel.parent)
    except TreeError as exc:
        raise UpdateError(f"path not present: {rel}") from exc


def apply_sequence(ws: Workspace, updates: Iterable[Update]) -> None:
    """``[[U ; U']] = [[U']] o [[U]]`` — left-to-right composition."""
    for update in updates:
        apply_update(ws, update)


# ----------------------------------------------------------------------
# Concrete syntax
# ----------------------------------------------------------------------

_INSERT_RE = re.compile(
    r"^(?:ins|insert)\s*\{\s*(?P<label>[^:{}\s]+)\s*:\s*(?P<value>\{\s*\}|[^{}]+?)\s*\}"
    r"\s+into\s+(?P<path>\S+)$"
)
_DELETE_RE = re.compile(r"^(?:del|delete)\s+(?P<label>\S+)\s+from\s+(?P<path>\S+)$")
_COPY_RE = re.compile(r"^copy\s+(?P<src>\S+)\s+into\s+(?P<dst>\S+)$")


def _parse_value(text: str) -> Value:
    text = text.strip()
    if re.fullmatch(r"\{\s*\}", text):
        return None  # the empty tree
    if text.startswith('"') and text.endswith('"') and len(text) >= 2:
        return text[1:-1]
    if text.startswith("'") and text.endswith("'") and len(text) >= 2:
        return text[1:-1]
    if re.fullmatch(r"-?\d+", text):
        return int(text)
    if re.fullmatch(r"-?\d+\.\d*", text):
        return float(text)
    if text == "true":
        return True
    if text == "false":
        return False
    return text  # bare word string


def parse_update(line: str) -> Update:
    """Parse one atomic update in the paper's concrete syntax.

    >>> parse_update("copy S1/a1/y into T/c1/y")
    Copy(src=Path('S1/a1/y'), dst=Path('T/c1/y'))
    >>> parse_update("insert {y : 12} into T/c4")
    Insert(label='y', value=12, path=Path('T/c4'))
    """
    text = line.strip().rstrip(";")
    match = _INSERT_RE.match(text)
    if match:
        return Insert(
            label=match.group("label"),
            value=_parse_value(match.group("value")),
            path=Path.parse(match.group("path")),
        )
    match = _DELETE_RE.match(text)
    if match:
        return Delete(label=match.group("label"), path=Path.parse(match.group("path")))
    match = _COPY_RE.match(text)
    if match:
        return Copy(src=Path.parse(match.group("src")), dst=Path.parse(match.group("dst")))
    raise UpdateError(f"cannot parse update: {line!r}")


def parse_script(text: str) -> List[Update]:
    """Parse a multi-line update script.

    Blank lines and ``--``/``#`` comments are skipped; a leading
    ``(n)`` step number (as printed in Figure 3) is allowed and ignored.
    """
    updates: List[Update] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#") or line.startswith("--"):
            continue
        for statement in line.split(";"):
            statement = re.sub(r"^\(\d+\)\s*", "", statement.strip())
            if statement:
                updates.append(parse_update(statement))
    return updates


def format_update(update: Update) -> str:
    """Render an update back to the paper's concrete syntax."""
    if isinstance(update, Insert):
        if update.value is None:
            value = "{}"
        elif isinstance(update.value, str):
            value = f'"{update.value}"'
        elif update.value is True:
            value = "true"
        elif update.value is False:
            value = "false"
        else:
            value = str(update.value)
        return f"ins {{{update.label} : {value}}} into {update.path}"
    if isinstance(update, Delete):
        return f"del {update.label} from {update.path}"
    if isinstance(update, Copy):
        return f"copy {update.src} into {update.dst}"
    raise UpdateError(f"unknown update kind: {update!r}")
