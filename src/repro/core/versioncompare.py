"""Version diffs vs provenance (Section 5, "Version control, archiving,
and synchronization").

"Such techniques aim to preserve or reconcile the states of the data as
it evolves over time, but they tell us only how the versions *differ*,
not how the changes were actually *performed*."

:func:`explain_diff` makes that distinction concrete: it computes the
state diff between two archived reference versions and annotates every
changed region with the provenance records that explain it.  A diff sees
only *appeared / disappeared / changed*; the provenance record reveals
whether an appearance was a hand insertion or a copy — and from where.
:class:`DiffExplanation.copies_misread_as_inserts` lists exactly the
information a pure version-control view loses.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .archive import VersionArchive, diff_trees
from .paths import Path
from .provenance import OP_COPY, OP_INSERT, ProvRecord, ProvenanceStore
from .queries import ProvenanceQueries

__all__ = ["ExplainedChange", "DiffExplanation", "explain_diff"]


@dataclass(frozen=True)
class ExplainedChange:
    """One state-diff entry with its provenance explanation.

    ``change`` is ``"added"``, ``"removed"``, or ``"modified"`` — all a
    diff can say.  ``explanation`` is the effective provenance record for
    the change (``None`` when no record covers it, e.g. a change whose
    operations cancelled out net records under a coarser strategy)."""

    loc: Path
    change: str
    explanation: Optional[ProvRecord]

    @property
    def performed_by(self) -> str:
        """The *action* behind the change, which a diff cannot see."""
        if self.explanation is None:
            return "unknown"
        if self.explanation.op == OP_COPY:
            return f"copy from {self.explanation.src}"
        if self.explanation.op == OP_INSERT:
            return "hand insertion"
        return "deletion"


@dataclass
class DiffExplanation:
    tid_a: int
    tid_b: int
    changes: List[ExplainedChange] = field(default_factory=list)

    @property
    def copies_misread_as_inserts(self) -> List[ExplainedChange]:
        """Additions that version control would report as new data but
        provenance knows were *copied* — the exact information the paper
        says diffs lose."""
        return [
            change
            for change in self.changes
            if change.change == "added"
            and change.explanation is not None
            and change.explanation.op == OP_COPY
        ]

    def summary(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for change in self.changes:
            out[change.change] = out.get(change.change, 0) + 1
        return out


def _explaining_record(
    queries: ProvenanceQueries, loc: Path, tid_a: int, tid_b: int
) -> Optional[ProvRecord]:
    """The most recent effective record at ``loc`` in ``(tid_a, tid_b]``."""
    for tid in range(tid_b, tid_a, -1):
        record = queries.effective(tid, loc)
        if record is not None:
            return record
    return None


def explain_diff(
    archive: VersionArchive,
    store: ProvenanceStore,
    tid_a: int,
    tid_b: int,
    target_name: str = "T",
) -> DiffExplanation:
    """Diff reference versions ``tid_a`` → ``tid_b`` and explain each
    changed region with provenance."""
    if tid_b < tid_a:
        raise ValueError("explain_diff expects tid_a <= tid_b")
    old = archive.reconstruct(tid_a)
    new = archive.reconstruct(tid_b)
    upserts, deletes = diff_trees(old, new)
    queries = ProvenanceQueries(store, target_name=target_name, tnow=tid_b)

    explanation = DiffExplanation(tid_a, tid_b)
    for rel, _payload in upserts:
        if rel.is_root:
            continue
        loc = Path([target_name]).join(rel)
        kind = "modified" if old.contains_path(rel) else "added"
        record = _explaining_record(queries, loc, tid_a, tid_b)
        explanation.changes.append(ExplainedChange(loc, kind, record))
    for rel in deletes:
        loc = Path([target_name]).join(rel)
        record = _explaining_record(queries, loc, tid_a, tid_b)
        explanation.changes.append(ExplainedChange(loc, "removed", record))
    explanation.changes.sort(key=lambda change: change.loc.sort_key())
    return explanation
