"""A Datalog engine with stratified negation and semi-naive evaluation.

The paper specifies both the hierarchical-provenance view (Section 2.1.3)
and the provenance queries (Section 2.2) as Datalog programs.  CPDB could
not run them directly ("due to lack of support for the kind of recursion
needed by the Trace query", Section 3.3) and fell back to procedural
programs; we implement both and use this engine to check that the
procedural implementations compute the declarative specification.
"""

from .ast import Atom, Const, Literal, Rule, Term, Var
from .builtins import BUILTINS, Builtin
from .engine import DatalogError, Program
from .parser import parse_program, parse_rule

__all__ = [
    "Atom",
    "Const",
    "Literal",
    "Rule",
    "Term",
    "Var",
    "Builtin",
    "BUILTINS",
    "Program",
    "DatalogError",
    "parse_program",
    "parse_rule",
]
