"""Datalog abstract syntax: terms, atoms, literals, rules."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Optional, Tuple, Union

__all__ = ["Var", "Const", "Term", "Atom", "Literal", "Rule", "Substitution"]


@dataclass(frozen=True)
class Var:
    """A logic variable (conventionally capitalized in the text syntax)."""

    name: str

    def __repr__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Const:
    """A constant (string, int, float, bool, None)."""

    value: Any

    def __repr__(self) -> str:
        return repr(self.value)


Term = Union[Var, Const]
Substitution = Dict[Var, Any]


@dataclass(frozen=True)
class Atom:
    """``pred(t1, ..., tn)``."""

    pred: str
    terms: Tuple[Term, ...]

    @property
    def arity(self) -> int:
        return len(self.terms)

    def vars(self) -> FrozenSet[Var]:
        return frozenset(term for term in self.terms if isinstance(term, Var))

    def ground(self, subst: Substitution) -> Tuple[Any, ...]:
        """Instantiate to a fact tuple; raises KeyError on unbound vars."""
        out = []
        for term in self.terms:
            if isinstance(term, Const):
                out.append(term.value)
            else:
                out.append(subst[term])
        return tuple(out)

    def __repr__(self) -> str:
        inner = ", ".join(repr(term) for term in self.terms)
        return f"{self.pred}({inner})"


@dataclass(frozen=True)
class Literal:
    """A possibly negated body atom.  Builtin literals are recognized by
    predicate name at evaluation time."""

    atom: Atom
    negated: bool = False

    def __repr__(self) -> str:
        return f"not {self.atom!r}" if self.negated else repr(self.atom)


@dataclass(frozen=True)
class Rule:
    """``head :- body.``  A rule with an empty body asserts a fact."""

    head: Atom
    body: Tuple[Literal, ...] = ()

    def __repr__(self) -> str:
        if not self.body:
            return f"{self.head!r}."
        return f"{self.head!r} :- " + ", ".join(repr(lit) for lit in self.body) + "."
