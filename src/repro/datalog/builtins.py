"""Builtin predicates for path manipulation and arithmetic.

The paper's rules build and decompose paths (``p/a``), compare path
prefixes (``p <= q``), and step transaction counters (``t - 1``).  Each
builtin declares which argument patterns it supports; during rule
evaluation a builtin either *checks* a fully bound tuple or *binds* its
free output variables from bound inputs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Builtin", "BUILTINS"]

#: bound-values-in, candidate extensions out; None marks a free position
Solver = Callable[[Sequence[Optional[Any]]], Iterator[Tuple[Any, ...]]]


@dataclass(frozen=True)
class Builtin:
    """A builtin predicate: ``solve(args)`` receives the argument list
    with bound values filled in and ``None`` at free positions, and
    yields full argument tuples consistent with the bindings."""

    name: str
    arity: int
    solve: Solver


def _split_path(path: str) -> Tuple[str, str]:
    if "/" not in path:
        return "", path
    head, _slash, last = path.rpartition("/")
    return head, last


def _path_join(args: Sequence[Optional[Any]]) -> Iterator[Tuple[Any, ...]]:
    """``path_join(P, A, PA)``: PA = P + "/" + A.  Modes: (b, b, ?) and
    (?, ?, b)."""
    p, a, pa = args
    if p is not None and a is not None:
        joined = f"{p}/{a}" if p else a
        if pa is None or pa == joined:
            yield (p, a, joined)
        return
    if pa is not None:
        head, last = _split_path(pa)
        if last == pa and head == "":
            # a one-label path: parent is the root ""
            candidates = [("", pa)]
        else:
            candidates = [(head, last)]
        for head, last in candidates:
            if (p is None or p == head) and (a is None or a == last):
                yield (head, last, pa)
        return
    raise ValueError("path_join needs either (P, A) or PA bound")


def _prefix(args: Sequence[Optional[Any]]) -> Iterator[Tuple[Any, ...]]:
    """``prefix(P, Q)``: P is a prefix of Q (both bound)."""
    p, q = args
    if p is None or q is None:
        raise ValueError("prefix/2 requires both arguments bound")
    if p == q or (q.startswith(p + "/") if p else True):
        yield (p, q)


def _head_label(args: Sequence[Optional[Any]]) -> Iterator[Tuple[Any, ...]]:
    """``head_label(P, H)``: H is the first label of path P (P bound)."""
    p, h = args
    if p is None:
        raise ValueError("head_label/2 requires the path bound")
    head = p.split("/", 1)[0] if p else ""
    if h is None or h == head:
        yield (p, head)


def _sub1(args: Sequence[Optional[Any]]) -> Iterator[Tuple[Any, ...]]:
    """``sub1(T, U)``: U = T - 1.  Modes: (b, ?) and (?, b)."""
    t, u = args
    if t is not None:
        if u is None or u == t - 1:
            yield (t, t - 1)
        return
    if u is not None:
        yield (u + 1, u)
        return
    raise ValueError("sub1 needs one argument bound")


def _neq(args: Sequence[Optional[Any]]) -> Iterator[Tuple[Any, ...]]:
    a, b = args
    if a is None or b is None:
        raise ValueError("neq/2 requires both arguments bound")
    if a != b:
        yield (a, b)


def _leq(args: Sequence[Optional[Any]]) -> Iterator[Tuple[Any, ...]]:
    a, b = args
    if a is None or b is None:
        raise ValueError("leq/2 requires both arguments bound")
    if a <= b:
        yield (a, b)


BUILTINS: Dict[str, Builtin] = {
    builtin.name: builtin
    for builtin in (
        Builtin("path_join", 3, _path_join),
        Builtin("prefix", 2, _prefix),
        Builtin("head_label", 2, _head_label),
        Builtin("sub1", 2, _sub1),
        Builtin("neq", 2, _neq),
        Builtin("leq", 2, _leq),
    )
}
