"""Bottom-up Datalog evaluation: stratified negation, semi-naive fixpoint.

The program's predicates are split into strata such that every negated
dependency points to a strictly lower stratum (a :class:`DatalogError`
reports programs that are not stratifiable, e.g. negation through
recursion).  Within each stratum, rules run semi-naively: each iteration
joins at least one *delta* (newly derived) literal, so work is
proportional to new facts rather than to the whole database.

Body literals are evaluated left to right; a negated or builtin literal
must have its input variables bound by that point (rule authors order
bodies accordingly, as the paper's rules already do).

Positive literals with bound arguments probe *fact indexes* instead of
unifying against a predicate's whole fact set: per ``(predicate,
bound-argument-positions)`` signature, a hash index from the bound
values to the candidate facts is built lazily on first probe and
maintained incrementally as the fixpoint derives new facts.  Joins like
``path(X, Y), edge(Y, Z)`` thereby touch only the matching ``edge``
facts for each bound ``Y`` rather than every edge (``use_fact_indexes=
False`` restores the scan-everything behavior for A/B measurement).
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .ast import Atom, Const, Literal, Rule, Substitution, Var
from .builtins import BUILTINS, Builtin

__all__ = ["Program", "DatalogError"]

Fact = Tuple[Any, ...]


class DatalogError(Exception):
    """Unstratifiable program, unsafe rule, or unbound builtin/negation."""


class Program:
    """A set of rules plus extensional facts, evaluated on demand.

    >>> program = Program()
    >>> program.add_fact("edge", (1, 2))
    >>> program.add_fact("edge", (2, 3))
    >>> x, y, z = Var("X"), Var("Y"), Var("Z")
    >>> program.add_rule(Rule(Atom("path", (x, y)), (Literal(Atom("edge", (x, y))),)))
    >>> program.add_rule(Rule(Atom("path", (x, z)),
    ...     (Literal(Atom("path", (x, y))), Literal(Atom("edge", (y, z))))))
    >>> sorted(program.query("path"))
    [(1, 2), (1, 3), (2, 3)]
    """

    def __init__(
        self,
        builtins: Optional[Dict[str, Builtin]] = None,
        use_fact_indexes: bool = True,
    ) -> None:
        self.rules: List[Rule] = []
        self.facts: Dict[str, Set[Fact]] = {}
        self.builtins = dict(BUILTINS if builtins is None else builtins)
        self.use_fact_indexes = use_fact_indexes
        self._computed: Optional[Dict[str, Set[Fact]]] = None
        # (pred, bound positions) -> bound values -> candidate facts;
        # valid only during one evaluate() fixpoint
        self._fact_indexes: Dict[
            Tuple[str, Tuple[int, ...]], Dict[Tuple[Any, ...], List[Fact]]
        ] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_fact(self, pred: str, fact: Sequence[Any]) -> None:
        if pred in self.builtins:
            raise DatalogError(f"{pred!r} is a builtin; cannot add facts")
        self.facts.setdefault(pred, set()).add(tuple(fact))
        self._computed = None

    def add_facts(self, pred: str, facts: Iterable[Sequence[Any]]) -> None:
        for fact in facts:
            self.add_fact(pred, fact)

    def add_rule(self, rule: Rule) -> None:
        if rule.head.pred in self.builtins:
            raise DatalogError(f"cannot define builtin {rule.head.pred!r}")
        self._check_safety(rule)
        self.rules.append(rule)
        self._computed = None

    def _check_safety(self, rule: Rule) -> None:
        positive: Set[Var] = set()
        for literal in rule.body:
            if not literal.negated and literal.atom.pred not in self.builtins:
                positive |= literal.atom.vars()
            if literal.atom.pred in self.builtins:
                positive |= literal.atom.vars()  # builtins may bind outputs
        unsafe = rule.head.vars() - positive
        if unsafe:
            raise DatalogError(
                f"unsafe rule (head vars {sorted(v.name for v in unsafe)} "
                f"not bound in body): {rule!r}"
            )

    # ------------------------------------------------------------------
    # Stratification
    # ------------------------------------------------------------------
    def _stratify(self) -> List[List[str]]:
        preds: Set[str] = set(self.facts)
        for rule in self.rules:
            preds.add(rule.head.pred)
            for literal in rule.body:
                if literal.atom.pred not in self.builtins:
                    preds.add(literal.atom.pred)
        stratum: Dict[str, int] = {pred: 0 for pred in preds}
        # Bellman-Ford style relaxation; > |preds| rounds means a negative
        # cycle, i.e. an unstratifiable program.
        for _round in range(len(preds) + 1):
            changed = False
            for rule in self.rules:
                head = rule.head.pred
                for literal in rule.body:
                    pred = literal.atom.pred
                    if pred in self.builtins:
                        continue
                    needed = stratum[pred] + (1 if literal.negated else 0)
                    if stratum[head] < needed:
                        stratum[head] = needed
                        changed = True
            if not changed:
                break
        else:
            raise DatalogError("program is not stratifiable (negation in a cycle)")
        by_level: Dict[int, List[str]] = {}
        for pred, level in stratum.items():
            by_level.setdefault(level, []).append(pred)
        return [sorted(by_level[level]) for level in sorted(by_level)]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _solve_literal(
        self,
        literal: Literal,
        subst: Substitution,
        database: Dict[str, Set[Fact]],
        restrict: Optional[Set[Fact]] = None,
    ) -> Iterator[Substitution]:
        atom = literal.atom
        if atom.pred in self.builtins:
            yield from self._solve_builtin(atom, subst)
            return
        if literal.negated:
            bound = self._require_ground(atom, subst, "negated literal")
            if bound not in database.get(atom.pred, set()):
                yield subst
            return
        if restrict is not None:
            facts: Iterable[Fact] = restrict  # delta sets are small: scan
        elif self.use_fact_indexes:
            facts = self._candidate_facts(atom, subst, database)
        else:
            facts = database.get(atom.pred, set())
        for fact in facts:
            extended = self._unify(atom, fact, subst)
            if extended is not None:
                yield extended

    # ------------------------------------------------------------------
    # Fact indexes
    # ------------------------------------------------------------------
    def _candidate_facts(
        self, atom: Atom, subst: Substitution, database: Dict[str, Set[Fact]]
    ) -> Iterable[Fact]:
        """Facts of ``atom.pred`` that can possibly match under ``subst``:
        probes the (pred, bound positions) index when any argument is
        bound, falling back to the full fact set otherwise.  ``_unify``
        still validates every candidate, so this is purely a filter."""
        all_facts = database.get(atom.pred, ())
        positions: List[int] = []
        values: List[Any] = []
        for i, term in enumerate(atom.terms):
            if isinstance(term, Const):
                positions.append(i)
                values.append(term.value)
            else:
                value = subst.get(term, _MISSING)
                if value is not _MISSING:
                    positions.append(i)
                    values.append(value)
        if not positions or not all_facts:
            return all_facts
        try:
            probe = tuple(values)
            hash(probe)
        except TypeError:
            return all_facts  # unhashable binding (builtin output): scan
        signature = (atom.pred, tuple(positions))
        index = self._fact_indexes.get(signature)
        if index is None:
            index = {}
            key_of = self._fact_key(tuple(positions))
            for fact in all_facts:
                key = key_of(fact)
                if key is not None:
                    index.setdefault(key, []).append(fact)
            self._fact_indexes[signature] = index
        return index.get(probe, ())

    @staticmethod
    def _fact_key(positions: Tuple[int, ...]):
        """Projection of a fact onto ``positions`` (``None`` when the fact
        is too short to have them — it can never match such an atom)."""
        def key_of(fact: Fact) -> Optional[Tuple[Any, ...]]:
            try:
                return tuple(fact[i] for i in positions)
            except IndexError:
                return None
        return key_of

    def _index_new_facts(self, pred: str, fresh: Iterable[Fact]) -> None:
        """Keep every live index for ``pred`` consistent with facts the
        fixpoint just added to the database."""
        for (indexed_pred, positions), index in self._fact_indexes.items():
            if indexed_pred != pred:
                continue
            key_of = self._fact_key(positions)
            for fact in fresh:
                key = key_of(fact)
                if key is not None:
                    index.setdefault(key, []).append(fact)

    def _solve_builtin(self, atom: Atom, subst: Substitution) -> Iterator[Substitution]:
        builtin = self.builtins[atom.pred]
        if atom.arity != builtin.arity:
            raise DatalogError(f"{atom.pred}/{atom.arity}: expected arity {builtin.arity}")
        args: List[Optional[Any]] = []
        for term in atom.terms:
            if isinstance(term, Const):
                args.append(term.value)
            else:
                args.append(subst.get(term))
        try:
            # builtins are generators: force them so binding-mode errors
            # surface as DatalogError here rather than mid-iteration
            solutions = list(builtin.solve(args))
        except ValueError as exc:
            raise DatalogError(f"builtin {atom.pred!r}: {exc}") from exc
        for solution in solutions:
            extended = self._unify(atom, solution, subst)
            if extended is not None:
                yield extended

    @staticmethod
    def _unify(atom: Atom, fact: Fact, subst: Substitution) -> Optional[Substitution]:
        if len(fact) != len(atom.terms):
            return None
        out = subst
        copied = False
        for term, value in zip(atom.terms, fact):
            if isinstance(term, Const):
                if term.value != value:
                    return None
            else:
                bound = out.get(term, _MISSING)
                if bound is _MISSING:
                    if not copied:
                        out = dict(out)
                        copied = True
                    out[term] = value
                elif bound != value:
                    return None
        return out

    @staticmethod
    def _require_ground(atom: Atom, subst: Substitution, what: str) -> Fact:
        values = []
        for term in atom.terms:
            if isinstance(term, Const):
                values.append(term.value)
            elif term in subst:
                values.append(subst[term])
            else:
                raise DatalogError(
                    f"{what} {atom!r} has unbound variable {term.name!r}; "
                    "reorder the rule body"
                )
        return tuple(values)

    def _eval_rule(
        self,
        rule: Rule,
        database: Dict[str, Set[Fact]],
        delta: Optional[Dict[str, Set[Fact]]],
    ) -> Set[Fact]:
        """All head facts derivable from ``database``; with ``delta`` set,
        only derivations using at least one delta literal (semi-naive)."""
        derived: Set[Fact] = set()
        positions = range(len(rule.body))
        if delta is None:
            plans: List[Optional[int]] = [None]
        else:
            plans = [
                i
                for i in positions
                if not rule.body[i].negated
                and rule.body[i].atom.pred in delta
                and delta[rule.body[i].atom.pred]
            ]
        for delta_position in plans:
            stack: List[Tuple[int, Substitution]] = [(0, {})]
            while stack:
                index, subst = stack.pop()
                if index == len(rule.body):
                    derived.add(rule.head.ground(subst))
                    continue
                literal = rule.body[index]
                restrict = None
                if delta_position is not None and index == delta_position:
                    restrict = delta[literal.atom.pred]
                for extended in self._solve_literal(literal, subst, database, restrict):
                    stack.append((index + 1, extended))
        return derived

    def evaluate(self) -> Dict[str, Set[Fact]]:
        """Compute the full model (memoized until facts/rules change)."""
        if self._computed is not None:
            return self._computed
        database: Dict[str, Set[Fact]] = {
            pred: set(facts) for pred, facts in self.facts.items()
        }
        self._fact_indexes.clear()
        for stratum in self._stratify():
            stratum_preds = set(stratum)
            rules = [rule for rule in self.rules if rule.head.pred in stratum_preds]
            # naive first round
            delta: Dict[str, Set[Fact]] = {}
            for rule in rules:
                new = self._eval_rule(rule, database, None)
                existing = database.setdefault(rule.head.pred, set())
                fresh = new - existing
                existing |= fresh
                if fresh:
                    self._index_new_facts(rule.head.pred, fresh)
                    delta.setdefault(rule.head.pred, set()).update(fresh)
            # semi-naive iterations
            while delta:
                next_delta: Dict[str, Set[Fact]] = {}
                for rule in rules:
                    new = self._eval_rule(rule, database, delta)
                    existing = database.setdefault(rule.head.pred, set())
                    fresh = new - existing
                    existing |= fresh
                    if fresh:
                        self._index_new_facts(rule.head.pred, fresh)
                        next_delta.setdefault(rule.head.pred, set()).update(fresh)
                delta = next_delta
        self._fact_indexes.clear()
        self._computed = database
        return database

    def query(self, pred: str) -> Set[Fact]:
        """All facts of ``pred`` in the computed model."""
        return set(self.evaluate().get(pred, set()))


_MISSING = object()
