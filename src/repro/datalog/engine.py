"""Bottom-up Datalog evaluation: stratified negation, semi-naive fixpoint.

The program's predicates are split into strata such that every negated
dependency points to a strictly lower stratum (a :class:`DatalogError`
reports programs that are not stratifiable, e.g. negation through
recursion).  Within each stratum, rules run semi-naively: each iteration
joins at least one *delta* (newly derived) literal, so work is
proportional to new facts rather than to the whole database.

Body literals are evaluated left to right; a negated or builtin literal
must have its input variables bound by that point (rule authors order
bodies accordingly, as the paper's rules already do).

Positive literals with bound arguments probe *fact indexes* instead of
unifying against a predicate's whole fact set: per ``(predicate,
bound-argument-positions)`` signature, a hash index from the bound
values to the candidate facts is built lazily on first probe and
maintained incrementally as the fixpoint derives new facts.  Joins like
``path(X, Y), edge(Y, Z)`` thereby touch only the matching ``edge``
facts for each bound ``Y`` rather than every edge (``use_fact_indexes=
False`` restores the scan-everything behavior for A/B measurement).

Fact indexes are *persistent* (the shared index lifecycle of
``docs/ARCHITECTURE.md``): they survive ``evaluate()`` and are extended
— not rebuilt — when :meth:`Program.add_fact` grows the extensional
database.  For negation-free programs a repeated ``evaluate()`` after
``add_fact`` is itself incremental: semi-naive iteration restarts from
the previous model with the new facts as the delta, so work is
proportional to what the new facts derive.  Negation is non-monotone, so
any program with a negated literal falls back to a full recompute (and
:meth:`Program.retract_fact` / :meth:`Program.reset` always do — a
retracted fact may underpin arbitrarily many derived facts).  Delta sets
above :data:`DELTA_INDEX_THRESHOLD` are themselves indexed during a
semi-naive round instead of being scanned per probe.  The
:attr:`Program.counters` dict exposes the lifecycle instrumentation
(full vs incremental evaluations, index builds) that the regression
tests assert on.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .ast import Atom, Const, Literal, Rule, Substitution, Var
from .builtins import BUILTINS, Builtin

__all__ = ["Program", "DatalogError", "DELTA_INDEX_THRESHOLD"]

Fact = Tuple[Any, ...]

#: Delta sets at or below this size are scanned per probe during a
#: semi-naive round; larger ones get a per-round hash index over the
#: probe's bound positions (building it is one pass, and a round probes
#: each delta literal once per partial substitution).
DELTA_INDEX_THRESHOLD = 32


class DatalogError(Exception):
    """Unstratifiable program, unsafe rule, or unbound builtin/negation."""


class Program:
    """A set of rules plus extensional facts, evaluated on demand.

    >>> program = Program()
    >>> program.add_fact("edge", (1, 2))
    >>> program.add_fact("edge", (2, 3))
    >>> x, y, z = Var("X"), Var("Y"), Var("Z")
    >>> program.add_rule(Rule(Atom("path", (x, y)), (Literal(Atom("edge", (x, y))),)))
    >>> program.add_rule(Rule(Atom("path", (x, z)),
    ...     (Literal(Atom("path", (x, y))), Literal(Atom("edge", (y, z))))))
    >>> sorted(program.query("path"))
    [(1, 2), (1, 3), (2, 3)]
    """

    def __init__(
        self,
        builtins: Optional[Dict[str, Builtin]] = None,
        use_fact_indexes: bool = True,
    ) -> None:
        self.rules: List[Rule] = []
        self.facts: Dict[str, Set[Fact]] = {}
        self.builtins = dict(BUILTINS if builtins is None else builtins)
        self.use_fact_indexes = use_fact_indexes
        #: Lifecycle instrumentation: ``full_evals`` / ``incremental_evals``
        #: count evaluate() fixpoints by kind, ``index_builds`` counts
        #: fact-index constructions from scratch (a persistent index that
        #: is merely extended does not bump it), ``delta_index_builds``
        #: counts per-round delta-set indexes.
        self.counters: Dict[str, int] = {
            "full_evals": 0,
            "incremental_evals": 0,
            "index_builds": 0,
            "delta_index_builds": 0,
        }
        # the model of the last completed fixpoint; fresh means it
        # reflects the current facts/rules
        self._model: Optional[Dict[str, Set[Fact]]] = None
        self._fresh = False
        # EDB facts added since the last fixpoint (the incremental delta)
        self._pending: List[Tuple[str, Fact]] = []
        # rules changed / facts retracted: the previous model is unusable
        self._needs_full = True
        self._has_negation = False
        # (pred, bound positions) -> bound values -> candidate facts;
        # persistent: kept consistent with the last computed model and
        # extended across incremental evaluations
        self._fact_indexes: Dict[
            Tuple[str, Tuple[int, ...]], Dict[Tuple[Any, ...], List[Fact]]
        ] = {}
        # per-round indexes over large delta sets, keyed by the delta
        # set's identity; cleared after every semi-naive round
        self._delta_indexes: Dict[
            Tuple[int, str, Tuple[int, ...]], Dict[Tuple[Any, ...], List[Fact]]
        ] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_fact(self, pred: str, fact: Sequence[Any]) -> None:
        """Add an extensional fact.

        Known facts are ignored; new ones join the pending delta, so the
        next :meth:`evaluate` can extend the previous model
        incrementally instead of recomputing it (negation-free programs
        only — negation is non-monotone).
        """
        if pred in self.builtins:
            raise DatalogError(f"{pred!r} is a builtin; cannot add facts")
        ground = tuple(fact)
        bucket = self.facts.setdefault(pred, set())
        if ground in bucket:
            return
        bucket.add(ground)
        self._pending.append((pred, ground))
        self._fresh = False

    def add_facts(self, pred: str, facts: Iterable[Sequence[Any]]) -> None:
        for fact in facts:
            self.add_fact(pred, fact)

    def retract_fact(self, pred: str, fact: Sequence[Any]) -> bool:
        """Remove an extensional fact; returns whether it was present.

        Retraction is non-monotone even without negation (derived facts
        may lose their last derivation), so the previous model, the
        pending delta, and every persistent fact index are invalidated
        together — the next :meth:`evaluate` recomputes from scratch.
        """
        ground = tuple(fact)
        bucket = self.facts.get(pred)
        if bucket is None or ground not in bucket:
            return False
        bucket.remove(ground)
        if not bucket:
            del self.facts[pred]
        self._invalidate()
        return True

    def reset(self) -> None:
        """Drop every extensional fact (rules survive), invalidating the
        model and all persistent indexes coherently."""
        self.facts.clear()
        self._invalidate()

    def _invalidate(self) -> None:
        self._model = None
        self._fresh = False
        self._needs_full = True
        self._pending.clear()
        self._fact_indexes.clear()
        self._delta_indexes.clear()

    def add_rule(self, rule: Rule) -> None:
        if rule.head.pred in self.builtins:
            raise DatalogError(f"cannot define builtin {rule.head.pred!r}")
        self._check_safety(rule)
        self.rules.append(rule)
        # a new rule can derive from any existing fact: full recompute,
        # and the persistent indexes (which mirror the old model) go too
        self._invalidate()
        # negated *predicates* are non-monotone in the fact database and
        # bar incremental evaluation; negated builtins are per-binding
        # filters independent of the facts, so they don't
        if any(
            literal.negated and literal.atom.pred not in self.builtins
            for literal in rule.body
        ):
            self._has_negation = True

    def _check_safety(self, rule: Rule) -> None:
        positive: Set[Var] = set()
        for literal in rule.body:
            # positive predicates bind their variables; positive builtins
            # may bind outputs; negation (of either kind) binds nothing
            if not literal.negated:
                positive |= literal.atom.vars()
        unsafe = rule.head.vars() - positive
        if unsafe:
            raise DatalogError(
                f"unsafe rule (head vars {sorted(v.name for v in unsafe)} "
                f"not bound in body): {rule!r}"
            )

    # ------------------------------------------------------------------
    # Stratification
    # ------------------------------------------------------------------
    def _stratify(self) -> List[List[str]]:
        preds: Set[str] = set(self.facts)
        for rule in self.rules:
            preds.add(rule.head.pred)
            for literal in rule.body:
                if literal.atom.pred not in self.builtins:
                    preds.add(literal.atom.pred)
        stratum: Dict[str, int] = {pred: 0 for pred in preds}
        # Bellman-Ford style relaxation; > |preds| rounds means a negative
        # cycle, i.e. an unstratifiable program.
        for _round in range(len(preds) + 1):
            changed = False
            for rule in self.rules:
                head = rule.head.pred
                for literal in rule.body:
                    pred = literal.atom.pred
                    if pred in self.builtins:
                        continue
                    needed = stratum[pred] + (1 if literal.negated else 0)
                    if stratum[head] < needed:
                        stratum[head] = needed
                        changed = True
            if not changed:
                break
        else:
            raise DatalogError("program is not stratifiable (negation in a cycle)")
        by_level: Dict[int, List[str]] = {}
        for pred, level in stratum.items():
            by_level.setdefault(level, []).append(pred)
        return [sorted(by_level[level]) for level in sorted(by_level)]

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def _solve_literal(
        self,
        literal: Literal,
        subst: Substitution,
        database: Dict[str, Set[Fact]],
        restrict: Optional[Set[Fact]] = None,
    ) -> Iterator[Substitution]:
        atom = literal.atom
        if atom.pred in self.builtins:
            solutions = self._solve_builtin(atom, subst)
            if literal.negated:
                # negation as failure over a builtin: succeed iff no
                # builtin solution unifies with the current bindings
                # (builtins are pure functions of their arguments, so
                # this stays monotone in the fact database)
                if next(solutions, None) is None:
                    yield subst
                return
            yield from solutions
            return
        if literal.negated:
            bound = self._require_ground(atom, subst, "negated literal")
            if bound not in database.get(atom.pred, set()):
                yield subst
            return
        if restrict is not None:
            facts: Iterable[Fact] = restrict
            if self.use_fact_indexes and len(restrict) > DELTA_INDEX_THRESHOLD:
                facts = self._delta_candidates(atom, subst, restrict)
        elif self.use_fact_indexes:
            facts = self._candidate_facts(atom, subst, database)
        else:
            facts = database.get(atom.pred, set())
        for fact in facts:
            extended = self._unify(atom, fact, subst)
            if extended is not None:
                yield extended

    # ------------------------------------------------------------------
    # Fact indexes
    # ------------------------------------------------------------------
    def _bound_probe(
        self, atom: Atom, subst: Substitution
    ) -> Optional[Tuple[Tuple[int, ...], Tuple[Any, ...]]]:
        """The (bound positions, bound values) of ``atom`` under
        ``subst``, or ``None`` when nothing is bound / a bound value is
        unhashable (builtin output) and only a scan can serve."""
        positions: List[int] = []
        values: List[Any] = []
        for i, term in enumerate(atom.terms):
            if isinstance(term, Const):
                positions.append(i)
                values.append(term.value)
            else:
                value = subst.get(term, _MISSING)
                if value is not _MISSING:
                    positions.append(i)
                    values.append(value)
        if not positions:
            return None
        probe = tuple(values)
        try:
            hash(probe)
        except TypeError:
            return None
        return tuple(positions), probe

    def _candidate_facts(
        self, atom: Atom, subst: Substitution, database: Dict[str, Set[Fact]]
    ) -> Iterable[Fact]:
        """Facts of ``atom.pred`` that can possibly match under ``subst``:
        probes the (pred, bound positions) index when any argument is
        bound, falling back to the full fact set otherwise.  ``_unify``
        still validates every candidate, so this is purely a filter."""
        all_facts = database.get(atom.pred, ())
        if not all_facts:
            return all_facts
        bound = self._bound_probe(atom, subst)
        if bound is None:
            return all_facts
        positions, probe = bound
        signature = (atom.pred, positions)
        index = self._fact_indexes.get(signature)
        if index is None:
            self.counters["index_builds"] += 1
            index = self._build_fact_index(all_facts, positions)
            self._fact_indexes[signature] = index
        return index.get(probe, ())

    def _delta_candidates(
        self, atom: Atom, subst: Substitution, restrict: Set[Fact]
    ) -> Iterable[Fact]:
        """Like :meth:`_candidate_facts` but over one semi-naive delta
        set: large deltas are indexed once per round (keyed by the set's
        identity; the round's driver clears the cache) so each probe is
        a dict hit instead of a scan of the whole delta."""
        bound = self._bound_probe(atom, subst)
        if bound is None:
            return restrict
        positions, probe = bound
        signature = (id(restrict), atom.pred, positions)
        index = self._delta_indexes.get(signature)
        if index is None:
            self.counters["delta_index_builds"] += 1
            index = self._build_fact_index(restrict, positions)
            self._delta_indexes[signature] = index
        return index.get(probe, ())

    @classmethod
    def _build_fact_index(
        cls, facts: Iterable[Fact], positions: Tuple[int, ...]
    ) -> Dict[Tuple[Any, ...], List[Fact]]:
        """One pass over ``facts``: projection onto ``positions`` →
        matching facts (facts too short to project are unindexable and
        can never match an atom with those positions bound)."""
        index: Dict[Tuple[Any, ...], List[Fact]] = {}
        key_of = cls._fact_key(positions)
        for fact in facts:
            key = key_of(fact)
            if key is not None:
                index.setdefault(key, []).append(fact)
        return index

    @staticmethod
    def _fact_key(positions: Tuple[int, ...]):
        """Projection of a fact onto ``positions`` (``None`` when the fact
        is too short to have them — it can never match such an atom)."""
        def key_of(fact: Fact) -> Optional[Tuple[Any, ...]]:
            try:
                return tuple(fact[i] for i in positions)
            except IndexError:
                return None
        return key_of

    def _index_new_facts(self, pred: str, fresh: Iterable[Fact]) -> None:
        """Keep every live index for ``pred`` consistent with facts the
        fixpoint just added to the database."""
        for (indexed_pred, positions), index in self._fact_indexes.items():
            if indexed_pred != pred:
                continue
            key_of = self._fact_key(positions)
            for fact in fresh:
                key = key_of(fact)
                if key is not None:
                    index.setdefault(key, []).append(fact)

    def _solve_builtin(self, atom: Atom, subst: Substitution) -> Iterator[Substitution]:
        builtin = self.builtins[atom.pred]
        if atom.arity != builtin.arity:
            raise DatalogError(f"{atom.pred}/{atom.arity}: expected arity {builtin.arity}")
        args: List[Optional[Any]] = []
        for term in atom.terms:
            if isinstance(term, Const):
                args.append(term.value)
            else:
                args.append(subst.get(term))
        try:
            # builtins are generators: force them so binding-mode errors
            # surface as DatalogError here rather than mid-iteration
            solutions = list(builtin.solve(args))
        except ValueError as exc:
            raise DatalogError(f"builtin {atom.pred!r}: {exc}") from exc
        for solution in solutions:
            extended = self._unify(atom, solution, subst)
            if extended is not None:
                yield extended

    @staticmethod
    def _unify(atom: Atom, fact: Fact, subst: Substitution) -> Optional[Substitution]:
        if len(fact) != len(atom.terms):
            return None
        out = subst
        copied = False
        for term, value in zip(atom.terms, fact):
            if isinstance(term, Const):
                if term.value != value:
                    return None
            else:
                bound = out.get(term, _MISSING)
                if bound is _MISSING:
                    if not copied:
                        out = dict(out)
                        copied = True
                    out[term] = value
                elif bound != value:
                    return None
        return out

    @staticmethod
    def _require_ground(atom: Atom, subst: Substitution, what: str) -> Fact:
        values = []
        for term in atom.terms:
            if isinstance(term, Const):
                values.append(term.value)
            elif term in subst:
                values.append(subst[term])
            else:
                raise DatalogError(
                    f"{what} {atom!r} has unbound variable {term.name!r}; "
                    "reorder the rule body"
                )
        return tuple(values)

    def _eval_rule(
        self,
        rule: Rule,
        database: Dict[str, Set[Fact]],
        delta: Optional[Dict[str, Set[Fact]]],
    ) -> Set[Fact]:
        """All head facts derivable from ``database``; with ``delta`` set,
        only derivations using at least one delta literal (semi-naive)."""
        derived: Set[Fact] = set()
        positions = range(len(rule.body))
        if delta is None:
            plans: List[Optional[int]] = [None]
        else:
            plans = [
                i
                for i in positions
                if not rule.body[i].negated
                and rule.body[i].atom.pred in delta
                and delta[rule.body[i].atom.pred]
            ]
        for delta_position in plans:
            stack: List[Tuple[int, Substitution]] = [(0, {})]
            while stack:
                index, subst = stack.pop()
                if index == len(rule.body):
                    derived.add(rule.head.ground(subst))
                    continue
                literal = rule.body[index]
                restrict = None
                if delta_position is not None and index == delta_position:
                    restrict = delta[literal.atom.pred]
                for extended in self._solve_literal(literal, subst, database, restrict):
                    stack.append((index + 1, extended))
        return derived

    @staticmethod
    def _owned_set(
        database: Dict[str, Set[Fact]], owned: Optional[Set[str]], pred: str
    ) -> Set[Fact]:
        """The mutable fact set for ``pred`` in ``database``.

        With ``owned`` tracking (incremental evaluation), per-pred sets
        start out shared with the previous model and are copied on first
        write — untouched predicates never pay a copy, and references
        handed out by earlier ``evaluate()`` calls stay frozen."""
        existing = database.get(pred)
        if existing is None:
            existing = database[pred] = set()
            if owned is not None:
                owned.add(pred)
        elif owned is not None and pred not in owned:
            existing = database[pred] = set(existing)
            owned.add(pred)
        return existing

    def _semi_naive(
        self,
        rules: List[Rule],
        database: Dict[str, Set[Fact]],
        delta: Dict[str, Set[Fact]],
        owned: Optional[Set[str]] = None,
    ) -> None:
        """Iterate ``rules`` to fixpoint, starting from ``delta``;
        ``database`` is updated in place (copy-on-write per pred when
        ``owned`` is given) and the persistent fact indexes are extended
        with every fresh fact."""
        while delta:
            next_delta: Dict[str, Set[Fact]] = {}
            for rule in rules:
                new = self._eval_rule(rule, database, delta)
                fresh = new - database.get(rule.head.pred, set())
                if fresh:
                    existing = self._owned_set(database, owned, rule.head.pred)
                    existing |= fresh
                    self._index_new_facts(rule.head.pred, fresh)
                    next_delta.setdefault(rule.head.pred, set()).update(fresh)
            self._delta_indexes.clear()  # round over: delta sets retire
            delta = next_delta

    def _evaluate_full(self) -> Dict[str, Set[Fact]]:
        """Stratified fixpoint from the raw extensional facts."""
        self.counters["full_evals"] += 1
        self._fact_indexes.clear()
        database: Dict[str, Set[Fact]] = {
            pred: set(facts) for pred, facts in self.facts.items()
        }
        for stratum in self._stratify():
            stratum_preds = set(stratum)
            rules = [rule for rule in self.rules if rule.head.pred in stratum_preds]
            # naive first round
            delta: Dict[str, Set[Fact]] = {}
            for rule in rules:
                new = self._eval_rule(rule, database, None)
                existing = database.setdefault(rule.head.pred, set())
                fresh = new - existing
                existing |= fresh
                if fresh:
                    self._index_new_facts(rule.head.pred, fresh)
                    delta.setdefault(rule.head.pred, set()).update(fresh)
            self._delta_indexes.clear()
            self._semi_naive(rules, database, delta)
        return database

    def _evaluate_incremental(self) -> Dict[str, Set[Fact]]:
        """Extend the previous model with the pending extensional delta.

        Sound only for negation-free programs (monotonicity): the old
        model is a fixpoint, so semi-naive iteration seeded with the new
        facts derives exactly the consequences they enable.  The
        persistent fact indexes are extended with the same fresh sets —
        never rebuilt.
        """
        self.counters["incremental_evals"] += 1
        assert self._model is not None
        # shallow copy: per-pred sets stay shared with the previous model
        # until first written (copy-on-write via _owned_set), so work —
        # including copying — is proportional to the predicates the delta
        # touches, and references handed out earlier stay frozen
        database = dict(self._model)
        owned: Set[str] = set()
        delta: Dict[str, Set[Fact]] = {}
        for pred, fact in self._pending:
            if fact not in database.get(pred, ()):
                self._owned_set(database, owned, pred).add(fact)
                self._index_new_facts(pred, (fact,))
                delta.setdefault(pred, set()).add(fact)
        self._semi_naive(list(self.rules), database, delta, owned)
        return database

    def evaluate(self) -> Dict[str, Set[Fact]]:
        """Compute the full model (memoized until facts/rules change).

        After the first fixpoint, a negation-free program re-evaluates
        incrementally from the pending ``add_fact`` delta; programs with
        negation, and any program after ``retract_fact``/``reset``/
        ``add_rule``, recompute from scratch.
        """
        if self._fresh and self._model is not None:
            return self._model
        if (
            self._model is not None
            and not self._needs_full
            and not self._has_negation
        ):
            database = self._evaluate_incremental()
        else:
            database = self._evaluate_full()
        self._model = database
        self._fresh = True
        self._needs_full = False
        self._pending.clear()
        return database

    def query(self, pred: str) -> Set[Fact]:
        """All facts of ``pred`` in the computed model."""
        return set(self.evaluate().get(pred, set()))


_MISSING = object()
