"""Text syntax for Datalog rules.

Grammar (one rule per ``.``-terminated statement)::

    rule    := atom [ ":-" literal ("," literal)* ] "."
    literal := ["not" | "¬"] atom
    atom    := pred "(" term ("," term)* ")"
    term    := Variable        (capitalized identifier)
             | 'string' | "string" | integer | identifier (lowercase const)

Comments run from ``%`` to end of line.  Example (the hierarchical
inference rule, Section 2.1.3)::

    prov(T, Op, P, Q) :- hprov(T, Op, P, Q).
    prov(T, "C", PA, QA) :- node(T, PA), path_join(P, A, PA),
        prov(T, "C", P, Q), not hprov_at(T, PA), path_join(Q, A, QA).
"""

from __future__ import annotations

import re
from typing import List, Tuple

from .ast import Atom, Const, Literal, Rule, Term, Var
from .engine import DatalogError

__all__ = ["parse_rule", "parse_program"]

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<comment>%[^\n]*)
      | (?P<string>'[^']*'|"[^"]*")
      | (?P<number>-?\d+)
      | (?P<punct>:-|\(|\)|,|\.|¬)
      | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    )
    """,
    re.VERBOSE,
)


def _tokenize(text: str) -> List[Tuple[str, str]]:
    tokens: List[Tuple[str, str]] = []
    position = 0
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None or match.end() == position:
            remainder = text[position:].strip()
            if not remainder:
                break
            raise DatalogError(f"cannot tokenize near {remainder[:20]!r}")
        position = match.end()
        for kind in ("comment", "string", "number", "punct", "word"):
            value = match.group(kind)
            if value is not None:
                if kind != "comment":
                    tokens.append((kind, value))
                break
    return tokens


class _Cursor:
    def __init__(self, tokens: List[Tuple[str, str]]) -> None:
        self.tokens = tokens
        self.index = 0

    def peek(self):
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def next(self):
        token = self.peek()
        if token is None:
            raise DatalogError("unexpected end of input")
        self.index += 1
        return token

    def expect(self, text: str) -> None:
        kind, value = self.next()
        if value != text:
            raise DatalogError(f"expected {text!r}, got {value!r}")

    def at_end(self) -> bool:
        return self.index >= len(self.tokens)


def _parse_term(cursor: _Cursor) -> Term:
    kind, value = cursor.next()
    if kind == "string":
        return Const(value[1:-1])
    if kind == "number":
        return Const(int(value))
    if kind == "word":
        if value[0].isupper():
            return Var(value)
        if value == "null":
            return Const(None)
        return Const(value)
    raise DatalogError(f"expected a term, got {value!r}")


def _parse_atom(cursor: _Cursor) -> Atom:
    kind, pred = cursor.next()
    if kind != "word" or pred[0].isupper():
        raise DatalogError(f"expected a predicate name, got {pred!r}")
    cursor.expect("(")
    terms = [_parse_term(cursor)]
    while True:
        kind, value = cursor.next()
        if value == ")":
            break
        if value != ",":
            raise DatalogError(f"expected ',' or ')', got {value!r}")
        terms.append(_parse_term(cursor))
    return Atom(pred, tuple(terms))


def _parse_literal(cursor: _Cursor) -> Literal:
    token = cursor.peek()
    negated = False
    if token is not None and token[1] in ("not", "¬"):
        cursor.next()
        negated = True
    return Literal(_parse_atom(cursor), negated=negated)


def parse_rule(text: str) -> Rule:
    """Parse a single rule (must include the trailing period or not —
    both accepted)."""
    cursor = _Cursor(_tokenize(text))
    rule = _parse_one(cursor)
    if not cursor.at_end():
        raise DatalogError(f"trailing tokens after rule: {text!r}")
    return rule


def _parse_one(cursor: _Cursor) -> Rule:
    head = _parse_atom(cursor)
    token = cursor.peek()
    if token is None or token[1] == ".":
        if token is not None:
            cursor.next()
        return Rule(head, ())
    cursor.expect(":-")
    body = [_parse_literal(cursor)]
    while True:
        token = cursor.peek()
        if token is None:
            break
        if token[1] == ",":
            cursor.next()
            body.append(_parse_literal(cursor))
            continue
        if token[1] == ".":
            cursor.next()
            break
        raise DatalogError(f"expected ',' or '.', got {token[1]!r}")
    return Rule(head, tuple(body))


def parse_program(text: str) -> List[Rule]:
    """Parse a sequence of rules."""
    cursor = _Cursor(_tokenize(text))
    rules: List[Rule] = []
    while not cursor.at_end():
        rules.append(_parse_one(cursor))
    return rules
