"""The paper's provenance Datalog, transcribed for the engine.

Two programs are provided:

* :func:`inference_program` — the recursive HProv → Prov view of
  Section 2.1.3 (with the guard on the *child* path; see
  :mod:`repro.core.inference` for the note on the paper's typo);
* :func:`query_program` — Trace/Src/Hist/Mod of Section 2.2, seeded at a
  query location the way CPDB's stored procedures were.

Both take plain :class:`~repro.core.provenance.ProvRecord` lists, so they
run against any store's contents; the test suite uses them to check that
the procedural implementations in :mod:`repro.core.queries` and
:mod:`repro.core.inference` compute the declarative semantics.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from ..core.paths import Path
from ..core.provenance import ProvRecord
from ..core.updates import Workspace
from .engine import Program
from .parser import parse_program

__all__ = ["inference_program", "query_program", "load_prov_facts"]

_INFERENCE_RULES = """
hprov_at(T, P) :- hprov(T, Op, P, Q).
prov(T, Op, P, Q) :- hprov(T, Op, P, Q).
prov(T, "C", PA, QA) :- node(T, PA), path_join(P, A, PA),
    prov(T, "C", P, Q), not hprov_at(T, PA), path_join(Q, A, QA).
prov(T, "I", PA, null) :- node(T, PA), path_join(P, A, PA),
    prov(T, "I", P, null), not hprov_at(T, PA).
prov(T, "D", PA, null) :- dnode(T, PA), path_join(P, A, PA),
    prov(T, "D", P, null), not hprov_at(T, PA).
"""

_QUERY_RULES = """
changed(T, P) :- prov(T, Op, P, Q).

% at(Q, U): the data now at the query location sat at Q at the end of U.
at(Q, U) :- at(P, T), prov(T, "C", P, Q), head_label(Q, Target),
    target(Target), sub1(T, U), leq(0, U).
at(P, U) :- at(P, T), not changed(T, P), sub1(T, U), leq(1, U).

src_result(U) :- at(Q, U), prov(U, "I", Q, null).
hist_result(U) :- at(Q, U), prov(U, "C", Q, S).

% reach(R, B): data under subtree R at epochs <= B contributed to the
% subtree now under the query location.
mod_result(U) :- reach(R, B), prov(U, Op, Q, S), prefix(R, Q), leq(U, B).
reach(S2, B2) :- reach(R, B), prov(U, "C", Q, S2), prefix(R, Q),
    leq(U, B), head_label(S2, Target), target(Target), sub1(U, B2).
"""


def load_prov_facts(program: Program, records: Iterable[ProvRecord], pred: str) -> None:
    """Load provenance records as ``pred(tid, op, loc, src)`` facts
    (``src`` is ``None`` for inserts and deletes)."""
    for record in records:
        program.add_fact(
            pred,
            (
                record.tid,
                record.op,
                str(record.loc),
                str(record.src) if record.src is not None else None,
            ),
        )


def inference_program(
    hprov: Iterable[ProvRecord],
    states: Dict[int, Workspace],
) -> Program:
    """The HProv → Prov view, with path domains drawn from the workspace
    states: ``node(t, p)`` enumerates post-state paths of transaction
    ``t`` (for C/I inference) and ``dnode(t, p)`` pre-state paths (for D
    inference).  ``states[t]`` is the state at the end of ``t``."""
    program = Program()
    records = list(hprov)
    load_prov_facts(program, records, "hprov")
    tids = sorted({record.tid for record in records})
    for tid in tids:
        post = states[tid]
        pre = states[tid - 1]
        for name, tree in post.roots.items():
            for sub, _node in tree.nodes():
                path = Path([name]).join(sub)
                program.add_fact("node", (tid, str(path)))
        for name, tree in pre.roots.items():
            for sub, _node in tree.nodes():
                path = Path([name]).join(sub)
                program.add_fact("dnode", (tid, str(path)))
    for rule in parse_program(_INFERENCE_RULES):
        program.add_rule(rule)
    return program


def query_program(
    prov: Iterable[ProvRecord],
    loc: "Path | str",
    tnow: int,
    target_name: str = "T",
) -> Program:
    """Src/Hist/Mod for the data at ``loc`` as of transaction ``tnow``.

    ``prov`` must be a *full* provenance table (for hierarchical stores,
    expand first with :func:`repro.core.inference.expand_all` or run the
    inference program)."""
    program = Program()
    load_prov_facts(program, prov, "prov")
    program.add_fact("target", (target_name,))
    program.add_fact("at", (str(Path.of(loc)), tnow))
    program.add_fact("reach", (str(Path.of(loc)), tnow))
    for rule in parse_program(_QUERY_RULES):
        program.add_rule(rule)
    return program


def run_queries(
    prov: Iterable[ProvRecord],
    loc: "Path | str",
    tnow: int,
    target_name: str = "T",
) -> Dict[str, Set[int]]:
    """Convenience: evaluate the query program and project the results."""
    program = query_program(prov, loc, tnow, target_name)
    return {
        "src": {fact[0] for fact in program.query("src_result")},
        "hist": {fact[0] for fact in program.query("hist_result")},
        "mod": {fact[0] for fact in program.query("mod_result")},
    }
