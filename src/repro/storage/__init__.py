"""An embedded relational engine: the reproduction's MySQL substitute.

Public surface:

* :class:`Database` — catalog, transactions, WAL durability;
* :class:`TableSchema` / :class:`Column` / :class:`IndexSpec` — DDL objects;
* :func:`execute_sql` — the SQL subset;
* :class:`Query` and the expression AST — programmatic queries;
* :class:`StoreClient` — round-trip-accounted connection used by the
  provenance stores and the benchmark harness.
"""

from .client import StoreClient
from .db import Database
from .errors import (
    AmbiguousColumnError,
    ConstraintError,
    DuplicateKeyError,
    SchemaError,
    SQLError,
    StorageError,
    TransactionError,
    UnknownColumnError,
    UnknownTableError,
    WALError,
)
from .expr import (
    And,
    Cmp,
    Col,
    Concat,
    Const,
    InList,
    IsNull,
    Not,
    Or,
    PrefixMatch,
)
from .query import JoinSpec, Query, TableRef
from .schema import Column, IndexSpec, TableSchema
from .sql import execute_sql
from .table import Table
from .types import ColumnType

__all__ = [
    "Database",
    "StoreClient",
    "Table",
    "TableSchema",
    "Column",
    "IndexSpec",
    "ColumnType",
    "Query",
    "TableRef",
    "JoinSpec",
    "execute_sql",
    "And",
    "Cmp",
    "Col",
    "Concat",
    "Const",
    "InList",
    "IsNull",
    "Not",
    "Or",
    "PrefixMatch",
    "StorageError",
    "AmbiguousColumnError",
    "SchemaError",
    "ConstraintError",
    "DuplicateKeyError",
    "UnknownTableError",
    "UnknownColumnError",
    "TransactionError",
    "SQLError",
    "WALError",
]
