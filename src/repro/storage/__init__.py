"""An embedded relational engine: the reproduction's MySQL substitute.

Public surface:

* :class:`Database` — catalog, transactions, WAL durability;
* :class:`TableSchema` / :class:`Column` / :class:`IndexSpec` — DDL objects;
* :func:`execute_sql` — the SQL subset;
* :class:`Query` and the expression AST — programmatic queries;
* :class:`StoreClient` — round-trip-accounted connection used by the
  provenance stores and the benchmark harness, with a retrying
  transport (:class:`Transport` / :class:`FlakyTransport` /
  :class:`RetryPolicy`);
* durability: ``save_snapshot`` / ``load_snapshot`` / ``checkpoint``
  (in :mod:`repro.storage.snapshot`), :class:`RecoveryReport`, and the
  typed corruption errors :class:`WALCorruptionError` /
  :class:`TransientNetworkError`;
* concurrency: :class:`MVCCManager` / :class:`MVCCTransaction` —
  snapshot-isolation MVCC with first-committer-wins conflicts
  (:class:`WriteConflictError`) — and the asyncio front-end
  :class:`DatabaseServer` / :class:`ThreadedServer` with its batched
  clients :class:`ServerClient` / :class:`AsyncServerClient`.
"""

from .client import FlakyTransport, RetryPolicy, StoreClient, Transport
from .db import Database
from .errors import (
    AmbiguousColumnError,
    ConstraintError,
    DuplicateKeyError,
    SchemaError,
    SQLError,
    StorageError,
    TransactionError,
    TransientNetworkError,
    UnknownColumnError,
    UnknownTableError,
    WALCorruptionError,
    WALError,
    WriteConflictError,
)
from .expr import (
    And,
    Cmp,
    Col,
    Concat,
    Const,
    InList,
    IsNull,
    Not,
    Or,
    PrefixMatch,
)
from .mvcc import MVCCManager, MVCCTransaction
from .query import JoinSpec, Query, TableRef
from .server import (
    AsyncServerClient,
    DatabaseServer,
    ServerClient,
    ThreadedServer,
)
from .schema import Column, IndexSpec, TableSchema
from .sql import PreparedStatement, execute_sql
from .table import Table
from .types import ColumnType
from .wal import RecoveryReport

__all__ = [
    "Database",
    "StoreClient",
    "Transport",
    "FlakyTransport",
    "RetryPolicy",
    "RecoveryReport",
    "Table",
    "TableSchema",
    "Column",
    "IndexSpec",
    "ColumnType",
    "Query",
    "TableRef",
    "JoinSpec",
    "execute_sql",
    "PreparedStatement",
    "And",
    "Cmp",
    "Col",
    "Concat",
    "Const",
    "InList",
    "IsNull",
    "Not",
    "Or",
    "PrefixMatch",
    "StorageError",
    "AmbiguousColumnError",
    "SchemaError",
    "ConstraintError",
    "DuplicateKeyError",
    "UnknownTableError",
    "UnknownColumnError",
    "TransactionError",
    "WriteConflictError",
    "SQLError",
    "WALError",
    "WALCorruptionError",
    "TransientNetworkError",
    "MVCCManager",
    "MVCCTransaction",
    "DatabaseServer",
    "ThreadedServer",
    "ServerClient",
    "AsyncServerClient",
]
