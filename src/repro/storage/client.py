"""A client connection that models client/server round trips.

CPDB talked to MySQL over JDBC/TCP and to Timber over SOAP; the dominant
per-operation cost in the paper's Figures 9, 10, and 12 is the *number of
round trips*, which is why transactional provenance (which batches its
writes at commit) is nearly free per operation.  :class:`StoreClient`
wraps the embedded :class:`~repro.storage.db.Database` and charges one
round trip (plus a per-row marshalling cost) on a shared virtual clock
for every call — batched calls cost one round trip total, exactly the
saving the paper observed.

Real JDBC/SOAP round trips also *fail*: requests and responses get lost,
and the paper's per-operation economics silently assume they don't.  The
client therefore models the failure side too:

* a :class:`Transport` seam carries every operation; the injectable
  :class:`FlakyTransport` drops scheduled calls, distinguishing a lost
  *request* (the server never executed it) from a lost *response* (the
  server executed it but the client cannot know);
* a :class:`RetryPolicy` retries lost round trips with exponential
  backoff plus deterministic jitter — all waiting is charged to the
  shared virtual clock (``<category>.backoff``), never slept;
* every mutating operation carries an *idempotency key*; the server
  caches the result under the key, so a retry after a lost response
  returns the cached result instead of double-applying the write —
  exactly-once semantics on top of an at-least-once transport;
* failed round trips cost
  :meth:`~repro.common.clock.CostModel.failed_round_trip_cost` (a full
  timeout on top of the wasted round trip) under
  ``<category>.<op>.failed``, and the ``retries`` /
  ``failed_round_trips`` counters sit next to ``round_trips`` so
  experiments can report failure amplification directly.

The wrapper also counts round trips per category so experiments can
report them independently of the cost model.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence

from ..common.clock import CostModel, VirtualClock
from .db import Database
from .errors import TransientNetworkError
from .expr import Expr
from .query import Query
from .sql import execute_sql

__all__ = ["StoreClient", "Transport", "FlakyTransport", "RetryPolicy"]


class Transport:
    """The wire between client and server.  The default one is perfect:
    it just executes the operation.  Subclasses inject imperfection."""

    def call(self, op: str, execute: Callable[[], Any]) -> Any:
        return execute()


class FlakyTransport(Transport):
    """A transport that loses scheduled round trips.

    ``failures`` maps a 1-based call number to the phase that fails:
    ``"request"`` raises *before* executing (the server never saw it),
    ``"response"`` executes and then raises (the server applied it, the
    client cannot know).  Each scheduled failure fires once; unscheduled
    calls pass through.  ``calls`` counts every attempt, so tests can
    assert how many round trips an operation really took.
    """

    def __init__(self, failures: Optional[Dict[int, str]] = None) -> None:
        self.failures = dict(failures or {})
        for call, phase in self.failures.items():
            if phase not in ("request", "response"):
                raise ValueError(f"unknown failure phase {phase!r} for call {call}")
        self.calls = 0

    def call(self, op: str, execute: Callable[[], Any]) -> Any:
        self.calls += 1
        phase = self.failures.pop(self.calls, None)
        if phase == "request":
            raise TransientNetworkError(
                f"request lost on call {self.calls} ({op})", phase="request"
            )
        result = execute()
        if phase == "response":
            raise TransientNetworkError(
                f"response lost on call {self.calls} ({op})", phase="response"
            )
        return result


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter, on virtual time.

    Attempt ``n`` (1-based) that fails waits
    ``backoff_base_ms * backoff_multiplier**(n-1)`` plus up to
    ``jitter_ms`` of deterministic jitter before attempt ``n+1``; after
    ``max_attempts`` failures the ``TransientNetworkError`` propagates.
    """

    max_attempts: int = 4
    backoff_base_ms: float = 10.0
    backoff_multiplier: float = 2.0
    jitter_ms: float = 5.0

    def backoff_ms(self, attempt: int, rng: random.Random) -> float:
        base = self.backoff_base_ms * self.backoff_multiplier ** (attempt - 1)
        jitter = rng.random() * self.jitter_ms if self.jitter_ms else 0.0
        return base + jitter


class StoreClient:
    """Round-trip-accounted access to a :class:`Database`.

    ``category`` tags every charge so the harness can attribute time to
    e.g. ``prov`` (provenance store) vs ``source`` (source database).
    ``transport`` and ``retry_policy`` select the failure model; the
    defaults (perfect transport, 4 attempts) charge exactly what the
    pre-retry client did when nothing fails.  ``retry_seed`` makes the
    backoff jitter reproducible.
    """

    def __init__(
        self,
        db: Database,
        clock: Optional[VirtualClock] = None,
        cost_model: Optional[CostModel] = None,
        category: str = "store",
        *,
        transport: Optional[Transport] = None,
        retry_policy: Optional[RetryPolicy] = None,
        retry_seed: int = 0,
    ) -> None:
        self.db = db
        self.clock = clock if clock is not None else VirtualClock()
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.category = category
        self.transport = transport if transport is not None else Transport()
        self.retry_policy = retry_policy if retry_policy is not None else RetryPolicy()
        self.round_trips = 0
        self.retries = 0
        self.failed_round_trips = 0
        self._rng = random.Random(retry_seed)
        #: the server's idempotency table: key -> applied result.  Lives
        #: with the client object here because the embedded Database *is*
        #: the server; the lookup happens inside the transport call,
        #: i.e. server-side of the (simulated) wire.
        self._applied: Dict[str, Any] = {}
        self._op_seq = 0

    # ------------------------------------------------------------------
    def _charge(self, operation: str, rows: int) -> None:
        """Charge one *successful* round trip to the virtual clock."""
        self.clock.charge(
            f"{self.category}.{operation}", self.cost_model.round_trip_cost(rows)
        )

    def _next_key(self, op: str) -> str:
        self._op_seq += 1
        return f"{self.category}:{op}:{self._op_seq}"

    def _apply_once(self, key: str, execute: Callable[[], Any]) -> Any:
        if key in self._applied:
            return self._applied[key]
        result = execute()
        self._applied[key] = result
        return result

    def _call(
        self,
        op: str,
        execute: Callable[[], Any],
        *,
        request_rows: int = 0,
        key: Optional[str] = None,
    ) -> Any:
        """One logical operation = one or more transport round trips.

        Counts every attempt in ``round_trips``; charges failed attempts
        at the timeout-amplified rate and backoff waits to
        ``<category>.backoff``; re-raises once the policy is exhausted.
        ``key`` routes the execution through the server's idempotency
        table so at-least-once delivery stays exactly-once application.
        """
        if key is not None:
            run = lambda: self._apply_once(key, execute)  # noqa: E731
        else:
            run = execute
        attempt = 1
        while True:
            self.round_trips += 1
            try:
                return self.transport.call(op, run)
            except TransientNetworkError:
                self.failed_round_trips += 1
                self.clock.charge(
                    f"{self.category}.{op}.failed",
                    self.cost_model.failed_round_trip_cost(request_rows),
                )
                if attempt >= self.retry_policy.max_attempts:
                    raise
                self.retries += 1
                self.clock.charge(
                    f"{self.category}.backoff",
                    self.retry_policy.backoff_ms(attempt, self._rng),
                )
                attempt += 1

    # ------------------------------------------------------------------
    # One (successful) round trip each
    # ------------------------------------------------------------------
    def insert(self, table: str, row: "Sequence[Any] | Dict[str, Any]") -> int:
        rowid = self._call(
            "insert",
            lambda: self.db.insert(table, row),
            request_rows=1,
            key=self._next_key("insert"),
        )
        self._charge("insert", 1)
        return rowid

    def insert_many(
        self, table: str, rows: Sequence["Sequence[Any] | Dict[str, Any]"]
    ) -> List[int]:
        """Batch insert: one round trip for the whole batch."""
        rowids = self._call(
            "insert_many",
            lambda: self.db.insert_many(table, rows),
            request_rows=len(rows),
            key=self._next_key("insert_many"),
        )
        self._charge("insert_many", len(rows))
        return rowids

    def execute(self, query: Query) -> List[Dict[str, Any]]:
        # reads are naturally idempotent: retried without a key
        rows = self._call("select", lambda: self.db.execute(query))
        self._charge("select", len(rows))
        return rows

    def sql(self, statement: str) -> List[Dict[str, Any]]:
        # the SQL subset includes mutations, so statements carry a key
        rows = self._call(
            "sql",
            lambda: execute_sql(self.db, statement),
            key=self._next_key("sql"),
        )
        self._charge("sql", len(rows))
        return rows

    def delete_where(self, table: str, predicate: Optional[Expr] = None) -> int:
        """One round trip; victims are enumerated server-side through
        the planner's access paths (:meth:`Database.delete_where`), so
        an indexable predicate no longer full-scans — the *charged*
        round-trip cost is unchanged, only the wall-time side of the
        charged-cost/wall-time split shrinks."""
        affected = self._call(
            "delete",
            lambda: self.db.delete_where(table, predicate),
            key=self._next_key("delete"),
        )
        self._charge("delete", affected)
        return affected

    def update_where(
        self, table: str, changes: Dict[str, Any], predicate: Optional[Expr] = None
    ) -> int:
        """One round trip; planner-routed victim enumeration, same as
        :meth:`delete_where`."""
        affected = self._call(
            "update",
            lambda: self.db.update_where(table, changes, predicate),
            key=self._next_key("update"),
        )
        self._charge("update", affected)
        return affected

    # ------------------------------------------------------------------
    # Statistics (not charged: out-of-band instrumentation)
    # ------------------------------------------------------------------
    def row_count(self, table: str) -> int:
        return self.db.table(table).row_count

    def byte_size(self, table: str) -> int:
        return self.db.table(table).byte_size
