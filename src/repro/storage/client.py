"""A client connection that models client/server round trips.

CPDB talked to MySQL over JDBC/TCP and to Timber over SOAP; the dominant
per-operation cost in the paper's Figures 9, 10, and 12 is the *number of
round trips*, which is why transactional provenance (which batches its
writes at commit) is nearly free per operation.  :class:`StoreClient`
wraps the embedded :class:`~repro.storage.db.Database` and charges one
round trip (plus a per-row marshalling cost) on a shared virtual clock
for every call — batched calls cost one round trip total, exactly the
saving the paper observed.

The wrapper also counts round trips per category so experiments can
report them independently of the cost model.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from ..common.clock import CostModel, VirtualClock
from .db import Database
from .expr import Expr
from .query import Query
from .sql import execute_sql

__all__ = ["StoreClient"]


class StoreClient:
    """Round-trip-accounted access to a :class:`Database`.

    ``category`` tags every charge so the harness can attribute time to
    e.g. ``prov`` (provenance store) vs ``source`` (source database).
    """

    def __init__(
        self,
        db: Database,
        clock: Optional[VirtualClock] = None,
        cost_model: Optional[CostModel] = None,
        category: str = "store",
    ) -> None:
        self.db = db
        self.clock = clock if clock is not None else VirtualClock()
        self.cost_model = cost_model if cost_model is not None else CostModel()
        self.category = category
        self.round_trips = 0

    # ------------------------------------------------------------------
    def _charge(self, operation: str, rows: int) -> None:
        self.round_trips += 1
        self.clock.charge(
            f"{self.category}.{operation}", self.cost_model.round_trip_cost(rows)
        )

    # ------------------------------------------------------------------
    # One round trip each
    # ------------------------------------------------------------------
    def insert(self, table: str, row: "Sequence[Any] | Dict[str, Any]") -> int:
        rowid = self.db.insert(table, row)
        self._charge("insert", 1)
        return rowid

    def insert_many(
        self, table: str, rows: Sequence["Sequence[Any] | Dict[str, Any]"]
    ) -> List[int]:
        """Batch insert: one round trip for the whole batch."""
        rowids = self.db.insert_many(table, rows)
        self._charge("insert_many", len(rows))
        return rowids

    def execute(self, query: Query) -> List[Dict[str, Any]]:
        rows = self.db.execute(query)
        self._charge("select", len(rows))
        return rows

    def sql(self, statement: str) -> List[Dict[str, Any]]:
        rows = execute_sql(self.db, statement)
        self._charge("sql", len(rows))
        return rows

    def delete_where(self, table: str, predicate: Optional[Expr] = None) -> int:
        """One round trip; victims are enumerated server-side through
        the planner's access paths (:meth:`Database.delete_where`), so
        an indexable predicate no longer full-scans — the *charged*
        round-trip cost is unchanged, only the wall-time side of the
        charged-cost/wall-time split shrinks."""
        affected = self.db.delete_where(table, predicate)
        self._charge("delete", affected)
        return affected

    def update_where(
        self, table: str, changes: Dict[str, Any], predicate: Optional[Expr] = None
    ) -> int:
        """One round trip; planner-routed victim enumeration, same as
        :meth:`delete_where`."""
        affected = self.db.update_where(table, changes, predicate)
        self._charge("update", affected)
        return affected

    # ------------------------------------------------------------------
    # Statistics (not charged: out-of-band instrumentation)
    # ------------------------------------------------------------------
    def row_count(self, table: str) -> int:
        return self.db.table(table).row_count

    def byte_size(self, table: str) -> int:
        return self.db.table(table).byte_size
