"""Binary row codec.

Rows are encoded to a compact binary form both for persistence (heap file
snapshots, WAL records) and for *byte-accurate storage accounting* — the
paper reports provenance store sizes in megabytes (Figure 8), so sizes must
come from a real encoding rather than guesses.

Encoding: a 4-byte little-endian row length, then one tagged value per
column.  Tags: ``0`` null, ``1`` int (8-byte signed), ``2`` real (8-byte
IEEE double), ``3`` text (4-byte length + UTF-8 bytes), ``4`` bool,
``5`` char (single byte, ASCII fast path with UTF-8 fallback as text).
"""

from __future__ import annotations

import struct
from typing import Any, List, Sequence, Tuple

from .errors import WALError
from .schema import TableSchema
from .types import ColumnType

__all__ = ["encode_row", "decode_row", "encode_values", "decode_values"]

_TAG_NULL = 0
_TAG_INT = 1
_TAG_REAL = 2
_TAG_TEXT = 3
_TAG_BOOL = 4
_TAG_CHAR = 5


def _encode_value(column_type: ColumnType, value: Any, out: List[bytes]) -> None:
    if value is None:
        out.append(bytes([_TAG_NULL]))
        return
    if column_type is ColumnType.INT:
        out.append(bytes([_TAG_INT]) + struct.pack("<q", value))
    elif column_type is ColumnType.REAL:
        out.append(bytes([_TAG_REAL]) + struct.pack("<d", float(value)))
    elif column_type is ColumnType.BOOL:
        out.append(bytes([_TAG_BOOL, 1 if value else 0]))
    elif column_type is ColumnType.CHAR:
        raw = value.encode("utf-8")
        if len(raw) == 1:
            out.append(bytes([_TAG_CHAR]) + raw)
        else:  # non-ASCII char: fall back to text encoding
            out.append(bytes([_TAG_TEXT]) + struct.pack("<I", len(raw)) + raw)
    else:  # TEXT
        raw = value.encode("utf-8")
        out.append(bytes([_TAG_TEXT]) + struct.pack("<I", len(raw)) + raw)


def encode_values(schema: TableSchema, row: Sequence[Any]) -> bytes:
    """Encode the value part of a row (no length prefix)."""
    parts: List[bytes] = []
    for column, value in zip(schema.columns, row):
        _encode_value(column.type, value, parts)
    return b"".join(parts)


def encode_row(schema: TableSchema, row: Sequence[Any]) -> bytes:
    """Encode a full row with its length prefix."""
    body = encode_values(schema, row)
    return struct.pack("<I", len(body)) + body


def _decode_value(data: bytes, offset: int) -> Tuple[Any, int]:
    tag = data[offset]
    offset += 1
    if tag == _TAG_NULL:
        return None, offset
    if tag == _TAG_INT:
        (value,) = struct.unpack_from("<q", data, offset)
        return value, offset + 8
    if tag == _TAG_REAL:
        (value,) = struct.unpack_from("<d", data, offset)
        return value, offset + 8
    if tag == _TAG_BOOL:
        return bool(data[offset]), offset + 1
    if tag == _TAG_CHAR:
        return chr(data[offset]), offset + 1
    if tag == _TAG_TEXT:
        (length,) = struct.unpack_from("<I", data, offset)
        offset += 4
        raw = data[offset : offset + length]
        if len(raw) != length:
            raise WALError("truncated text value")
        return raw.decode("utf-8"), offset + length
    raise WALError(f"unknown value tag {tag}")


def decode_values(schema: TableSchema, data: bytes) -> Tuple[Any, ...]:
    """Decode the value part of a row."""
    values = []
    offset = 0
    for _column in schema.columns:
        value, offset = _decode_value(data, offset)
        values.append(value)
    if offset != len(data):
        raise WALError(f"trailing bytes in encoded row ({len(data) - offset})")
    return tuple(values)


def decode_row(schema: TableSchema, data: bytes, offset: int = 0) -> Tuple[Tuple[Any, ...], int]:
    """Decode a length-prefixed row starting at ``offset``.

    Returns ``(row, next_offset)``.
    """
    if offset + 4 > len(data):
        raise WALError("truncated row length prefix")
    (length,) = struct.unpack_from("<I", data, offset)
    offset += 4
    body = data[offset : offset + length]
    if len(body) != length:
        raise WALError("truncated row body")
    return decode_values(schema, body), offset + length
