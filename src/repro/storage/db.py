"""The embedded database: catalog, transactions, WAL, and query execution.

This is the reproduction's MySQL substitute.  It holds the provenance
store and the relational source database (the OrganelleDB stand-in).
Transactions provide atomicity via an undo list and durability via the
write-ahead log; ``Database.recover`` rebuilds table contents from the log
after a simulated crash.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional, Sequence, Tuple

from .errors import (
    TransactionError,
    UnknownTableError,
    WALError,
)
from .expr import Expr
from .plan import PlanNode, TableScanNode, explain as explain_plan
from .query import PlanCache, Query, plan_mutation, plan_query
from .schema import Column, IndexSpec, TableSchema
from .table import Table
from .wal import (
    KIND_ABORT,
    KIND_BEGIN,
    KIND_CHECKPOINT,
    KIND_COMMIT,
    KIND_DELETE,
    KIND_INSERT,
    RecoveryReport,
    ScanStats,
    WalRecord,
    WriteAheadLog,
    coalesce_replay,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle with sql.py
    from .sql import PreparedStatement

__all__ = ["Database"]


@dataclass
class _UndoEntry:
    kind: str  # "insert" or "delete"
    table: str
    rowid: int
    row: Tuple[Any, ...]


class Database:
    """A named catalog of tables with optional WAL-backed durability.

    ``wal_dir=None`` (the default) runs fully in memory, which is what the
    provenance experiments use; passing a directory enables the journal.
    """

    def __init__(
        self,
        name: str = "db",
        wal_dir: Optional[str] = None,
        *,
        faults=None,
        plan_cache_size: int = 128,
    ) -> None:
        self.name = name
        self.tables: Dict[str, Table] = {}
        #: fault-injection plan shared with the WAL and the MVCC layer's
        #: commit protocol (``None`` means no faults)
        self.faults = faults
        #: cached physical plans keyed on (query shape, literals, stats
        #: epoch) — see :class:`repro.storage.query.PlanCache`.
        #: ``plan_cache_size=0`` disables caching (every ``plan`` call
        #: re-plans with live statistics — the benchmark baseline).
        self.plan_cache: Optional[PlanCache] = (
            PlanCache(plan_cache_size) if plan_cache_size > 0 else None
        )
        #: catalog DDL counter folded into every plan-cache epoch: a
        #: dropped-and-recreated table could otherwise coincide with a
        #: stale entry's (name, version) and serve plans bound to the
        #: *old* Table object
        self._ddl_epoch = 0
        self._wal: Optional[WriteAheadLog] = None
        self._wal_dir = wal_dir
        self._next_txn_id = 1
        self._active_txn: Optional[int] = None
        self._undo: List[_UndoEntry] = []
        self._schemas: Dict[str, TableSchema] = {}
        #: WAL records at or below this LSN are already contained in the
        #: snapshot this database was loaded from; recover() skips them
        self._wal_watermark = 0
        #: set when a WAL append fails mid-transaction: the log no
        #: longer holds the full transaction, so commit() must refuse
        self._txn_failed = False
        if wal_dir is not None:
            os.makedirs(wal_dir, exist_ok=True)
            self._wal = WriteAheadLog(
                os.path.join(wal_dir, f"{name}.wal"), self._schemas, faults=faults
            )

    # ------------------------------------------------------------------
    # Catalog
    # ------------------------------------------------------------------
    def create_table(self, schema: TableSchema) -> Table:
        if schema.name in self.tables:
            raise UnknownTableError(f"table {schema.name!r} already exists")
        table = Table(schema)
        # A primary key is also an index; register it for planning.
        if schema.primary_key and table.index_on(schema.primary_key) is None:
            table.create_index(
                IndexSpec(f"{schema.name}_pk_idx", tuple(schema.primary_key), unique=True)
            )
        self.tables[schema.name] = table
        self._schemas[schema.name] = schema
        self._ddl_epoch += 1
        return table

    def drop_table(self, name: str) -> None:
        if name not in self.tables:
            raise UnknownTableError(f"no table {name!r}")
        del self.tables[name]
        del self._schemas[name]
        self._ddl_epoch += 1

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise UnknownTableError(f"no table {name!r}") from None

    def has_table(self, name: str) -> bool:
        return name in self.tables

    # ------------------------------------------------------------------
    # Transactions
    # ------------------------------------------------------------------
    @property
    def in_transaction(self) -> bool:
        return self._active_txn is not None

    def _wal_append(self, record: WalRecord) -> None:
        """Append to the WAL, converting I/O failure into a typed
        ``WALError`` and *poisoning* the active transaction: the log may
        hold a partial record, so the transaction can no longer prove
        durability and ``commit`` will refuse it."""
        try:
            self._wal.append(record)
        except OSError as exc:
            self._txn_failed = True
            raise WALError(f"WAL append failed: {exc}") from exc

    def begin(self) -> int:
        if self._active_txn is not None:
            raise TransactionError("a transaction is already active")
        txn_id = self._next_txn_id
        self._next_txn_id += 1
        self._active_txn = txn_id
        self._undo = []
        self._txn_failed = False
        if self._wal is not None:
            self._wal_append(WalRecord(KIND_BEGIN, txn_id))
        return txn_id

    def commit(self) -> None:
        if self._active_txn is None:
            raise TransactionError("no active transaction to commit")
        if self._txn_failed:
            raise TransactionError(
                "cannot commit: a WAL append failed mid-transaction, so the "
                "log does not hold the full transaction; roll back instead"
            )
        if self._wal is not None:
            try:
                self._wal.append(WalRecord(KIND_COMMIT, self._active_txn))
                self._wal.flush()
            except OSError as exc:
                # the COMMIT record is not durably down; the transaction
                # stays open (and poisoned) so the caller rolls it back
                self._txn_failed = True
                raise WALError(f"commit not durable: {exc}") from exc
        self._active_txn = None
        self._undo = []

    def rollback(self) -> None:
        if self._active_txn is None:
            raise TransactionError("no active transaction to roll back")
        for entry in reversed(self._undo):
            table = self.tables[entry.table]
            if entry.kind == "insert":
                table.delete_row(entry.rowid)
            else:  # undo a delete by re-inserting the old row
                self._reinsert_at(table, entry.rowid, entry.row)
        if self._wal is not None:
            try:
                self._wal.append(WalRecord(KIND_ABORT, self._active_txn))
            except OSError:
                # REDO recovery discards uncommitted transactions whether
                # or not the ABORT made it down; in-memory rollback is
                # already complete, so a failing log must not block it
                pass
        self._active_txn = None
        self._undo = []
        self._txn_failed = False

    def _autocommit(self) -> bool:
        """Begin an implicit transaction if none is active."""
        if self._active_txn is None:
            try:
                self.begin()
            except WALError:
                # the BEGIN append failed after the transaction was
                # opened; close it again so the failed statement leaves
                # no transaction dangling
                if self._active_txn is not None:
                    self.rollback()
                raise
            return True
        return False

    # ------------------------------------------------------------------
    # DML
    # ------------------------------------------------------------------
    def insert(self, table_name: str, row: "Sequence[Any] | Dict[str, Any]") -> int:
        table = self.table(table_name)
        implicit = self._autocommit()
        try:
            rowid = table.insert(row)
            stored = table.get(rowid)
            # undo before WAL: if the log append fails, rollback (explicit
            # or implicit) still knows how to take the row back out
            self._undo.append(_UndoEntry("insert", table_name, rowid, stored))
            if self._wal is not None:
                self._wal_append(
                    WalRecord(KIND_INSERT, self._active_txn, table_name, stored)
                )
        except Exception:
            if implicit:
                self.rollback()
            raise
        if implicit:
            self.commit()
        return rowid

    def insert_many(
        self, table_name: str, rows: Sequence["Sequence[Any] | Dict[str, Any]"]
    ) -> List[int]:
        implicit = self._autocommit()
        rowids = []
        try:
            for row in rows:
                rowids.append(self.insert(table_name, row))
        except Exception:
            if implicit:
                self.rollback()
            raise
        if implicit:
            self.commit()
        return rowids

    def bulk_load(
        self, table_name: str, rows: Sequence["Sequence[Any] | Dict[str, Any]"]
    ) -> List[int]:
        """Load rows without transaction machinery (no undo, no WAL).

        The snapshot-restore and recovery fast path: the batch is
        validated up front (primary-key and unique-index violations,
        against existing rows and within the batch) and then applied
        with one index pass — empty indexes are bulk-built, populated
        ordered indexes are merged — instead of per-row index
        maintenance and begin/undo/commit bookkeeping.  Only valid
        outside a transaction; a failing batch leaves the table
        unchanged.
        """
        if self._active_txn is not None:
            raise TransactionError("bulk_load is not allowed inside a transaction")
        table = self.table(table_name)
        return table.bulk_insert(rows)

    def _select_victims(
        self, table: Table, predicate: Optional[Expr], naive: bool
    ) -> List[int]:
        """Enumerate the row ids matching a DML predicate through the
        planner's access paths (``naive=True`` forces the full-scan
        oracle).  Materialized before any mutation so index scans never
        observe their own statement's writes."""
        node, residual = plan_mutation(table, predicate, naive=naive)
        if residual is None:
            return [rowid for rowid, _row in node.rows()]
        as_dict = table.schema.row_as_dict
        return [
            rowid for rowid, row in node.rows() if residual.eval(as_dict(row))
        ]

    def _reinsert_at(self, table: Table, rowid: int, row: Tuple[Any, ...]) -> None:
        """Re-insert ``row`` under its original ``rowid`` (undo of a
        delete)."""
        saved = table._next_rowid
        table._next_rowid = rowid
        try:
            table.insert(row)
        finally:
            table._next_rowid = max(saved, rowid + 1)

    def delete_rowid(self, table_name: str, rowid: int) -> Tuple[Any, ...]:
        """Transactionally delete one row *by row id*; returns the row.

        The MVCC commit protocol replays a transaction's buffered writes
        against the base tables and already knows exactly which row each
        one targets — predicate re-evaluation (:meth:`delete_where`)
        would be wasted work and, worse, could match rows committed
        after the victim was chosen.  Undo and WAL bookkeeping are
        identical to a one-victim ``delete_where``.
        """
        table = self.table(table_name)
        implicit = self._autocommit()
        try:
            row = table.delete_row(rowid)
            self._undo.append(_UndoEntry("delete", table_name, rowid, row))
            if self._wal is not None:
                self._wal_append(
                    WalRecord(KIND_DELETE, self._active_txn, table_name, row)
                )
        except Exception:
            if implicit:
                self.rollback()
            raise
        if implicit:
            self.commit()
        return row

    def update_rowid(
        self, table_name: str, rowid: int, changes: Dict[str, Any]
    ) -> Tuple[Tuple[Any, ...], Tuple[Any, ...]]:
        """Transactionally update one row *by row id*; returns
        ``(old, new)``.  Companion of :meth:`delete_rowid` for MVCC
        commit replay; modeled as delete+insert in the undo log and WAL,
        exactly like one ``update_where`` victim."""
        table = self.table(table_name)
        implicit = self._autocommit()
        try:
            old, new = table.update_row(rowid, changes)
            self._undo.append(_UndoEntry("delete", table_name, rowid, old))
            self._undo.append(_UndoEntry("insert", table_name, rowid, new))
            if self._wal is not None:
                self._wal_append(
                    WalRecord(KIND_DELETE, self._active_txn, table_name, old)
                )
                self._wal_append(
                    WalRecord(KIND_INSERT, self._active_txn, table_name, new)
                )
        except Exception:
            if implicit:
                self.rollback()
            raise
        if implicit:
            self.commit()
        return old, new

    def delete_where(
        self, table_name: str, predicate: Optional[Expr] = None, *, naive: bool = False
    ) -> int:
        """Delete matching rows; returns the count.

        Victims are enumerated through the planner
        (:func:`~repro.storage.query.plan_mutation`): an indexable
        predicate probes the same access paths a SELECT with this WHERE
        clause would — IN lists ride the multi-range union — instead of
        paying a raw full scan.  ``naive=True`` forces the full-scan
        oracle (the differential DML tests).  The statement is atomic:
        a mid-batch failure reverts the rows it already deleted and
        appends nothing to the undo log or WAL.
        """
        table = self.table(table_name)
        doomed = self._select_victims(table, predicate, naive)
        implicit = self._autocommit()
        removed: List[Tuple[int, Tuple[Any, ...]]] = []
        undo_logged = False
        try:
            for rowid in doomed:
                removed.append((rowid, table.delete_row(rowid)))
            for rowid, row in removed:
                self._undo.append(_UndoEntry("delete", table_name, rowid, row))
            undo_logged = True
            if self._wal is not None:
                for _rowid, row in removed:
                    self._wal_append(
                        WalRecord(KIND_DELETE, self._active_txn, table_name, row)
                    )
        except Exception:
            if not undo_logged:
                # mid-batch mutation failure: the undo log doesn't know
                # these rows yet, so revert them by hand
                for rowid, row in reversed(removed):
                    self._reinsert_at(table, rowid, row)
            if implicit:
                self.rollback()
            raise
        if implicit:
            self.commit()
        return len(removed)

    def update_where(
        self,
        table_name: str,
        changes: Dict[str, Any],
        predicate: Optional[Expr] = None,
        *,
        naive: bool = False,
    ) -> int:
        """Update matching rows (modeled as delete+insert in the WAL).

        Victim enumeration is planner-routed exactly like
        :meth:`delete_where`.  The statement is atomic: undo and WAL
        records are buffered until every victim has been updated, so a
        constraint violation on the Nth victim reverts victims 1..N-1
        in place (reverse order) and leaves the transaction — and, for
        implicit transactions, the table — exactly as before the call;
        nothing of the failed statement reaches the WAL.
        """
        table = self.table(table_name)
        victims = self._select_victims(table, predicate, naive)
        implicit = self._autocommit()
        applied: List[Tuple[int, Tuple[Any, ...], Tuple[Any, ...]]] = []
        undo_logged = False
        try:
            for rowid in victims:
                old, new = table.update_row(rowid, changes)
                applied.append((rowid, old, new))
            for rowid, old, new in applied:
                self._undo.append(_UndoEntry("delete", table_name, rowid, old))
                self._undo.append(_UndoEntry("insert", table_name, rowid, new))
            undo_logged = True
            if self._wal is not None:
                for _rowid, old, new in applied:
                    self._wal_append(
                        WalRecord(KIND_DELETE, self._active_txn, table_name, old)
                    )
                    self._wal_append(
                        WalRecord(KIND_INSERT, self._active_txn, table_name, new)
                    )
        except Exception:
            if not undo_logged:
                # Reverting in reverse order cannot itself conflict: the
                # statement sets every victim to the same values, so the
                # old rows being restored were distinct before the call.
                names = table.schema.column_names
                for rowid, old, _new in reversed(applied):
                    table.update_row(rowid, dict(zip(names, old)))
            if implicit:
                self.rollback()
            raise
        if implicit:
            self.commit()
        return len(applied)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def _stats_epoch(self, query: Query) -> Tuple[Any, ...]:
        """The plan-cache epoch for every table ``query`` touches:
        the catalog DDL counter plus, per table, its ``_version``
        mutation counter and index-spec fingerprint.  Any insert,
        delete, update, ``create_index``, or drop/recreate moves some
        component, so stale cache entries can never match."""
        names = {query.table.name}
        names.update(join.table.name for join in query.joins)
        parts: List[Tuple[Any, ...]] = []
        for name in sorted(names):
            table = self.table(name)
            fingerprint = tuple(sorted(table.index_specs.items()))
            parts.append((name, table._version, fingerprint))
        return (self._ddl_epoch, tuple(parts))

    def plan(self, query: Query, *, naive: bool = False) -> PlanNode:
        """The physical plan for ``query``; ``naive=True`` forces the
        rule-free SeqScan+Sort oracle plan (differential testing).

        Non-naive plans go through the plan cache: an exact repeat
        (same shape, same literals, same stats epoch) returns the
        cached plan with no planning work at all; a same-shape repeat
        with new literals re-costs against the cached statistics
        snapshot without sampling the tables."""
        if naive or self.plan_cache is None:
            return plan_query(self.tables, query, naive=naive)
        return self.plan_cache.plan(self.tables, query, self._stats_epoch(query))

    def plan_mutation(
        self, table_name: str, predicate: Optional[Expr] = None, *, naive: bool = False
    ) -> "Tuple[TableScanNode, Optional[Expr]]":
        """The access path + residual filter ``delete_where`` /
        ``update_where`` would use for ``predicate`` — EXPLAIN-style
        inspection for planned DML (see
        :func:`~repro.storage.query.plan_mutation`)."""
        return plan_mutation(self.table(table_name), predicate, naive=naive)

    def explain(
        self,
        query: Query,
        *,
        naive: bool = False,
        estimates: bool = False,
        cache_status: bool = False,
    ) -> str:
        """EXPLAIN: the plan for ``query`` rendered as indented text.

        ``estimates=True`` appends the planner's estimated row count to
        every access path and join operator (``est_rows=N``) — the
        figures the cost model ranked candidates and join orders by, so
        a surprising plan can be traced to the estimate that caused it.
        ``cache_status=True`` prefixes a ``plan cache: hit|shape_hit|
        miss`` line reporting how this very call resolved.  The default
        output matches :func:`repro.storage.plan.explain` exactly
        (snapshot-stable across estimator changes).
        """
        rendered = explain_plan(self.plan(query, naive=naive), estimates=estimates)
        if cache_status and not naive and self.plan_cache is not None:
            rendered = f"plan cache: {self.plan_cache.last_lookup}\n{rendered}"
        return rendered

    def execute(self, query: Query) -> List[Dict[str, Any]]:
        return list(self.plan(query).execute())

    def prepare(self, sql: str) -> "PreparedStatement":
        """Parse a SQL statement once for repeated execution.

        ``?`` placeholders mark bind positions; each ``execute(params)``
        substitutes values and runs through the plan cache, so repeated
        executions skip parsing entirely and planning re-samples no
        table statistics (same shape ⇒ cached stats snapshot; same
        values ⇒ the whole cached plan).
        """
        from .sql import PreparedStatement  # deferred: sql.py imports db.py

        return PreparedStatement(self, sql)

    # ------------------------------------------------------------------
    # Durability
    # ------------------------------------------------------------------
    def crash(self) -> None:
        """Simulate a crash: drop all in-memory state, keep the WAL file."""
        if self._wal is not None:
            self._wal.crash()
        for table in self.tables.values():
            table.clear()
        self._active_txn = None
        self._undo = []

    def recover(self, mode: str = "strict") -> RecoveryReport:
        """REDO recovery: replay committed transactions from the WAL.

        ``mode="strict"`` raises
        :class:`~repro.storage.errors.WALCorruptionError` (naming the
        segment, offset, and LSN) at the first corrupt record, *before*
        any table has been touched — the scan is materialized first, so
        strict recovery either applies everything or changes nothing.
        ``mode="tolerant"`` replays the longest clean committed prefix
        and reports what it dropped.  A torn tail (crash mid-append) is
        not corruption in either mode.  Records at or below the
        snapshot's LSN watermark are skipped — their effects are already
        in the snapshot this database was loaded from.

        Replay is bulk, not row-at-a-time: committed inserts are grouped
        into per-table runs (``coalesce_replay``) and applied through
        :meth:`bulk_load`'s batch path, so the heap is appended in one
        pass and secondary indexes are bulk-built or merged once per run
        instead of being maintained per row.  Deletes flush their
        table's pending run first, preserving per-table order.

        Returns a :class:`~repro.storage.wal.RecoveryReport` (which
        compares equal to the replayed-transaction count, the old return
        type).  Tables must already exist (schema is metadata, not
        logged — as in most real systems).
        """
        if self._wal is None:
            raise TransactionError("this database has no WAL to recover from")
        stats = ScanStats()
        report = RecoveryReport(mode=mode)
        watermark = self._wal_watermark
        pending: Dict[int, List[WalRecord]] = {}
        committed: List[Tuple[int, List[WalRecord]]] = []
        for record in self._wal.scan(mode=mode, stats=stats):
            if record.lsn is not None and record.lsn <= watermark:
                report.records_skipped += 1
                continue
            if record.kind == KIND_BEGIN:
                pending[record.txn_id] = []
            elif record.kind in (KIND_INSERT, KIND_DELETE):
                pending.setdefault(record.txn_id, []).append(record)
            elif record.kind == KIND_COMMIT:
                committed.append((record.txn_id, pending.pop(record.txn_id, [])))
            elif record.kind == KIND_ABORT:
                pending.pop(record.txn_id, None)
                report.txns_aborted += 1
            elif record.kind == KIND_CHECKPOINT:
                continue
            else:  # pragma: no cover - defensive
                raise WALError(f"unknown WAL record kind {record.kind}")
        report.txns_replayed = len(committed)
        report.txns_dropped = len(pending)
        report.segments_scanned = stats.segments_scanned
        report.records_scanned = stats.records_scanned
        report.torn_tail_bytes = stats.torn_tail_bytes
        report.bytes_quarantined = stats.bytes_quarantined
        report.corruption = stats.corruption
        for txn_id, _records in committed:
            self._next_txn_id = max(self._next_txn_id, txn_id + 1)
        flat = (record for _txn_id, records in committed for record in records)
        for op, table_name, payload in coalesce_replay(flat):
            table = self.table(table_name)
            if op == "bulk_insert":
                table.bulk_insert(payload)
            elif table.schema.primary_key:
                # pk point lookup instead of a full scan: a row equal
                # to the logged one necessarily shares its key
                found = table.lookup_pk(table.schema.key_of(payload))
                if found is not None and found[1] == payload:
                    table.delete_row(found[0])
            else:
                for rowid, row in list(table.scan()):
                    if row == payload:
                        table.delete_row(rowid)
                        break
        return report

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Dict[str, int]]:
        """Per-table row/byte figures plus the plan cache's counters
        under the reserved ``"plan_cache"`` key (hits / shape_hits /
        misses / invalidations; all zero when caching is disabled).

        Each table's pair comes from :meth:`Table.stats_snapshot`, so a
        reader interleaved with an active writer (the asyncio server
        answering ``stats`` between a peer's mutations) sees a
        consistent point-in-time pair, never a torn one."""
        out: Dict[str, Dict[str, int]] = {
            name: table.stats_snapshot() for name, table in self.tables.items()
        }
        out["plan_cache"] = (
            dict(self.plan_cache.counters)
            if self.plan_cache is not None
            else {"hits": 0, "shape_hits": 0, "misses": 0, "invalidations": 0}
        )
        return out
