"""Exception hierarchy for the embedded relational engine."""

from __future__ import annotations

__all__ = [
    "StorageError",
    "SchemaError",
    "ConstraintError",
    "DuplicateKeyError",
    "UnknownTableError",
    "UnknownColumnError",
    "TransactionError",
    "SQLError",
    "WALError",
]


class StorageError(Exception):
    """Base class for every error raised by :mod:`repro.storage`."""


class SchemaError(StorageError):
    """Invalid schema definition or a value violating a column type."""


class ConstraintError(StorageError):
    """A constraint (NOT NULL, primary key, unique index) was violated."""


class DuplicateKeyError(ConstraintError):
    """A primary-key or unique-index collision."""


class UnknownTableError(StorageError):
    """Referenced table does not exist in the catalog."""


class UnknownColumnError(StorageError):
    """Referenced column does not exist in the schema."""


class TransactionError(StorageError):
    """Invalid transaction state transition (e.g. commit without begin)."""


class SQLError(StorageError):
    """Syntax or semantic error in the SQL subset."""


class WALError(StorageError):
    """Corrupt or unreadable write-ahead-log content."""
