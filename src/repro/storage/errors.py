"""Exception hierarchy for the embedded relational engine."""

from __future__ import annotations

__all__ = [
    "StorageError",
    "SchemaError",
    "ConstraintError",
    "DuplicateKeyError",
    "UnknownTableError",
    "UnknownColumnError",
    "TransactionError",
    "WriteConflictError",
    "SQLError",
    "WALError",
    "WALCorruptionError",
    "TransientNetworkError",
]


class StorageError(Exception):
    """Base class for every error raised by :mod:`repro.storage`."""


class SchemaError(StorageError):
    """Invalid schema definition or a value violating a column type."""


class ConstraintError(StorageError):
    """A constraint (NOT NULL, primary key, unique index) was violated."""


class DuplicateKeyError(ConstraintError):
    """A primary-key or unique-index collision."""


class UnknownTableError(StorageError):
    """Referenced table does not exist in the catalog."""


class UnknownColumnError(StorageError):
    """Referenced column does not exist in the schema."""


class AmbiguousColumnError(StorageError):
    """An unqualified column name resolves to conflicting values.

    Raised by join operators when two inputs share an unqualified column
    name, the joined rows disagree on its value, and no table alias is
    available to disambiguate — silently preferring one side (what the
    engine used to do) turns a naming accident into wrong answers.
    """


class TransactionError(StorageError):
    """Invalid transaction state transition (e.g. commit without begin)."""


class WriteConflictError(TransactionError):
    """First-committer-wins: a snapshot-isolation transaction tried to
    commit a write to a row that another transaction — one that
    committed after this transaction's snapshot was taken — already
    wrote.  The losing transaction is rolled back; retrying it against a
    fresh snapshot is the client's job (and usually succeeds).

    ``table`` and ``rowids`` name the contended rows when known.
    """

    def __init__(
        self,
        message: str,
        *,
        table: "str | None" = None,
        rowids: "tuple | None" = None,
    ) -> None:
        self.table = table
        self.rowids = rowids
        super().__init__(message)


class SQLError(StorageError):
    """Syntax or semantic error in the SQL subset."""


class WALError(StorageError):
    """Corrupt or unreadable write-ahead-log content."""


class WALCorruptionError(WALError):
    """A WAL record failed verification (checksum, framing, or LSN).

    Names the corruption site: ``segment`` (file path), ``offset``
    (byte offset of the bad record within it), ``lsn`` (the expected
    log sequence number there, when known), and ``reason``.  Raised by
    the strict-mode scanner; the tolerant scanner reports the same
    site in the :class:`~repro.storage.wal.RecoveryReport` instead.
    """

    def __init__(
        self,
        reason: str,
        *,
        segment: str,
        offset: int,
        lsn: "int | None" = None,
    ) -> None:
        self.reason = reason
        self.segment = segment
        self.offset = offset
        self.lsn = lsn
        at_lsn = f", lsn {lsn}" if lsn is not None else ""
        super().__init__(f"{reason} in {segment!r} at byte {offset}{at_lsn}")


class TransientNetworkError(StorageError):
    """A client/server round trip failed in a retryable way.

    ``phase`` distinguishes a lost *request* (the server never executed
    the operation) from a lost *response* (the server executed it but
    the client cannot know) — the distinction idempotency keys exist
    for.
    """

    def __init__(self, message: str, *, phase: str = "request") -> None:
        self.phase = phase
        super().__init__(message)
