"""Exception hierarchy for the embedded relational engine."""

from __future__ import annotations

__all__ = [
    "StorageError",
    "SchemaError",
    "ConstraintError",
    "DuplicateKeyError",
    "UnknownTableError",
    "UnknownColumnError",
    "TransactionError",
    "SQLError",
    "WALError",
]


class StorageError(Exception):
    """Base class for every error raised by :mod:`repro.storage`."""


class SchemaError(StorageError):
    """Invalid schema definition or a value violating a column type."""


class ConstraintError(StorageError):
    """A constraint (NOT NULL, primary key, unique index) was violated."""


class DuplicateKeyError(ConstraintError):
    """A primary-key or unique-index collision."""


class UnknownTableError(StorageError):
    """Referenced table does not exist in the catalog."""


class UnknownColumnError(StorageError):
    """Referenced column does not exist in the schema."""


class AmbiguousColumnError(StorageError):
    """An unqualified column name resolves to conflicting values.

    Raised by join operators when two inputs share an unqualified column
    name, the joined rows disagree on its value, and no table alias is
    available to disambiguate — silently preferring one side (what the
    engine used to do) turns a naming accident into wrong answers.
    """


class TransactionError(StorageError):
    """Invalid transaction state transition (e.g. commit without begin)."""


class SQLError(StorageError):
    """Syntax or semantic error in the SQL subset."""


class WALError(StorageError):
    """Corrupt or unreadable write-ahead-log content."""
