"""Scalar expressions over rows: the predicate/projection language.

Expressions evaluate against an *environment* mapping column names to
values (qualified names like ``p.loc`` are plain keys).  The planner
inspects predicate structure to choose index access paths, so the AST is
deliberately small and analyzable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, Iterator, List, Optional, Sequence, Tuple

from .errors import UnknownColumnError

__all__ = [
    "Expr",
    "Col",
    "Const",
    "Cmp",
    "And",
    "Or",
    "Not",
    "IsNull",
    "InList",
    "PrefixMatch",
    "Concat",
    "compile_expr",
    "conjuncts",
    "column_bound",
]

Env = Dict[str, Any]


class Expr:
    """Base class; subclasses are frozen dataclasses."""

    def eval(self, env: Env) -> Any:
        raise NotImplementedError

    def columns(self) -> FrozenSet[str]:
        """The set of column names this expression references."""
        raise NotImplementedError


@dataclass(frozen=True)
class Col(Expr):
    name: str

    def eval(self, env: Env) -> Any:
        try:
            return env[self.name]
        except KeyError:
            raise UnknownColumnError(f"unbound column {self.name!r}") from None

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.name})


@dataclass(frozen=True)
class Const(Expr):
    value: Any

    def eval(self, env: Env) -> Any:
        return self.value

    def columns(self) -> FrozenSet[str]:
        return frozenset()


_OPS = {
    "=": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


@dataclass(frozen=True)
class Cmp(Expr):
    """Binary comparison.  NULL compares to nothing (SQL-ish semantics):
    any comparison involving NULL evaluates to False."""

    op: str
    left: Expr
    right: Expr

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ValueError(f"unknown comparison operator {self.op!r}")

    def eval(self, env: Env) -> bool:
        left = self.left.eval(env)
        right = self.right.eval(env)
        if left is None or right is None:
            return False
        return _OPS[self.op](left, right)

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()


@dataclass(frozen=True)
class And(Expr):
    parts: Tuple[Expr, ...]

    def __init__(self, *parts: Expr) -> None:
        flattened: List[Expr] = []
        for part in parts:
            if isinstance(part, And):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        object.__setattr__(self, "parts", tuple(flattened))

    def eval(self, env: Env) -> bool:
        return all(part.eval(env) for part in self.parts)

    def columns(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for part in self.parts:
            result |= part.columns()
        return result


@dataclass(frozen=True)
class Or(Expr):
    parts: Tuple[Expr, ...]

    def __init__(self, *parts: Expr) -> None:
        object.__setattr__(self, "parts", tuple(parts))

    def eval(self, env: Env) -> bool:
        return any(part.eval(env) for part in self.parts)

    def columns(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for part in self.parts:
            result |= part.columns()
        return result


@dataclass(frozen=True)
class Not(Expr):
    inner: Expr

    def eval(self, env: Env) -> bool:
        return not self.inner.eval(env)

    def columns(self) -> FrozenSet[str]:
        return self.inner.columns()


@dataclass(frozen=True)
class IsNull(Expr):
    inner: Expr
    negated: bool = False

    def eval(self, env: Env) -> bool:
        result = self.inner.eval(env) is None
        return not result if self.negated else result

    def columns(self) -> FrozenSet[str]:
        return self.inner.columns()


@dataclass(frozen=True)
class InList(Expr):
    inner: Expr
    options: Tuple[Any, ...]

    def eval(self, env: Env) -> bool:
        return self.inner.eval(env) in self.options

    def columns(self) -> FrozenSet[str]:
        return self.inner.columns()


@dataclass(frozen=True)
class PrefixMatch(Expr):
    """``col LIKE 'prefix%'`` — the descendant-of access pattern on paths."""

    column: Col
    prefix: str

    def eval(self, env: Env) -> bool:
        value = self.column.eval(env)
        return isinstance(value, str) and value.startswith(self.prefix)

    def columns(self) -> FrozenSet[str]:
        return self.column.columns()


@dataclass(frozen=True)
class Concat(Expr):
    """String concatenation — the paper builds paths with ``+`` in queries
    mixing provenance and raw data (Section 2.2)."""

    parts: Tuple[Expr, ...]

    def __init__(self, *parts: Expr) -> None:
        object.__setattr__(self, "parts", tuple(parts))

    def eval(self, env: Env) -> str:
        return "".join(str(part.eval(env)) for part in self.parts)

    def columns(self) -> FrozenSet[str]:
        result: FrozenSet[str] = frozenset()
        for part in self.parts:
            result |= part.columns()
        return result


def compile_expr(expr: Expr) -> "Callable[[Env], Any]":
    """Specialize an expression into a closure evaluated per row.

    Interpreted evaluation pays an ``isinstance``-free but virtual-call-
    heavy tree walk *per row*; a plan's residual filters run that walk
    millions of times.  Compiling flattens the tree once — at plan (or
    plan-cache) time — into nested closures with the operator functions,
    column names, and constants already bound, so the per-row cost is a
    few dict lookups and one call chain.

    Semantics are exactly ``expr.eval``'s: NULL comparisons are False,
    ``IN`` uses Python membership (``NULL IN (NULL,)`` is True), unbound
    columns raise :class:`UnknownColumnError`.  The differential harness
    holds compiled and interpreted evaluation to the same answers.
    """
    if isinstance(expr, Const):
        value = expr.value
        return lambda env: value
    if isinstance(expr, Col):
        name = expr.name

        def col_fn(env: Env) -> Any:
            try:
                return env[name]
            except KeyError:
                raise UnknownColumnError(f"unbound column {name!r}") from None

        return col_fn
    if isinstance(expr, Cmp):
        op = _OPS[expr.op]
        # the hot shape: column vs constant — skip the operand closures
        if isinstance(expr.left, Col) and isinstance(expr.right, Const):
            name, value = expr.left.name, expr.right.value

            def cmp_col_const(env: Env) -> bool:
                try:
                    left = env[name]
                except KeyError:
                    raise UnknownColumnError(f"unbound column {name!r}") from None
                if left is None or value is None:
                    return False
                return op(left, value)

            return cmp_col_const
        left_fn = compile_expr(expr.left)
        right_fn = compile_expr(expr.right)

        def cmp_fn(env: Env) -> bool:
            left = left_fn(env)
            right = right_fn(env)
            if left is None or right is None:
                return False
            return op(left, right)

        return cmp_fn
    if isinstance(expr, And):
        part_fns = [compile_expr(part) for part in expr.parts]
        # unrolled small arities: the common residual shapes, with no
        # per-row generator allocation
        if len(part_fns) == 2:
            first, second = part_fns
            return lambda env: bool(first(env) and second(env))
        if len(part_fns) == 3:
            first, second, third = part_fns
            return lambda env: bool(first(env) and second(env) and third(env))
        return lambda env: all(fn(env) for fn in part_fns)
    if isinstance(expr, Or):
        part_fns = [compile_expr(part) for part in expr.parts]
        return lambda env: any(fn(env) for fn in part_fns)
    if isinstance(expr, Not):
        inner_fn = compile_expr(expr.inner)
        return lambda env: not inner_fn(env)
    if isinstance(expr, IsNull):
        inner_fn = compile_expr(expr.inner)
        if expr.negated:
            return lambda env: inner_fn(env) is not None
        return lambda env: inner_fn(env) is None
    if isinstance(expr, InList):
        inner_fn = compile_expr(expr.inner)
        options = expr.options
        return lambda env: inner_fn(env) in options
    if isinstance(expr, PrefixMatch):
        name = expr.column.name
        prefix = expr.prefix

        def prefix_fn(env: Env) -> bool:
            try:
                value = env[name]
            except KeyError:
                raise UnknownColumnError(f"unbound column {name!r}") from None
            return isinstance(value, str) and value.startswith(prefix)

        return prefix_fn
    if isinstance(expr, Concat):
        part_fns = [compile_expr(part) for part in expr.parts]
        return lambda env: "".join(str(fn(env)) for fn in part_fns)
    # unknown subclass (user extension): interpreted evaluation still works
    return expr.eval


_FLIPPED_OPS = {"=": "=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def column_bound(expr: Expr) -> Optional[Tuple[str, str, Any]]:
    """Normalize a column-vs-constant comparison to ``(column, op, value)``.

    Both orientations are recognized (``k < 5`` and ``5 > k`` mean the
    same bound); anything that is not a ``Col``/``Const`` comparison with
    one of ``= < <= > >=`` returns ``None``.  This is the single shape
    the planner's interval analysis consumes.
    """
    if not isinstance(expr, Cmp) or expr.op not in _FLIPPED_OPS:
        return None
    if isinstance(expr.left, Col) and isinstance(expr.right, Const):
        return (expr.left.name, expr.op, expr.right.value)
    if isinstance(expr.left, Const) and isinstance(expr.right, Col):
        return (expr.right.name, _FLIPPED_OPS[expr.op], expr.left.value)
    return None


def conjuncts(expr: Optional[Expr]) -> Iterator[Expr]:
    """Flatten a predicate into its top-level AND-ed conjuncts."""
    if expr is None:
        return
    if isinstance(expr, And):
        for part in expr.parts:
            yield from conjuncts(part)
    else:
        yield expr
