"""In-memory secondary indexes: hash (equality) and ordered (range/prefix).

The provenance workload needs two access paths:

* equality on ``tid`` (all changes in a transaction) — hash index;
* prefix on ``loc`` (all records under a subtree, the ``Mod`` query and
  hierarchical inference) — ordered index with prefix range scans.

The ordered index is a *blocked* sorted structure (a two-level
list-of-chunks in the spirit of a B-tree leaf chain): entries live in
bounded sorted blocks, and a parallel array of per-block maxima is
bisected to locate the target block.  Insert and delete therefore cost
O(log n + sqrt(n))-ish instead of the O(n) ``list.insert`` of a flat
sorted list, while range and prefix scans stream blocks in order.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from operator import itemgetter
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from .errors import DuplicateKeyError

__all__ = ["HashIndex", "OrderedIndex", "MIN_KEY", "MAX_KEY", "KeyRange"]

Key = Tuple[Any, ...]
Entry = Tuple[Key, int]

#: ``(low, high, include_low, include_high)`` — one range over an
#: ordered index's key space, with the same semantics as
#: :meth:`OrderedIndex.range`.  The unit :meth:`OrderedIndex.multi_range`
#: (and everything above it, up to the planner's ``IndexMultiRangeScan``)
#: unions over.
KeyRange = Tuple[Optional[Key], Optional[Key], bool, bool]

_ENTRY_KEY = itemgetter(0)
_ENTRY_ROWID = itemgetter(1)


class HashIndex:
    """Equality index mapping key tuples to row ids.

    Buckets are insertion-ordered dicts, so iteration order is the order
    rows were indexed (ascending row id for append-only workloads) and
    lookups need no per-call sort.

    Lifecycle (shared with :class:`OrderedIndex` — see
    ``docs/ARCHITECTURE.md``): construct empty and :meth:`insert` row by
    row, or construct pre-populated with :meth:`bulk_build`; maintain
    with :meth:`insert`/:meth:`delete`; drop everything with
    :meth:`clear`.
    """

    def __init__(self, name: str, unique: bool = False) -> None:
        self.name = name
        self.unique = unique
        self._buckets: Dict[Key, Dict[int, None]] = {}

    @classmethod
    def bulk_build(
        cls, name: str, entries: Iterable[Entry], unique: bool = False
    ) -> "HashIndex":
        """Build an index holding ``entries`` (``(key, rowid)`` pairs).

        One pass over the entries — the hash shape has no sort to
        amortize, so this exists for lifecycle symmetry with
        :meth:`OrderedIndex.bulk_build`: every bulk code path (snapshot
        restore, WAL replay, ``create_index`` backfill) constructs both
        index kinds the same way.  Duplicate keys raise
        :class:`~repro.storage.errors.DuplicateKeyError` when ``unique``.
        """
        index = cls(name, unique=unique)
        buckets = index._buckets
        if unique:
            for key, rowid in entries:
                if key in buckets:
                    raise DuplicateKeyError(
                        f"duplicate key {key!r} in unique index {name!r}"
                    )
                buckets[key] = {rowid: None}
        else:
            for key, rowid in entries:
                buckets.setdefault(key, {})[rowid] = None
        return index

    def insert(self, key: Key, rowid: int) -> None:
        """Index ``rowid`` under ``key``; raises
        :class:`~repro.storage.errors.DuplicateKeyError` if the index is
        ``unique`` and the key is already present."""
        bucket = self._buckets.setdefault(key, {})
        if self.unique and bucket:
            raise DuplicateKeyError(f"duplicate key {key!r} in unique index {self.name!r}")
        bucket[rowid] = None

    def delete(self, key: Key, rowid: int) -> None:
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.pop(rowid, None)
            if not bucket:
                del self._buckets[key]

    def lookup(self, key: Key) -> Set[int]:
        return set(self._buckets.get(key, ()))

    def lookup_iter(self, key: Key) -> Iterator[int]:
        """Row ids for ``key`` in insertion order (no copy, no sort)."""
        return iter(tuple(self._buckets.get(key, ())))

    def contains(self, key: Key) -> bool:
        return key in self._buckets

    def key_count(self) -> int:
        """The number of distinct keys (exact, O(1)) — the planner's
        selectivity statistic for equality probes."""
        return len(self._buckets)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def clear(self) -> None:
        self._buckets.clear()


class _Extreme:
    """Compares below (``_MIN``) or above (``_MAX``) every other value.

    Used in the row-id slot of probe entries so bisection over ``(key,
    rowid)`` pairs can target "before the first" / "after the last" entry
    of a key without assuming row ids are numeric.  (The seed used
    ``-1``/``float("inf")``, which raises ``TypeError`` against
    non-numeric row ids on exclusive range bounds.)
    """

    __slots__ = ("_below",)

    def __init__(self, below: bool) -> None:
        self._below = below

    def __lt__(self, other: object) -> bool:
        return self._below

    def __gt__(self, other: object) -> bool:
        return not self._below

    # tuple rich comparison applies <=/>= (not </==) to the first
    # differing element, so sentinels need the non-strict forms too
    def __le__(self, other: object) -> bool:
        return self._below

    def __ge__(self, other: object) -> bool:
        return not self._below

    def __repr__(self) -> str:
        return "_MIN" if self._below else "_MAX"


_MIN = _Extreme(True)
_MAX = _Extreme(False)

#: Public sentinels for *key components*: callers building partial-key
#: bounds over multi-column ordered indexes pad the missing trailing
#: columns with these, e.g. ``high=("T/a", MAX_KEY)`` for "every entry
#: whose first column is T/a".  They compare below/above every real
#: value (including ``None``, via the reflected operators).
MIN_KEY = _MIN
MAX_KEY = _MAX

def _range_start_key(key_range: KeyRange) -> Tuple[int, Any, bool]:
    """Sort key ordering ranges by low bound (open bounds first; for
    equal bounds, inclusive before exclusive) — matches start-position
    order, which the multi-range sweep requires."""
    low, _high, include_low, _include_high = key_range
    if low is None:
        return (0, (), False)
    return (1, low, not include_low)


#: Split threshold: a block holding more than ``2 * _LOAD`` entries is
#: halved.  1024 keeps per-block memmoves small (a few KB of pointers)
#: while the maxima array stays short (n / 1024 blocks).
_LOAD = 1024
_SPLIT = 2 * _LOAD


class OrderedIndex:
    """Sorted index over key tuples supporting range and prefix scans.

    Entries ``(key, rowid)`` are kept in bounded sorted blocks with a
    bisected per-block maxima array, giving sub-linear insert/delete and
    in-order streaming scans.  Semantics match the flat sorted list it
    replaced: duplicates allowed unless ``unique``, lookups/scans yield
    row ids in ``(key, rowid)`` order.

    Lifecycle (see ``docs/ARCHITECTURE.md``):

    * **build** — construct empty, :meth:`insert` row by row;
    * **bulk-build** — :meth:`bulk_build` sorts the full entry set once
      and slices it straight into blocks, O(n log n) with tiny
      constants; the backfill path behind ``Table.create_index``,
      snapshot restore, and WAL replay;
    * **maintain** — :meth:`insert`/:meth:`delete` keep the structure
      consistent under churn;
    * **recover** — after a crash, indexes are *derived* state: they are
      bulk-built from the replayed heap, never logged.
    """

    def __init__(self, name: str, unique: bool = False) -> None:
        self.name = name
        self.unique = unique
        self._blocks: List[List[Entry]] = []
        self._maxes: List[Entry] = []
        self._len = 0
        self._key_count_cache: Optional[Tuple[int, int]] = None

    @classmethod
    def bulk_build(
        cls,
        name: str,
        entries: Iterable[Entry],
        unique: bool = False,
        presorted: bool = False,
    ) -> "OrderedIndex":
        """Build an index over ``entries`` in one O(n log n) pass.

        Sort-then-chunk: the ``(key, rowid)`` pairs are sorted once
        (Timsort, C speed — ``presorted=True`` skips even that, for
        callers merging already-sorted runs) and sliced into maximally
        loaded blocks, instead of paying a bisect + ``insort`` memmove
        per entry.  The result is observationally identical to inserting
        the entries one at a time (the hypothesis property in
        ``tests/test_index_properties.py`` holds the two paths equal
        under every scan shape); only the internal block boundaries may
        differ.  Duplicate keys raise
        :class:`~repro.storage.errors.DuplicateKeyError` when ``unique``.
        """
        ordered = list(entries)
        if not presorted:
            # two stable passes (rowid, then key) yield exact (key, rowid)
            # order while comparing ints and bare key tuples instead of
            # nested (key, rowid) pairs — measurably cheaper than one
            # full-entry sort (see the bulk_index_build microbenchmark)
            try:
                ordered.sort(key=_ENTRY_ROWID)
            except TypeError:
                # mixed-type rowids under distinct keys: only the full
                # entry sort (which compares rowids lazily) can order them
                ordered.sort()
            else:
                ordered.sort(key=_ENTRY_KEY)
        index = cls(name, unique=unique)
        if unique:
            for position in range(1, len(ordered)):
                if ordered[position - 1][0] == ordered[position][0]:
                    raise DuplicateKeyError(
                        f"duplicate key {ordered[position][0]!r} in unique "
                        f"index {name!r}"
                    )
        # maximally loaded blocks: splits only begin after _LOAD further
        # inserts land in one block, so a freshly built index is compact
        index._blocks = [
            ordered[start : start + _LOAD] for start in range(0, len(ordered), _LOAD)
        ]
        index._maxes = [block[-1] for block in index._blocks]
        index._len = len(ordered)
        return index

    # ------------------------------------------------------------------
    # Position helpers
    # ------------------------------------------------------------------
    def _find_left(self, probe: Entry) -> Tuple[int, int]:
        """First (block, slot) whose entry is ``>= probe``."""
        block_pos = bisect_left(self._maxes, probe)
        if block_pos == len(self._blocks):
            return block_pos, 0
        return block_pos, bisect_left(self._blocks[block_pos], probe)

    def _find_right(self, probe: Entry) -> Tuple[int, int]:
        """First (block, slot) whose entry is ``> probe``."""
        block_pos = bisect_right(self._maxes, probe)
        if block_pos == len(self._blocks):
            return block_pos, 0
        return block_pos, bisect_right(self._blocks[block_pos], probe)

    def _iter_from(self, block_pos: int, slot: int) -> Iterator[Entry]:
        blocks = self._blocks
        if block_pos >= len(blocks):
            return
        # no block slicing: early-terminating consumers (prefix scans)
        # must not pay for entries they never look at
        block = blocks[block_pos]
        for position in range(slot, len(block)):
            yield block[position]
        for pos in range(block_pos + 1, len(blocks)):
            yield from blocks[pos]

    def _iter_back(self, block_pos: int, slot: int) -> Iterator[Entry]:
        """Entries strictly before position ``(block_pos, slot)``, in
        descending order (the mirror of :meth:`_iter_from`)."""
        blocks = self._blocks
        if not blocks:
            return
        if block_pos >= len(blocks):
            block_pos = len(blocks) - 1
            slot = len(blocks[block_pos])
        block = blocks[block_pos]
        for position in range(min(slot, len(block)) - 1, -1, -1):
            yield block[position]
        for pos in range(block_pos - 1, -1, -1):
            block = blocks[pos]
            for position in range(len(block) - 1, -1, -1):
                yield block[position]

    def _entry_at(self, block_pos: int, slot: int) -> Optional[Entry]:
        if block_pos >= len(self._blocks):
            return None
        return self._blocks[block_pos][slot]

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def insert(self, key: Key, rowid: int) -> None:
        entry = (key, rowid)
        if self.unique:
            at = self._entry_at(*self._find_left((key, _MIN)))
            if at is not None and at[0] == key:
                raise DuplicateKeyError(
                    f"duplicate key {key!r} in unique index {self.name!r}"
                )
        blocks = self._blocks
        if not blocks:
            blocks.append([entry])
            self._maxes.append(entry)
            self._len = 1
            return
        maxes = self._maxes
        block_pos = bisect_left(maxes, entry)
        if block_pos == len(blocks):
            # beyond every max: append to the last block (the common case
            # for monotonically growing keys, O(1) amortized)
            block_pos -= 1
            block = blocks[block_pos]
            block.append(entry)
            maxes[block_pos] = entry
        else:
            block = blocks[block_pos]
            insort(block, entry)
            if block[-1] is entry:
                maxes[block_pos] = entry
        self._len += 1
        if len(block) > _SPLIT:
            half = _LOAD
            tail = block[half:]
            del block[half:]
            blocks.insert(block_pos + 1, tail)
            maxes[block_pos] = block[-1]
            maxes.insert(block_pos + 1, tail[-1])

    def delete(self, key: Key, rowid: int) -> None:
        entry = (key, rowid)
        block_pos = bisect_left(self._maxes, entry)
        if block_pos == len(self._blocks):
            return
        block = self._blocks[block_pos]
        slot = bisect_left(block, entry)
        if slot == len(block) or block[slot] != entry:
            return
        block.pop(slot)
        self._len -= 1
        if not block:
            del self._blocks[block_pos]
            del self._maxes[block_pos]
        else:
            self._maxes[block_pos] = block[-1]

    def clear(self) -> None:
        self._blocks.clear()
        self._maxes.clear()
        self._len = 0
        self._key_count_cache = None

    # ------------------------------------------------------------------
    # Lookups
    # ------------------------------------------------------------------
    def lookup(self, key: Key) -> Set[int]:
        """The set of row ids indexed under exactly ``key``."""
        return set(self.lookup_iter(key))

    def lookup_iter(self, key: Key) -> Iterator[int]:
        """Row ids for ``key`` in ascending row-id order."""
        for entry_key, rowid in self._iter_from(*self._find_left((key, _MIN))):
            if entry_key != key:
                break
            yield rowid

    def contains(self, key: Key) -> bool:
        """Whether any entry is indexed under exactly ``key`` (one
        bisection; the uniqueness probe of the bulk-insert path)."""
        at = self._entry_at(*self._find_left((key, _MIN)))
        return at is not None and at[0] == key

    def range(
        self,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
        include_low: bool = True,
        include_high: bool = True,
        reverse: bool = False,
    ) -> Iterator[int]:
        """Yield row ids with ``low <= key <= high`` (bounds optional).

        ``reverse=True`` streams the same entries in descending key
        order — the access path behind ``ORDER BY k DESC`` without a
        sort.
        """
        if reverse:
            yield from self._range_back(low, high, include_low, include_high)
            return
        if low is None:
            start = (0, 0)
        elif include_low:
            start = self._find_left((low, _MIN))
        else:
            start = self._find_right((low, _MAX))
        for key, rowid in self._iter_from(*start):
            if high is not None:
                if include_high:
                    if key > high:
                        break
                elif key >= high:
                    break
            yield rowid

    def _range_back(
        self,
        low: Optional[Key],
        high: Optional[Key],
        include_low: bool,
        include_high: bool,
    ) -> Iterator[int]:
        if high is None:
            start = (len(self._blocks), 0)
        elif include_high:
            start = self._find_right((high, _MAX))
        else:
            start = self._find_left((high, _MIN))
        for key, rowid in self._iter_back(*start):
            if low is not None:
                if include_low:
                    if key < low:
                        break
                elif key <= low:
                    break
            yield rowid

    def multi_range(
        self,
        ranges: Iterable[KeyRange],
        reverse: bool = False,
        presorted: bool = False,
    ) -> Iterator[int]:
        """Row ids in the *union* of several key ranges, in one pass.

        Each range is a ``(low, high, include_low, include_high)`` tuple
        with :meth:`range` semantics.  The union is sorted and
        de-duplicated: entries stream in global ``(key, rowid)`` order
        (descending with ``reverse``) and each appears exactly once even
        when ranges overlap or repeat.  This is the access path behind
        the planner's ``IndexMultiRangeScan`` (``IN`` lists,
        OR-of-ranges) and the provenance store's batched location
        probes.

        The pass is a monotone sweep: ranges are sorted by their low
        bound, and a cursor marks the first entry not yet emitted.
        Each range's start is bisected *from the cursor onward* — never
        from the front of the index — so N probes cost one pass with N
        narrowing bisections instead of N full scan setups.  A range
        starting inside the swept region is clamped to the cursor:
        everything before it was already emitted by an earlier,
        overlapping range (each range emits a contiguous run, so the
        swept region has no holes).

        ``presorted=True`` promises the ranges are already in
        :func:`_range_start_key` order (ascending low bound, inclusive
        before exclusive on ties) and skips the sort — the batched
        provenance probes build their ranges from sorted location text,
        so the whole pass runs sort-free.  Ignored with ``reverse``.
        """
        if reverse:
            yield from self._multi_range_back(ranges)
            return
        ordered = list(ranges)
        if not presorted:
            # mutually incomparable low bounds raise TypeError here, the
            # same way a single foreign-family bound raises inside
            # :meth:`range` — the planner's _bound_safe guard keeps such
            # probes out of index plans entirely
            ordered.sort(key=_range_start_key)
        blocks = self._blocks
        maxes = self._maxes
        block_count = len(blocks)
        resume_block = resume_slot = 0
        for low, high, include_low, include_high in ordered:
            if resume_block >= block_count:
                break  # swept past the end: every later range is empty
            if low is None:
                block_pos, slot = resume_block, resume_slot
            else:
                # cursor fast path: when the sweep cursor already sits
                # at/past this range's start — adjacent or overlapping
                # probes, e.g. an ancestor chain's consecutive index
                # entries — the clamp needs one comparison, no bisect
                cursor = blocks[resume_block][resume_slot]
                if include_low:
                    probe = (low, _MIN)
                    if cursor >= probe:
                        block_pos, slot = resume_block, resume_slot
                    else:
                        # bisecting with lo= the cursor both narrows the
                        # search and clamps starts inside the swept region
                        block_pos = bisect_left(maxes, probe, resume_block)
                        if block_pos < block_count:
                            lo = resume_slot if block_pos == resume_block else 0
                            slot = bisect_left(blocks[block_pos], probe, lo)
                        else:
                            slot = 0
                else:
                    probe = (low, _MAX)
                    if cursor > probe:
                        block_pos, slot = resume_block, resume_slot
                    else:
                        block_pos = bisect_right(maxes, probe, resume_block)
                        if block_pos < block_count:
                            lo = resume_slot if block_pos == resume_block else 0
                            slot = bisect_right(blocks[block_pos], probe, lo)
                        else:
                            slot = 0
            stopped = False
            while block_pos < block_count and not stopped:
                block = blocks[block_pos]
                block_len = len(block)
                while slot < block_len:
                    key, rowid = block[slot]
                    if high is not None and (
                        key > high if include_high else key >= high
                    ):
                        stopped = True
                        break
                    yield rowid
                    slot += 1
                if not stopped:
                    block_pos += 1
                    slot = 0
            if stopped:
                resume_block, resume_slot = block_pos, slot
            else:
                resume_block, resume_slot = block_count, 0

    def _multi_range_back(self, ranges: Iterable[KeyRange]) -> Iterator[int]:
        """Descending mirror of :meth:`multi_range`: positions are
        exclusive upper bounds (as in :meth:`_iter_back`) and the sweep
        cursor moves downward."""
        blocks = self._blocks
        if not blocks:
            return
        starts: List[Tuple[Tuple[int, int], Optional[Key], bool]] = []
        for low, high, include_low, include_high in ranges:
            if high is None:
                position = (len(blocks), 0)
            elif include_high:
                position = self._find_right((high, _MAX))
            else:
                position = self._find_left((high, _MIN))
            starts.append((position, low, include_low))
        starts.sort(key=_ENTRY_KEY, reverse=True)
        resume = (len(blocks), 0)
        for position, low, include_low in starts:
            block_pos, slot = min(position, resume)
            while True:
                if slot == 0:
                    block_pos -= 1
                    if block_pos < 0:
                        resume = (0, 0)
                        break
                    slot = len(blocks[block_pos])
                slot -= 1
                key, rowid = blocks[block_pos][slot]
                if low is not None and (key < low if include_low else key <= low):
                    resume = (block_pos, slot + 1)
                    break
                yield rowid

    def key_count(self) -> int:
        """Estimated number of distinct keys.

        Exact distinct counts are not maintained — that would put an
        extra bisection on the insert hot path — so the distinct ratio
        of a bounded sample (the first and last blocks, up to 256
        entries each) is extrapolated over the entry count.  Entries
        are sorted, so duplicates are adjacent and a contiguous sample
        estimates the local duplication factor well.  Unique indexes
        answer exactly.  The estimate is cached until the entry count
        changes, so repeated planning over a read-mostly index samples
        once.  This is a planner statistic: it only has to *rank*
        access-path candidates, not be right.
        """
        if self.unique or self._len == 0:
            return self._len
        cached = self._key_count_cache
        if cached is not None and cached[0] == self._len:
            return cached[1]
        sample: List[Entry] = self._blocks[0][:256]
        if len(self._blocks) > 1:
            sample = sample + self._blocks[-1][-256:]
        estimate = max(1, round(self._len * len({key for key, _rowid in sample}) / len(sample)))
        self._key_count_cache = (self._len, estimate)
        return estimate

    def sample_keys(self, limit: int = 512) -> List[Any]:
        """Up to ``limit`` *leading* key components, evenly sampled
        across the index, in sorted order.

        The cheap sampling source behind per-column equi-depth
        histograms (``Table.column_histogram``): entries are already
        sorted by key, so an even stride over the blocks yields a
        sorted quantile sample of the first key column without
        touching the heap or re-sorting anything.  A statistic, not a
        snapshot — it only has to approximate the distribution.
        """
        if self._len == 0 or limit <= 0:
            return []
        step = max(1, -(-self._len // limit))  # ceil: never exceed ``limit``
        sample: List[Any] = []
        position = 0
        next_pick = 0
        for block in self._blocks:
            block_len = len(block)
            while next_pick < position + block_len:
                sample.append(block[next_pick - position][0][0])
                next_pick += step
            position += block_len
        return sample

    def prefix_scan(self, prefix: str) -> Iterator[int]:
        """Row ids whose *first* key component is a string with ``prefix``.

        This implements the access path for ``loc LIKE 'T/a/%'``.
        Iterates blocks directly (one generator frame) — this is the
        hottest read path in the provenance workload.
        """
        blocks = self._blocks
        block_pos, slot = self._find_left(((prefix,), _MIN))
        for pos in range(block_pos, len(blocks)):
            block = blocks[pos]
            for position in range(slot, len(block)):
                key, rowid = block[position]
                first = key[0]
                if not isinstance(first, str) or not first.startswith(prefix):
                    return
                yield rowid
            slot = 0

    def min_key(self) -> Optional[Key]:
        return self._blocks[0][0][0] if self._blocks else None

    def max_key(self) -> Optional[Key]:
        return self._blocks[-1][-1][0] if self._blocks else None

    def items(self) -> Iterator[Entry]:
        """All ``(key, rowid)`` entries in sorted order."""
        return self._iter_from(0, 0)

    def __len__(self) -> int:
        return self._len
