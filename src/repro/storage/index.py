"""In-memory secondary indexes: hash (equality) and ordered (range/prefix).

The provenance workload needs two access paths:

* equality on ``tid`` (all changes in a transaction) — hash index;
* prefix on ``loc`` (all records under a subtree, the ``Mod`` query and
  hierarchical inference) — ordered index with prefix range scans.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional, Set, Tuple

from .errors import DuplicateKeyError

__all__ = ["HashIndex", "OrderedIndex"]

Key = Tuple[Any, ...]


class HashIndex:
    """Equality index mapping key tuples to sets of row ids."""

    def __init__(self, name: str, unique: bool = False) -> None:
        self.name = name
        self.unique = unique
        self._buckets: Dict[Key, Set[int]] = {}

    def insert(self, key: Key, rowid: int) -> None:
        bucket = self._buckets.setdefault(key, set())
        if self.unique and bucket:
            raise DuplicateKeyError(f"duplicate key {key!r} in unique index {self.name!r}")
        bucket.add(rowid)

    def delete(self, key: Key, rowid: int) -> None:
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(rowid)
            if not bucket:
                del self._buckets[key]

    def lookup(self, key: Key) -> Set[int]:
        return set(self._buckets.get(key, ()))

    def contains(self, key: Key) -> bool:
        return key in self._buckets

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())

    def clear(self) -> None:
        self._buckets.clear()


class _NegInf:
    """Sorts before every other value (for open-ended range scans)."""

    def __lt__(self, other: object) -> bool:
        return True

    def __gt__(self, other: object) -> bool:
        return False


class OrderedIndex:
    """Sorted index over key tuples supporting range and prefix scans.

    Implemented as a sorted list of ``(key, rowid)`` pairs maintained with
    :mod:`bisect`.  Insertion is O(n) in the worst case, which is perfectly
    adequate at the paper's scale (tens of thousands of provenance rows)
    and keeps the implementation transparent.
    """

    def __init__(self, name: str, unique: bool = False) -> None:
        self.name = name
        self.unique = unique
        self._entries: List[Tuple[Key, int]] = []

    def insert(self, key: Key, rowid: int) -> None:
        entry = (key, rowid)
        position = bisect.bisect_left(self._entries, entry)
        if self.unique:
            if position < len(self._entries) and self._entries[position][0] == key:
                raise DuplicateKeyError(
                    f"duplicate key {key!r} in unique index {self.name!r}"
                )
            if position > 0 and self._entries[position - 1][0] == key:
                raise DuplicateKeyError(
                    f"duplicate key {key!r} in unique index {self.name!r}"
                )
        self._entries.insert(position, entry)

    def delete(self, key: Key, rowid: int) -> None:
        entry = (key, rowid)
        position = bisect.bisect_left(self._entries, entry)
        if position < len(self._entries) and self._entries[position] == entry:
            self._entries.pop(position)

    def lookup(self, key: Key) -> Set[int]:
        result: Set[int] = set()
        position = bisect.bisect_left(self._entries, (key, -1))
        while position < len(self._entries) and self._entries[position][0] == key:
            result.add(self._entries[position][1])
            position += 1
        return result

    def range(
        self,
        low: Optional[Key] = None,
        high: Optional[Key] = None,
        include_low: bool = True,
        include_high: bool = True,
    ) -> Iterator[int]:
        """Yield row ids with ``low <= key <= high`` (bounds optional)."""
        if low is None:
            start = 0
        elif include_low:
            start = bisect.bisect_left(self._entries, (low, -1))
        else:
            start = bisect.bisect_right(self._entries, (low, float("inf")))
        for index in range(start, len(self._entries)):
            key, rowid = self._entries[index]
            if high is not None:
                if include_high:
                    if key > high:
                        break
                elif key >= high:
                    break
            yield rowid

    def prefix_scan(self, prefix: str) -> Iterator[int]:
        """Row ids whose *first* key component is a string with ``prefix``.

        This implements the access path for ``loc LIKE 'T/a/%'``.
        """
        start = bisect.bisect_left(self._entries, ((prefix,), -1))
        for index in range(start, len(self._entries)):
            key, rowid = self._entries[index]
            first = key[0]
            if not isinstance(first, str) or not first.startswith(prefix):
                break
            yield rowid

    def min_key(self) -> Optional[Key]:
        return self._entries[0][0] if self._entries else None

    def max_key(self) -> Optional[Key]:
        return self._entries[-1][0] if self._entries else None

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        self._entries.clear()
