"""Snapshot-isolation MVCC over the embedded :class:`~repro.storage.db.Database`.

The embedded engine is single-writer: one undo log, one active
transaction.  This module layers multi-version concurrency on top of it
without rewriting the heap — versions are not chained inside
:class:`~repro.storage.table.Table`; instead the *commit log* is the
version store:

* Every MVCC commit replays its buffered writes through the base
  ``Database`` (one short db-level transaction, so the WAL and undo
  machinery keep working unchanged) and captures the undo entries it
  produced as a **patch list** — ``("insert", table, rowid, row)`` /
  ``("delete", table, rowid, row)`` — stamped with a monotonically
  increasing commit timestamp.
* A **snapshot** is just a timestamp ``S``.  Reading table ``T`` at
  ``S`` takes the live heap and reverse-applies the patches of every
  commit with ``ts > S`` (newest first: un-insert by popping the rowid,
  un-delete by restoring the row), materializing an immutable shadow
  :class:`Table` that preserves row ids.  When no commit after ``S``
  touched ``T`` the live table itself is the snapshot — the common,
  zero-copy fast path.
* Writers never touch shared state before commit: the first write to a
  table clones the snapshot into a private **workspace** table
  (read-your-own-writes falls out for free, constraint checks run
  against snapshot + own writes), and a logical op log records what to
  replay at commit.
* **First-committer-wins**: at commit, the rowids this transaction
  wrote (of rows that existed at its snapshot) are checked against the
  patch rowids of every commit that landed after its snapshot; any
  intersection aborts the later committer with
  :class:`~repro.storage.errors.WriteConflictError`.  Insert/insert
  primary-key races have no shared rowid — those surface as
  ``DuplicateKeyError`` during replay and are converted to the same
  conflict error.  Write skew (disjoint write sets, overlapping read
  sets) is *allowed* — that is snapshot isolation, not serializability,
  and the anomaly suite pins it down as documented behavior.

Plan caching stays valid per snapshot because the cache's epoch gains
two dimensions here: a ``("mvcc", S)`` component and, per table, a
token unique to each materialized shadow (``0`` for the live table), so
a plan bound to one snapshot's shadow can never be served against
another's — even when their ``_version`` counters coincide.

Concurrency model: cooperative, not preemptive.  Transactions interleave
at operation granularity (an asyncio server switching connections, a
test scheduler alternating clients); each individual operation runs to
completion on one thread.  That is exactly the granularity at which the
paper's round-trip economics are measured.

DDL is not versioned: ``create_table`` / ``create_index`` / ``drop``
apply to the live catalog immediately and move ``_ddl_epoch``, which
every plan epoch includes.  Snapshots see new indexes only on shadow
rebuild and never retroactively — acceptable for a store whose schema
changes are rare administrative events.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from .db import Database
from .errors import (
    DuplicateKeyError,
    TransactionError,
    WriteConflictError,
)
from .expr import Expr
from .plan import PlanNode
from .query import Query, plan_mutation, plan_query
from .table import Table

__all__ = ["MVCCManager", "MVCCTransaction", "CommitRecord"]

#: patch tuple: (kind, table, rowid, row) with kind "insert" | "delete",
#: exactly the shape of the database's undo entries
Patch = Tuple[str, str, int, Tuple[Any, ...]]


class CommitRecord:
    """One committed transaction in the version store: its timestamp and
    the forward patches it applied (undo-entry shaped)."""

    __slots__ = ("ts", "patches", "tables")

    def __init__(self, ts: int, patches: List[Patch]) -> None:
        self.ts = ts
        self.patches = patches
        self.tables = frozenset(patch[1] for patch in patches)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CommitRecord(ts={self.ts}, patches={len(self.patches)})"


class MVCCManager:
    """Snapshot-isolation coordinator for one :class:`Database`.

    Owns the commit timestamp, the commit log (the version store), the
    snapshot-view cache, and the active-transaction registry that
    bounds how much history must be retained.
    """

    def __init__(self, db: Database, *, faults=None) -> None:
        self.db = db
        #: fault-injection plan for the commit protocol's crash points
        #: (``mvcc.commit.begin`` / ``mvcc.commit.mid`` /
        #: ``mvcc.commit.apply``); defaults to the database's own plan
        self.faults = faults if faults is not None else db.faults
        self._commit_ts = 0
        self._commits: List[CommitRecord] = []  # ascending ts
        #: last commit timestamp that touched each table — the fast-path
        #: test "is the live table already the snapshot?"
        self._table_commit_ts: Dict[str, int] = {}
        #: materialized shadows keyed (table, snapshot_ts); immutable
        #: once built (history ≤ S never changes)
        self._views: Dict[Tuple[str, int], Table] = {}
        #: unique token per materialized shadow/workspace, folded into
        #: plan-cache epochs so two shadows can never alias
        self._view_seq = 0
        self._next_txn_id = 1
        self._active: Dict[int, "MVCCTransaction"] = {}
        self.counters: Dict[str, int] = {
            "begun": 0,
            "committed": 0,
            "aborted": 0,
            "conflicts": 0,
            "views_built": 0,
            "fast_path_reads": 0,
        }

    # ------------------------------------------------------------------
    # Transaction lifecycle
    # ------------------------------------------------------------------
    def begin(self) -> "MVCCTransaction":
        """Open a transaction whose reads all see the database as of now."""
        txn = MVCCTransaction(self, self._next_txn_id, self._commit_ts)
        self._next_txn_id += 1
        self._active[txn.txn_id] = txn
        self.counters["begun"] += 1
        return txn

    @property
    def commit_ts(self) -> int:
        """The timestamp of the latest commit (0 before any)."""
        return self._commit_ts

    @property
    def active_count(self) -> int:
        return len(self._active)

    @property
    def retained_commits(self) -> int:
        """Commit records currently held for live snapshots (GC gauge)."""
        return len(self._commits)

    def run(self, fn, *, retries: int = 0):
        """Run ``fn(txn)`` in a fresh transaction, committing on success
        and rolling back on any exception; ``retries`` extra attempts are
        made when the commit loses a first-committer-wins race."""
        attempt = 0
        while True:
            txn = self.begin()
            try:
                result = fn(txn)
                txn.commit()
                return result
            except WriteConflictError:
                if txn.status == "active":  # pragma: no cover - defensive
                    txn.rollback()
                if attempt >= retries:
                    raise
                attempt += 1
            except BaseException:
                if txn.status == "active":
                    txn.rollback()
                raise

    # ------------------------------------------------------------------
    # Snapshot reads
    # ------------------------------------------------------------------
    def read_view(self, name: str, snapshot_ts: int) -> Table:
        """The state of table ``name`` as of ``snapshot_ts``.

        Fast path: when no commit newer than the snapshot touched the
        table, the live table *is* the snapshot.  Otherwise reconstruct
        (and cache) a shadow by reverse-applying newer commits' patches
        over a copy of the live heap.
        """
        base = self.db.table(name)
        if self._table_commit_ts.get(name, 0) <= snapshot_ts:
            self.counters["fast_path_reads"] += 1
            return base
        cached = self._views.get((name, snapshot_ts))
        if cached is not None:
            return cached
        rows = dict(base._rows)
        byte_size = base._byte_size
        row_bytes = base.schema.row_bytes
        for commit in reversed(self._commits):
            if commit.ts <= snapshot_ts:
                break
            if name not in commit.tables:
                continue
            for kind, tname, rowid, row in reversed(commit.patches):
                if tname != name:
                    continue
                if kind == "insert":  # un-insert
                    popped = rows.pop(rowid, None)
                    if popped is not None:
                        byte_size -= row_bytes(popped)
                else:  # un-delete
                    rows[rowid] = row
                    byte_size += row_bytes(row)
        view = Table._from_snapshot(
            base.schema,
            rows,
            list(base.index_specs.values()),
            byte_size=byte_size,
        )
        self._stamp(view)
        self._views[(name, snapshot_ts)] = view
        self.counters["views_built"] += 1
        return view

    def _stamp(self, table: Table) -> None:
        self._view_seq += 1
        table._mvcc_view_seq = self._view_seq

    def _plan_epoch(
        self, snapshot_ts: int, tables: Dict[str, Table], names: Sequence[str]
    ) -> Tuple[Any, ...]:
        """Plan-cache epoch for a snapshot read: the catalog DDL counter,
        the snapshot timestamp, and per table its shadow token (0 = live
        table), mutation counter, and index fingerprint.  The token makes
        epochs of distinct materializations unequal even when every other
        component coincides."""
        parts: List[Tuple[Any, ...]] = []
        for name in sorted(set(names)):
            table = tables[name]
            fingerprint = tuple(sorted(table.index_specs.items()))
            token = getattr(table, "_mvcc_view_seq", 0)
            parts.append((name, token, table._version, fingerprint))
        return (self.db._ddl_epoch, ("mvcc", snapshot_ts), tuple(parts))

    # ------------------------------------------------------------------
    # Commit protocol
    # ------------------------------------------------------------------
    def _detect_conflicts(self, txn: "MVCCTransaction") -> None:
        """First-committer-wins: abort ``txn`` if any commit newer than
        its snapshot wrote a row id ``txn`` also wrote."""
        if not txn._writes:
            return
        for commit in reversed(self._commits):
            if commit.ts <= txn.snapshot_ts:
                break
            for kind, tname, rowid, _row in commit.patches:
                written = txn._writes.get(tname)
                if written is not None and rowid in written:
                    self.counters["conflicts"] += 1
                    raise WriteConflictError(
                        f"write-write conflict on {tname!r} rowid {rowid}: "
                        f"committed at ts {commit.ts} after snapshot "
                        f"{txn.snapshot_ts}",
                        table=tname,
                        rowids=(rowid,),
                    )

    def _commit(self, txn: "MVCCTransaction") -> int:
        faults = self.faults
        if not txn._ops:
            # read-only: nothing to install, no timestamp consumed
            self._finish(txn, "committed")
            return txn.snapshot_ts
        try:
            self._detect_conflicts(txn)
        except WriteConflictError:
            self._finish(txn, "aborted")
            raise
        db = self.db
        db.begin()
        if faults is not None:
            faults.reached("mvcc.commit.begin")
        remap: Dict[Tuple[str, int], int] = {}
        try:
            first = True
            for op in txn._ops:
                if not first and faults is not None:
                    faults.reached("mvcc.commit.mid")
                first = False
                kind = op[0]
                if kind == "insert":
                    _kind, name, ws_rowid, row = op
                    try:
                        remap[(name, ws_rowid)] = db.insert(name, row)
                    except DuplicateKeyError as exc:
                        self.counters["conflicts"] += 1
                        raise WriteConflictError(
                            f"insert race on {name!r}: {exc}", table=name
                        ) from exc
                elif kind == "delete":
                    _kind, name, rowid = op
                    db.delete_rowid(name, remap.get((name, rowid), rowid))
                else:  # update
                    _kind, name, rowid, changes = op
                    try:
                        db.update_rowid(
                            name, remap.get((name, rowid), rowid), changes
                        )
                    except DuplicateKeyError as exc:
                        self.counters["conflicts"] += 1
                        raise WriteConflictError(
                            f"update race on {name!r}: {exc}", table=name
                        ) from exc
            if faults is not None:
                faults.reached("mvcc.commit.apply")
            patches: List[Patch] = [
                (entry.kind, entry.table, entry.rowid, entry.row)
                for entry in db._undo
            ]
            db.commit()
        except WriteConflictError:
            db.rollback()
            self._finish(txn, "aborted")
            raise
        except Exception:
            if db.in_transaction:
                db.rollback()
            self._finish(txn, "aborted")
            raise
        self._commit_ts += 1
        ts = self._commit_ts
        record = CommitRecord(ts, patches)
        self._commits.append(record)
        for tname in record.tables:
            self._table_commit_ts[tname] = ts
        self._finish(txn, "committed")
        return ts

    def _rollback(self, txn: "MVCCTransaction") -> None:
        self._finish(txn, "aborted")

    def _finish(self, txn: "MVCCTransaction", status: str) -> None:
        txn.status = status
        self.counters["committed" if status == "committed" else "aborted"] += 1
        self._active.pop(txn.txn_id, None)
        self._prune()

    def _prune(self) -> None:
        """Drop history no live snapshot can reach: commit records at or
        below the oldest active snapshot, and cached shadows for
        snapshot timestamps no active transaction holds."""
        if self._active:
            horizon = min(t.snapshot_ts for t in self._active.values())
            live = {t.snapshot_ts for t in self._active.values()}
        else:
            horizon = self._commit_ts
            live = set()
        if self._commits and self._commits[0].ts <= horizon:
            self._commits = [c for c in self._commits if c.ts > horizon]
        if self._views:
            self._views = {
                key: view for key, view in self._views.items() if key[1] in live
            }


class MVCCTransaction:
    """One snapshot-isolation transaction.

    All reads observe the database as of ``snapshot_ts``; writes buffer
    in private workspace tables and an op log until :meth:`commit`
    replays them through the base engine (or :meth:`rollback` discards
    them).  Not thread-safe — interleave at operation granularity.
    """

    def __init__(self, manager: MVCCManager, txn_id: int, snapshot_ts: int) -> None:
        self.manager = manager
        self.txn_id = txn_id
        self.snapshot_ts = snapshot_ts
        self.status = "active"  # -> "committed" | "aborted"
        #: logical replay log: ("insert", table, ws_rowid, row) |
        #: ("delete", table, rowid) | ("update", table, rowid, changes)
        self._ops: List[Tuple[Any, ...]] = []
        #: rowids of *pre-existing* rows this txn wrote, per table — the
        #: first-committer-wins conflict footprint
        self._writes: Dict[str, Set[int]] = {}
        #: copy-on-first-write shadow per written table
        self._workspace: Dict[str, Table] = {}
        #: rowids created by this txn inside each workspace (they remap
        #: to fresh base rowids at replay and are *not* conflict victims)
        self._own_inserts: Dict[str, Set[int]] = {}

    # ------------------------------------------------------------------
    # Plumbing
    # ------------------------------------------------------------------
    def _check_active(self) -> None:
        if self.status != "active":
            raise TransactionError(
                f"transaction {self.txn_id} is {self.status}, not active"
            )

    def _view(self, name: str) -> Table:
        """The table this transaction reads: its workspace when it has
        written the table, else the shared snapshot view."""
        ws = self._workspace.get(name)
        if ws is not None:
            return ws
        return self.manager.read_view(name, self.snapshot_ts)

    def _workspace_for(self, name: str) -> Table:
        ws = self._workspace.get(name)
        if ws is not None:
            return ws
        src = self.manager.read_view(name, self.snapshot_ts)
        ws = Table._from_snapshot(
            src.schema,
            dict(src._rows),
            list(src.index_specs.values()),
            byte_size=src._byte_size,
        )
        self.manager._stamp(ws)
        self._workspace[name] = ws
        self._own_inserts[name] = set()
        return ws

    def _mark_write(self, name: str, rowid: int) -> None:
        if rowid in self._own_inserts.get(name, ()):
            return  # own insert: invisible to other snapshots, no conflict
        self._writes.setdefault(name, set()).add(rowid)

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def tables_view(self) -> Dict[str, Table]:
        """Every catalog table as this transaction sees it."""
        return {name: self._view(name) for name in self.manager.db.tables}

    def get(self, table_name: str, key: Sequence[Any]) -> Optional[Dict[str, Any]]:
        """Primary-key point read against the snapshot (plus own writes);
        returns the row as a dict, or ``None``."""
        self._check_active()
        view = self._view(table_name)
        found = view.lookup_pk(tuple(key))
        if found is None:
            return None
        return view.schema.row_as_dict(found[1])

    def scan(self, table_name: str) -> List[Dict[str, Any]]:
        """Full-table read against the snapshot (plus own writes)."""
        self._check_active()
        view = self._view(table_name)
        as_dict = view.schema.row_as_dict
        return [as_dict(row) for _rowid, row in view.scan()]

    def plan(self, query: Query) -> PlanNode:
        """Physical plan for ``query`` over this snapshot, through the
        database's plan cache with the MVCC-extended epoch."""
        self._check_active()
        db = self.manager.db
        names = [query.table.name] + [join.table.name for join in query.joins]
        tables = {name: self._view(name) for name in db.tables}
        if db.plan_cache is None:
            return plan_query(tables, query)
        epoch = self.manager._plan_epoch(self.snapshot_ts, tables, names)
        return db.plan_cache.plan(tables, query, epoch)

    def execute(self, query: Query) -> List[Dict[str, Any]]:
        return list(self.plan(query).execute())

    # ------------------------------------------------------------------
    # Writes (buffered)
    # ------------------------------------------------------------------
    def insert(self, table_name: str, row: "Sequence[Any] | Dict[str, Any]") -> int:
        """Buffer an insert; constraints are checked against the snapshot
        plus this transaction's own writes.  Returns a *workspace* row id
        (replay assigns the durable one)."""
        self._check_active()
        ws = self._workspace_for(table_name)
        rowid = ws.insert(row)
        self._own_inserts[table_name].add(rowid)
        self._ops.append(("insert", table_name, rowid, ws.get(rowid)))
        return rowid

    def insert_many(
        self, table_name: str, rows: Sequence["Sequence[Any] | Dict[str, Any]"]
    ) -> List[int]:
        return [self.insert(table_name, row) for row in rows]

    def delete_where(
        self, table_name: str, predicate: Optional[Expr] = None
    ) -> int:
        """Buffer deletion of every snapshot-visible row matching
        ``predicate``; returns the count."""
        self._check_active()
        ws = self._workspace_for(table_name)
        doomed = self._victims(ws, predicate)
        for rowid in doomed:
            ws.delete_row(rowid)
            self._mark_write(table_name, rowid)
            self._ops.append(("delete", table_name, rowid))
        return len(doomed)

    def update_where(
        self,
        table_name: str,
        changes: Dict[str, Any],
        predicate: Optional[Expr] = None,
    ) -> int:
        """Buffer an update of every snapshot-visible row matching
        ``predicate``; returns the count."""
        self._check_active()
        ws = self._workspace_for(table_name)
        victims = self._victims(ws, predicate)
        for rowid in victims:
            ws.update_row(rowid, changes)
            self._mark_write(table_name, rowid)
            self._ops.append(("update", table_name, rowid, dict(changes)))
        return len(victims)

    @staticmethod
    def _victims(table: Table, predicate: Optional[Expr]) -> List[int]:
        node, residual = plan_mutation(table, predicate)
        if residual is None:
            return [rowid for rowid, _row in node.rows()]
        as_dict = table.schema.row_as_dict
        return [rowid for rowid, row in node.rows() if residual.eval(as_dict(row))]

    # ------------------------------------------------------------------
    # SQL
    # ------------------------------------------------------------------
    def sql(self, text: str) -> List[Dict[str, Any]]:
        """Run one SQL statement inside this transaction.

        DML and SELECT observe the snapshot; DDL is not versioned and is
        rejected here — run it via the database in autocommit instead.
        """
        from .sql import (  # deferred: sql.py imports db.py
            DeleteStmt,
            InsertStmt,
            SelectStmt,
            UpdateStmt,
            parse_statement,
        )

        self._check_active()
        statement = parse_statement(text)
        if isinstance(statement, SelectStmt):
            return self.execute(statement.query)
        if isinstance(statement, InsertStmt):
            count = 0
            for row in statement.rows:
                if statement.columns is not None:
                    self.insert(statement.table, dict(zip(statement.columns, row)))
                else:
                    self.insert(statement.table, row)
                count += 1
            return [{"affected": count}]
        if isinstance(statement, DeleteStmt):
            return [{"affected": self.delete_where(statement.table, statement.where)}]
        if isinstance(statement, UpdateStmt):
            return [
                {
                    "affected": self.update_where(
                        statement.table, statement.changes, statement.where
                    )
                }
            ]
        raise TransactionError(
            f"{type(statement).__name__} is DDL and not snapshot-versioned; "
            "execute it outside a transaction"
        )

    # ------------------------------------------------------------------
    # Outcome
    # ------------------------------------------------------------------
    def commit(self) -> int:
        """Install this transaction's writes; returns its commit
        timestamp (the snapshot timestamp for read-only transactions).

        Raises :class:`WriteConflictError` — after rolling everything
        back — when a first-committer-wins race was lost."""
        self._check_active()
        return self.manager._commit(self)

    def rollback(self) -> None:
        self._check_active()
        self.manager._rollback(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MVCCTransaction(id={self.txn_id}, snapshot={self.snapshot_ts}, "
            f"{self.status}, ops={len(self._ops)})"
        )
