"""Physical query plan operators (iterator model).

Each operator yields *environments* (dicts from column name to value) so
that joins can merge bindings from several tables; qualified output uses
``alias.column`` keys when an alias is given.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from .expr import Col, Expr
from .index import KeyRange
from .table import Table

__all__ = [
    "PlanNode",
    "TableScanNode",
    "SeqScan",
    "IndexEqScan",
    "IndexPrefixScan",
    "IndexRangeScan",
    "IndexMultiRangeScan",
    "FilterNode",
    "ProjectNode",
    "HashJoinNode",
    "NestedLoopJoinNode",
    "SortNode",
    "LimitNode",
    "AggregateNode",
    "DistinctNode",
    "explain",
]

Env = Dict[str, Any]


def _env_from_row(table: Table, row: Tuple[Any, ...], alias: Optional[str]) -> Env:
    names = table.schema.column_names
    env = dict(zip(names, row))
    if alias:
        for name, value in zip(names, row):
            env[f"{alias}.{name}"] = value
    return env


class PlanNode:
    """Base class for physical operators."""

    def execute(self) -> Iterator[Env]:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def children(self) -> Sequence["PlanNode"]:
        return ()


class TableScanNode(PlanNode):
    """Base of every table access path.

    Subclasses implement :meth:`rows` — ``(rowid, row)`` pairs straight
    off the table — and inherit :meth:`execute`.  Keeping the row-id
    stream public lets DML (``Database.delete_where`` /
    ``update_where``) enumerate victims through the same planned access
    paths a SELECT would use instead of a raw heap scan.
    """

    table: Table
    alias: Optional[str]

    def rows(self) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        raise NotImplementedError

    def execute(self) -> Iterator[Env]:
        table, alias = self.table, self.alias
        for _rowid, row in self.rows():
            yield _env_from_row(table, row, alias)


@dataclass
class SeqScan(TableScanNode):
    table: Table
    alias: Optional[str] = None

    def rows(self) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        return self.table.scan()

    def describe(self) -> str:
        return f"SeqScan({self.table.schema.name})"


@dataclass
class IndexEqScan(TableScanNode):
    table: Table
    index_name: str
    key: Tuple[Any, ...]
    alias: Optional[str] = None

    def rows(self) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        return self.table.lookup_index(self.index_name, self.key)

    def describe(self) -> str:
        return f"IndexEqScan({self.table.schema.name}.{self.index_name} = {self.key!r})"


@dataclass
class IndexPrefixScan(TableScanNode):
    table: Table
    index_name: str
    prefix: str
    alias: Optional[str] = None

    def rows(self) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        return self.table.prefix_scan(self.index_name, self.prefix)

    def describe(self) -> str:
        return f"IndexPrefixScan({self.table.schema.name}.{self.index_name} ~ {self.prefix!r}%)"


def _bracketed(
    low: Any, high: Any, include_low: bool, include_high: bool
) -> str:
    low_bracket = "[" if include_low else "("
    high_bracket = "]" if include_high else ")"
    return f"{low_bracket}{low!r}, {high!r}{high_bracket}"


@dataclass
class IndexRangeScan(TableScanNode):
    """Streaming scan of an ordered index restricted to ``[low, high]``.

    Rows arrive in index-key order (descending with ``reverse``), so a
    downstream ORDER BY on the same key needs no sort.  Bounds are
    optional (open-ended) and may each be exclusive, mapping the
    planner-visible ``k >= lo AND k < hi`` shapes onto the blocked
    ordered index's range iterator.
    """

    table: Table
    index_name: str
    low: Optional[Tuple[Any, ...]] = None
    high: Optional[Tuple[Any, ...]] = None
    include_low: bool = True
    include_high: bool = True
    alias: Optional[str] = None
    reverse: bool = False

    def rows(self) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        return self.table.range_scan(
            self.index_name,
            self.low,
            self.high,
            self.include_low,
            self.include_high,
            self.reverse,
        )

    def describe(self) -> str:
        direction = " desc" if self.reverse else ""
        return (
            f"IndexRangeScan({self.table.schema.name}.{self.index_name} in "
            f"{_bracketed(self.low, self.high, self.include_low, self.include_high)}"
            f"{direction})"
        )


@dataclass
class IndexMultiRangeScan(TableScanNode):
    """Sorted, de-duplicated union of several ranges over one ordered
    index — the disjunction access path.

    The planner normalizes ``col IN (...)`` and OR-of-sargable-conjuncts
    into a list of ``(low, high, include_low, include_high)`` key ranges
    over a single index; :meth:`Table.multi_range_scan` streams their
    union in one pass, in global ``(key, rowid)`` order (descending with
    ``reverse``), each row exactly once even when ranges overlap.
    Because the union preserves index-key order, an ORDER BY on the
    index key needs no sort — same as a single range scan.

    ``presorted`` promises ``ranges`` is already in the union sweep's
    canonical order (``repro.storage.index._range_start_key``); the
    planner sorts once at plan time and sets it so each execution skips
    the re-sort.  Hand-built nodes should leave it False.
    """

    table: Table
    index_name: str
    ranges: List[KeyRange] = field(default_factory=list)
    alias: Optional[str] = None
    reverse: bool = False
    presorted: bool = False

    def rows(self) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        return self.table.multi_range_scan(
            self.index_name, self.ranges, self.reverse, self.presorted
        )

    def describe(self) -> str:
        direction = " desc" if self.reverse else ""
        rendered = " ∪ ".join(_bracketed(*key_range) for key_range in self.ranges)
        return (
            f"IndexMultiRangeScan({self.table.schema.name}.{self.index_name} in "
            f"{rendered}{direction})"
        )


@dataclass
class FilterNode(PlanNode):
    child: PlanNode
    predicate: Expr

    def execute(self) -> Iterator[Env]:
        for env in self.child.execute():
            if self.predicate.eval(env):
                yield env

    def describe(self) -> str:
        return f"Filter({self.predicate!r})"

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


@dataclass
class ProjectNode(PlanNode):
    child: PlanNode
    outputs: List[Tuple[str, Expr]]  # (output name, expression)

    def execute(self) -> Iterator[Env]:
        for env in self.child.execute():
            yield {name: expr.eval(env) for name, expr in self.outputs}

    def describe(self) -> str:
        return "Project(" + ", ".join(name for name, _ in self.outputs) + ")"

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


@dataclass
class HashJoinNode(PlanNode):
    """Equi-join: build a hash table on the right input, probe with left."""

    left: PlanNode
    right: PlanNode
    left_key: Expr
    right_key: Expr

    def execute(self) -> Iterator[Env]:
        buckets: Dict[Any, List[Env]] = {}
        for env in self.right.execute():
            buckets.setdefault(self.right_key.eval(env), []).append(env)
        for left_env in self.left.execute():
            key = self.left_key.eval(left_env)
            if key is None:
                continue
            for right_env in buckets.get(key, ()):
                merged = dict(right_env)
                merged.update(left_env)
                yield merged

    def describe(self) -> str:
        return f"HashJoin({self.left_key!r} = {self.right_key!r})"

    def children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)


@dataclass
class NestedLoopJoinNode(PlanNode):
    """General join with an arbitrary predicate (used for non-equi joins)."""

    left: PlanNode
    right: PlanNode
    predicate: Optional[Expr] = None

    def execute(self) -> Iterator[Env]:
        right_rows = list(self.right.execute())
        for left_env in self.left.execute():
            for right_env in right_rows:
                merged = dict(right_env)
                merged.update(left_env)
                if self.predicate is None or self.predicate.eval(merged):
                    yield merged

    def describe(self) -> str:
        return f"NestedLoopJoin({self.predicate!r})"

    def children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)


@dataclass
class SortNode(PlanNode):
    child: PlanNode
    keys: List[Tuple[Expr, bool]]  # (expression, descending)

    def execute(self) -> Iterator[Env]:
        rows = list(self.child.execute())

        # Stable multi-key sort: apply keys right-to-left.
        for expr, descending in reversed(self.keys):
            rows.sort(
                key=lambda env, e=expr: _null_safe_key(e.eval(env)),
                reverse=descending,
            )
        return iter(rows)

    def describe(self) -> str:
        return f"Sort({len(self.keys)} keys)"

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


def _null_safe_key(value: Any) -> Tuple[int, Any]:
    """NULLs sort first; mixed types sort by type name then value."""
    if value is None:
        return (0, "", "")
    return (1, type(value).__name__, value)


def _hashable_key(value: Any) -> Any:
    """A hashable, type-discriminating stand-in for ``value``.

    Built on :func:`_null_safe_key` so NULL is distinct from every real
    value and ``0``/``False``/``0.0`` (equal and hash-equal in Python)
    stay distinct across types.  Unhashable containers are converted
    structurally; anything else falls back to its ``repr``.
    """
    marker, type_name, value = _null_safe_key(value)
    try:
        hash(value)
    except TypeError:
        if isinstance(value, (list, tuple)):
            value = tuple(_hashable_key(part) for part in value)
        elif isinstance(value, (set, frozenset)):
            value = frozenset(_hashable_key(part) for part in value)
        elif isinstance(value, dict):
            value = tuple(
                sorted((repr(k), _hashable_key(v)) for k, v in value.items())
            )
        else:
            value = repr(value)
    return (marker, type_name, value)


@dataclass
class LimitNode(PlanNode):
    child: PlanNode
    limit: Optional[int]
    offset: int = 0

    def execute(self) -> Iterator[Env]:
        produced = 0
        for count, env in enumerate(self.child.execute()):
            if count < self.offset:
                continue
            if self.limit is not None and produced >= self.limit:
                return
            produced += 1
            yield env

    def describe(self) -> str:
        return f"Limit({self.limit}, offset={self.offset})"

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


_AGGREGATES: Dict[str, Callable[[List[Any]], Any]] = {
    "count": lambda values: len(values),
    "sum": lambda values: sum(values) if values else 0,
    "avg": lambda values: (sum(values) / len(values)) if values else None,
    "min": lambda values: min(values) if values else None,
    "max": lambda values: max(values) if values else None,
}


@dataclass
class AggregateNode(PlanNode):
    """Hash aggregation with optional GROUP BY.

    ``aggregates`` maps output names to ``(function, expression)``;
    ``expression`` may be ``None`` for ``count(*)``.
    """

    child: PlanNode
    group_by: List[Tuple[str, Expr]]
    aggregates: List[Tuple[str, str, Optional[Expr]]]

    def execute(self) -> Iterator[Env]:
        groups: Dict[Tuple[Any, ...], List[Env]] = {}
        for env in self.child.execute():
            key = tuple(expr.eval(env) for _name, expr in self.group_by)
            groups.setdefault(key, []).append(env)
        if not self.group_by and not groups:
            groups[()] = []
        for key, rows in groups.items():
            out: Env = {name: part for (name, _expr), part in zip(self.group_by, key)}
            for out_name, function, expr in self.aggregates:
                if function not in _AGGREGATES:
                    raise ValueError(f"unknown aggregate {function!r}")
                if expr is None:
                    values: List[Any] = [1] * len(rows)
                else:
                    values = [v for v in (expr.eval(env) for env in rows) if v is not None]
                out[out_name] = _AGGREGATES[function](values)
            yield out

    def describe(self) -> str:
        names = ", ".join(name for name, _f, _e in self.aggregates)
        return f"Aggregate({names})"

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


@dataclass
class DistinctNode(PlanNode):
    child: PlanNode

    def execute(self) -> Iterator[Env]:
        seen = set()
        for env in self.child.execute():
            key = tuple(
                (name, _hashable_key(env[name])) for name in sorted(env)
            )
            if key not in seen:
                seen.add(key)
                yield env

    def describe(self) -> str:
        return "Distinct"

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


def explain(node: PlanNode, indent: int = 0) -> str:
    """Render a plan tree as indented text (for tests and debugging)."""
    lines = ["  " * indent + node.describe()]
    for child in node.children():
        lines.append(explain(child, indent + 1))
    return "\n".join(lines)
