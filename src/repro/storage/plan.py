"""Physical query plan operators (iterator model).

Each operator yields *environments* (dicts from column name to value) so
that joins can merge bindings from several tables; qualified output uses
``alias.column`` keys when an alias is given.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import islice
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from .errors import AmbiguousColumnError
from .expr import Col, Expr, compile_expr
from .index import MAX_KEY, KeyRange
from .table import Table

__all__ = [
    "PlanNode",
    "TableScanNode",
    "SeqScan",
    "IndexEqScan",
    "IndexPrefixScan",
    "IndexRangeScan",
    "IndexMultiRangeScan",
    "ValuesNode",
    "FilterNode",
    "ProjectNode",
    "HashJoinNode",
    "HashSemiJoinNode",
    "IndexNestedLoopJoin",
    "NestedLoopJoinNode",
    "SortNode",
    "LimitNode",
    "AggregateNode",
    "DistinctNode",
    "explain",
]

Env = Dict[str, Any]

#: rows per block in the chunked Volcano protocol (``PlanNode.chunks``).
#: The same figure as the INLJ's probe batches: large enough to amortize
#: per-block dispatch, small enough that streaming operators above a
#: LIMIT never materialize much past the cutoff.
CHUNK = 256


def _env_from_row(table: Table, row: Tuple[Any, ...], alias: Optional[str]) -> Env:
    names = table.schema.column_names
    env = dict(zip(names, row))
    if alias:
        for name, value in zip(names, row):
            env[f"{alias}.{name}"] = value
    return env


class PlanNode:
    """Base class for physical operators.

    Two execution surfaces: the classic row-at-a-time :meth:`execute`
    iterator, and the chunked protocol :meth:`chunks`, which yields the
    same environments in row blocks of up to ``size``.  The scan →
    filter → project spine overrides :meth:`chunks` natively (one
    dispatch per block, tight list comprehensions per row) and derives
    ``execute`` from it; every other operator gets a batching default,
    so the two surfaces always agree and either one can sit above any
    child.
    """

    def execute(self) -> Iterator[Env]:
        raise NotImplementedError

    def chunks(self, size: int = CHUNK) -> Iterator[List[Env]]:
        """The operator's rows in blocks of up to ``size``."""
        rows = self.execute()
        while True:
            block = list(islice(rows, size))
            if not block:
                return
            yield block

    def describe(self) -> str:
        raise NotImplementedError

    def children(self) -> Sequence["PlanNode"]:
        return ()


class TableScanNode(PlanNode):
    """Base of every table access path.

    Subclasses implement :meth:`rows` — ``(rowid, row)`` pairs straight
    off the table — and inherit :meth:`execute`.  Keeping the row-id
    stream public lets DML (``Database.delete_where`` /
    ``update_where``) enumerate victims through the same planned access
    paths a SELECT would use instead of a raw heap scan.
    """

    table: Table
    alias: Optional[str]

    def rows(self) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        raise NotImplementedError

    def execute(self) -> Iterator[Env]:
        table, alias = self.table, self.alias
        for _rowid, row in self.rows():
            yield _env_from_row(table, row, alias)

    def chunks(self, size: int = CHUNK) -> Iterator[List[Env]]:
        names = self.table.schema.column_names
        alias = self.alias
        rows = self.rows()
        while True:
            batch = list(islice(rows, size))
            if not batch:
                return
            if alias is None:
                yield [dict(zip(names, row)) for _rowid, row in batch]
            else:
                qualified = tuple(f"{alias}.{name}" for name in names)
                yield [
                    dict(zip(names + qualified, row + row))
                    for _rowid, row in batch
                ]


@dataclass
class SeqScan(TableScanNode):
    table: Table
    alias: Optional[str] = None

    def rows(self) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        return self.table.scan()

    def describe(self) -> str:
        return f"SeqScan({self.table.schema.name})"


@dataclass
class IndexEqScan(TableScanNode):
    table: Table
    index_name: str
    key: Tuple[Any, ...]
    alias: Optional[str] = None

    def rows(self) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        return self.table.lookup_index(self.index_name, self.key)

    def describe(self) -> str:
        return f"IndexEqScan({self.table.schema.name}.{self.index_name} = {self.key!r})"


@dataclass
class IndexPrefixScan(TableScanNode):
    table: Table
    index_name: str
    prefix: str
    alias: Optional[str] = None

    def rows(self) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        return self.table.prefix_scan(self.index_name, self.prefix)

    def describe(self) -> str:
        return f"IndexPrefixScan({self.table.schema.name}.{self.index_name} ~ {self.prefix!r}%)"


def _bracketed(
    low: Any, high: Any, include_low: bool, include_high: bool
) -> str:
    low_bracket = "[" if include_low else "("
    high_bracket = "]" if include_high else ")"
    return f"{low_bracket}{low!r}, {high!r}{high_bracket}"


@dataclass
class IndexRangeScan(TableScanNode):
    """Streaming scan of an ordered index restricted to ``[low, high]``.

    Rows arrive in index-key order (descending with ``reverse``), so a
    downstream ORDER BY on the same key needs no sort.  Bounds are
    optional (open-ended) and may each be exclusive, mapping the
    planner-visible ``k >= lo AND k < hi`` shapes onto the blocked
    ordered index's range iterator.
    """

    table: Table
    index_name: str
    low: Optional[Tuple[Any, ...]] = None
    high: Optional[Tuple[Any, ...]] = None
    include_low: bool = True
    include_high: bool = True
    alias: Optional[str] = None
    reverse: bool = False

    def rows(self) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        return self.table.range_scan(
            self.index_name,
            self.low,
            self.high,
            self.include_low,
            self.include_high,
            self.reverse,
        )

    def describe(self) -> str:
        direction = " desc" if self.reverse else ""
        return (
            f"IndexRangeScan({self.table.schema.name}.{self.index_name} in "
            f"{_bracketed(self.low, self.high, self.include_low, self.include_high)}"
            f"{direction})"
        )


@dataclass
class IndexMultiRangeScan(TableScanNode):
    """Sorted, de-duplicated union of several ranges over one ordered
    index — the disjunction access path.

    The planner normalizes ``col IN (...)`` and OR-of-sargable-conjuncts
    into a list of ``(low, high, include_low, include_high)`` key ranges
    over a single index; :meth:`Table.multi_range_scan` streams their
    union in one pass, in global ``(key, rowid)`` order (descending with
    ``reverse``), each row exactly once even when ranges overlap.
    Because the union preserves index-key order, an ORDER BY on the
    index key needs no sort — same as a single range scan.

    ``presorted`` promises ``ranges`` is already in the union sweep's
    canonical order (``repro.storage.index._range_start_key``); the
    planner sorts once at plan time and sets it so each execution skips
    the re-sort.  Hand-built nodes should leave it False.
    """

    table: Table
    index_name: str
    ranges: List[KeyRange] = field(default_factory=list)
    alias: Optional[str] = None
    reverse: bool = False
    presorted: bool = False

    def rows(self) -> Iterator[Tuple[int, Tuple[Any, ...]]]:
        return self.table.multi_range_scan(
            self.index_name, self.ranges, self.reverse, self.presorted
        )

    def describe(self) -> str:
        direction = " desc" if self.reverse else ""
        rendered = " ∪ ".join(_bracketed(*key_range) for key_range in self.ranges)
        return (
            f"IndexMultiRangeScan({self.table.schema.name}.{self.index_name} in "
            f"{rendered}{direction})"
        )


@dataclass
class ValuesNode(PlanNode):
    """A literal relation: a fixed list of environments.

    The driver side of planner-external joins — e.g. the provenance
    store's batched location probes join a values list of locations
    against the ``(loc, tid)`` index via :class:`IndexNestedLoopJoin`.
    """

    values: List[Env]

    def execute(self) -> Iterator[Env]:
        return iter(self.values)

    def describe(self) -> str:
        return f"Values({len(self.values)} rows)"


@dataclass
class FilterNode(PlanNode):
    """Residual predicate over the child's rows.

    The predicate is compiled into a specialized closure once, at plan
    construction (so a cached plan pays it once across all executions),
    and applied block-at-a-time over the child's chunks.
    """

    child: PlanNode
    predicate: Expr

    def __post_init__(self) -> None:
        self._compiled = compile_expr(self.predicate)

    def execute(self) -> Iterator[Env]:
        for block in self.chunks():
            yield from block

    def chunks(self, size: int = CHUNK) -> Iterator[List[Env]]:
        predicate = self._compiled
        for block in self.child.chunks(size):
            passed = [env for env in block if predicate(env)]
            if passed:
                yield passed

    def describe(self) -> str:
        return f"Filter({self.predicate!r})"

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


@dataclass
class ProjectNode(PlanNode):
    """Projection; output expressions are compiled once per plan and
    applied block-at-a-time, like :class:`FilterNode`."""

    child: PlanNode
    outputs: List[Tuple[str, Expr]]  # (output name, expression)

    def __post_init__(self) -> None:
        self._compiled = [(name, compile_expr(expr)) for name, expr in self.outputs]

    def execute(self) -> Iterator[Env]:
        for block in self.chunks():
            yield from block

    def chunks(self, size: int = CHUNK) -> Iterator[List[Env]]:
        compiled = self._compiled
        for block in self.child.chunks(size):
            yield [{name: fn(env) for name, fn in compiled} for env in block]

    def describe(self) -> str:
        return "Project(" + ", ".join(name for name, _ in self.outputs) + ")"

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


class _EnvMerger:
    """Merges a left and right environment into one join output row.

    The merged dict keeps every key from both sides, the left value
    winning on collision — *except* that a colliding unqualified column
    whose two sides disagree and that no alias can disambiguate raises
    :class:`~repro.storage.errors.AmbiguousColumnError` (the engine used
    to silently prefer the left row, turning a shared column name on an
    unaliased join into wrong answers).  When both sides also carry a
    qualified (``alias.column``) variant of the name, the collision is
    resolvable by qualification and the legacy left-wins merge stands.

    One instance per join execution: the key sets of each side are fixed
    for a given plan, so the colliding-key analysis runs once, on the
    first pair, and every later merge only compares those values.
    """

    __slots__ = ("_checked",)

    def __init__(self) -> None:
        self._checked: Optional[Tuple[str, ...]] = None

    def merge(self, left_env: Env, right_env: Env) -> Env:
        checked = self._checked
        if checked is None:
            checked = self._checked = self._conflict_keys(left_env, right_env)
        for key in checked:
            if left_env[key] != right_env[key]:
                raise AmbiguousColumnError(
                    f"column {key!r} is ambiguous across joined tables "
                    f"(values {left_env[key]!r} and {right_env[key]!r}); "
                    f"alias the tables and qualify the reference"
                )
        merged = dict(right_env)
        merged.update(left_env)
        return merged

    @staticmethod
    def _conflict_keys(left_env: Env, right_env: Env) -> Tuple[str, ...]:
        checked = []
        for key in left_env:
            if "." in key or key not in right_env:
                continue
            dotted = "." + key
            if any(k.endswith(dotted) for k in left_env) and any(
                k.endswith(dotted) for k in right_env
            ):
                continue  # both sides reachable via alias qualification
            checked.append(key)
        return tuple(checked)


JoinKey = Union[Expr, Tuple[Expr, ...]]


def _as_exprs(key: JoinKey) -> Tuple[Expr, ...]:
    if isinstance(key, Expr):
        return (key,)
    return tuple(key)


def _eval_key(exprs: Tuple[Expr, ...], env: Env) -> Optional[Tuple[Any, ...]]:
    """The probe/build key for one row — ``None`` when any component is
    NULL, which never equi-joins (``Cmp`` semantics)."""
    values = []
    for expr in exprs:
        value = expr.eval(env)
        if value is None:
            return None
        values.append(value)
    return tuple(values)


def _compile_key(key: JoinKey) -> Callable[[Env], Optional[Tuple[Any, ...]]]:
    """Compiled form of :func:`_eval_key` — the per-row closure a join
    evaluates its probe/build key through."""
    fns = [compile_expr(expr) for expr in _as_exprs(key)]
    if len(fns) == 1:
        fn = fns[0]

        def single(env: Env) -> Optional[Tuple[Any, ...]]:
            value = fn(env)
            return None if value is None else (value,)

        return single

    def key_fn(env: Env) -> Optional[Tuple[Any, ...]]:
        values = []
        for fn in fns:
            value = fn(env)
            if value is None:
                return None
            values.append(value)
        return tuple(values)

    return key_fn


def _render_key(key: JoinKey) -> str:
    exprs = _as_exprs(key)
    if len(exprs) == 1:
        return repr(exprs[0])
    return "(" + ", ".join(repr(expr) for expr in exprs) + ")"


@dataclass
class HashJoinNode(PlanNode):
    """Equi-join: build a hash table on one input, probe with the other.

    ``left_key``/``right_key`` are single expressions or equal-length
    tuples (multi-conjunct ``ON a.x = b.x AND a.y = b.y`` joins hash the
    composite key).  ``build_left`` selects the build side: the default
    builds on the right input (the legacy shape); the planner sets it
    when the left side's estimated cardinality is smaller, so the
    materialized hash table is always the cheaper input while the
    larger one streams.  Output environments are identical either way
    (left values win qualified-resolvable collisions; disagreeing
    unresolvable ones raise — see :class:`_EnvMerger`).
    """

    left: PlanNode
    right: PlanNode
    left_key: JoinKey
    right_key: JoinKey
    build_left: bool = False

    def __post_init__(self) -> None:
        self._left_key_fn = _compile_key(self.left_key)
        self._right_key_fn = _compile_key(self.right_key)

    def execute(self) -> Iterator[Env]:
        left_key_fn = self._left_key_fn
        right_key_fn = self._right_key_fn
        merger = _EnvMerger()
        buckets: Dict[Tuple[Any, ...], List[Env]] = {}
        if self.build_left:
            for env in self.left.execute():
                key = left_key_fn(env)
                if key is not None:
                    buckets.setdefault(key, []).append(env)
            for right_env in self.right.execute():
                key = right_key_fn(right_env)
                if key is None:
                    continue
                for left_env in buckets.get(key, ()):
                    yield merger.merge(left_env, right_env)
        else:
            for env in self.right.execute():
                key = right_key_fn(env)
                if key is not None:
                    buckets.setdefault(key, []).append(env)
            for left_env in self.left.execute():
                key = left_key_fn(left_env)
                if key is None:
                    continue
                for right_env in buckets.get(key, ()):
                    yield merger.merge(left_env, right_env)

    def describe(self) -> str:
        build = ", build=left" if self.build_left else ""
        return f"HashJoin({_render_key(self.left_key)} = {_render_key(self.right_key)}{build})"

    def children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)


@dataclass
class HashSemiJoinNode(PlanNode):
    """Equi-semi-join: emit each left row at most once if the right
    input has at least one key match.

    The semi-join reduction for ``DISTINCT`` over a join: when the
    reduced relation contributes nothing to the output (no output,
    ORDER BY, or residual reference) and no later join edge needs its
    bindings, DISTINCT makes join multiplicity invisible, so an
    existence check is set-equivalent to the full join.  The right
    input collapses to a key *set* (no environment lists, no
    :class:`_EnvMerger` work) and left rows stream through unduplicated
    — the downstream :class:`DistinctNode` sees exactly the left row
    set, in left order.
    """

    left: PlanNode
    right: PlanNode
    left_key: JoinKey
    right_key: JoinKey

    def __post_init__(self) -> None:
        self._left_key_fn = _compile_key(self.left_key)
        self._right_key_fn = _compile_key(self.right_key)

    def execute(self) -> Iterator[Env]:
        right_key_fn = self._right_key_fn
        keys = set()
        for env in self.right.execute():
            key = right_key_fn(env)
            if key is not None:
                keys.add(key)
        left_key_fn = self._left_key_fn
        for env in self.left.execute():
            if left_key_fn(env) in keys:
                yield env

    def describe(self) -> str:
        return (
            f"HashSemiJoin({_render_key(self.left_key)} = "
            f"{_render_key(self.right_key)})"
        )

    def children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)


def _probe_key_range(
    prefix: Tuple[Any, ...],
    width: int,
    low: Optional[Tuple[Any, bool]],
    high: Optional[Tuple[Any, bool]],
) -> KeyRange:
    """Key bounds for one probe: ``prefix`` pins the index's leading
    columns, ``low``/``high`` optionally bound the next column.  Same
    padding discipline as the planner's ``_key_range``: a short tuple
    sorts before its extensions, so inclusive-high and exclusive-low
    bounds are padded with ``MAX_KEY``."""
    eq_len = len(prefix)
    extra = max(0, width - eq_len - 1)
    include_low = include_high = True
    if low is not None:
        value, inclusive = low
        if inclusive:
            low_key = prefix + (value,)
        else:
            low_key, include_low = prefix + (value,) + (MAX_KEY,) * extra, False
    else:
        low_key = prefix
    if high is not None:
        value, inclusive = high
        if inclusive:
            high_key = prefix + (value,) + (MAX_KEY,) * extra
        else:
            high_key, include_high = prefix + (value,), False
    else:
        high_key = prefix + (MAX_KEY,) * (width - eq_len)
    return low_key, high_key, include_low, include_high


#: left rows per IndexNestedLoopJoin probe batch: large enough that the
#: per-batch multi-range sweep amortizes its setup, small enough that a
#: streaming left side is not fully materialized.  0 = one batch.
INLJ_CHUNK = 256


@dataclass
class IndexNestedLoopJoin(PlanNode):
    """Equi-join that probes an index of the right table with keys from
    the left input, instead of materializing the right side.

    Left rows are batched into chunks (``chunk`` rows; ``0`` = one
    batch).  Per chunk, the distinct non-NULL probe keys are evaluated
    once; on an *ordered* index they become one presorted
    :meth:`Table.multi_range_scan` — a single sweep over the index per
    chunk, the same machinery behind ``IN`` lists — while a hash index
    takes one equality probe per distinct key.  ``left_exprs`` supply
    values for the index's leading columns; ``tail_low``/``tail_high``
    optionally push a static interval on the next index column into
    every probe range (the provenance time-travel ``tid <= bound``
    window).  ``residual`` is a right-table-only predicate applied to
    probed rows before merging.

    Each probe batch increments ``table.access_counts["inlj_probe"]``,
    extending the store's one-pass assertions to join probes.
    """

    left: PlanNode
    table: Table
    index_name: str
    left_exprs: Tuple[Expr, ...]
    alias: Optional[str] = None
    residual: Optional[Expr] = None
    tail_low: Optional[Tuple[Any, bool]] = None
    tail_high: Optional[Tuple[Any, bool]] = None
    chunk: int = INLJ_CHUNK

    def __post_init__(self) -> None:
        self._key_fn = _compile_key(self.left_exprs)
        self._residual_fn = (
            compile_expr(self.residual) if self.residual is not None else None
        )

    def execute(self) -> Iterator[Env]:
        spec = self.table.index_specs[self.index_name]
        width = len(spec.columns)
        eq_len = len(self.left_exprs)
        table, alias = self.table, self.alias
        key_fn, residual = self._key_fn, self._residual_fn
        lead_positions = tuple(
            table.schema.column_index(column) for column in spec.columns[:eq_len]
        )
        merger = _EnvMerger()
        left_iter = self.left.execute()
        while True:
            batch = list(islice(left_iter, self.chunk) if self.chunk else left_iter)
            if not batch:
                return
            groups: Dict[Tuple[Any, ...], List[Env]] = {}
            for env in batch:
                key = key_fn(env)
                if key is not None:
                    groups.setdefault(key, []).append(env)
            if groups:
                table.access_counts["inlj_probe"] += 1
                if spec.ordered:
                    # one presorted multi-range sweep for the whole chunk
                    ranges = [
                        _probe_key_range(key, width, self.tail_low, self.tail_high)
                        for key in sorted(groups)
                    ]
                    for _rowid, row in table.multi_range_scan(
                        self.index_name, ranges, presorted=True
                    ):
                        right_env = _env_from_row(table, row, alias)
                        if residual is not None and not residual(right_env):
                            continue
                        probe_key = tuple(row[p] for p in lead_positions)
                        for left_env in groups.get(probe_key, ()):
                            yield merger.merge(left_env, right_env)
                else:
                    for key, envs in groups.items():
                        for _rowid, row in table.lookup_index(self.index_name, key):
                            right_env = _env_from_row(table, row, alias)
                            if residual is not None and not residual(right_env):
                                continue
                            for left_env in envs:
                                yield merger.merge(left_env, right_env)
            if not self.chunk:
                return

    def describe(self) -> str:
        probes = ", ".join(repr(expr) for expr in self.left_exprs)
        extras = []
        if self.tail_low is not None or self.tail_high is not None:
            low = self.tail_low[0] if self.tail_low else None
            high = self.tail_high[0] if self.tail_high else None
            extras.append(f"tail in [{low!r}, {high!r}]")
        if self.residual is not None:
            extras.append(f"filter {self.residual!r}")
        tail = (", " + ", ".join(extras)) if extras else ""
        return (
            f"IndexNestedLoopJoin({self.table.schema.name}.{self.index_name}"
            f" <- ({probes}){tail})"
        )

    def children(self) -> Sequence[PlanNode]:
        return (self.left,)


@dataclass
class NestedLoopJoinNode(PlanNode):
    """General join with an arbitrary predicate — the physical operator
    non-equi join conditions fall back to (an ``ON`` clause with no
    usable equality pair cannot hash or probe)."""

    left: PlanNode
    right: PlanNode
    predicate: Optional[Expr] = None

    def __post_init__(self) -> None:
        self._predicate_fn = (
            compile_expr(self.predicate) if self.predicate is not None else None
        )

    def execute(self) -> Iterator[Env]:
        merger = _EnvMerger()
        predicate = self._predicate_fn
        right_rows = list(self.right.execute())
        for left_env in self.left.execute():
            for right_env in right_rows:
                merged = merger.merge(left_env, right_env)
                if predicate is None or predicate(merged):
                    yield merged

    def describe(self) -> str:
        return f"NestedLoopJoin({self.predicate!r})"

    def children(self) -> Sequence[PlanNode]:
        return (self.left, self.right)


@dataclass
class SortNode(PlanNode):
    child: PlanNode
    keys: List[Tuple[Expr, bool]]  # (expression, descending)

    def __post_init__(self) -> None:
        self._compiled = [
            (compile_expr(expr), descending) for expr, descending in self.keys
        ]

    def execute(self) -> Iterator[Env]:
        rows = list(self.child.execute())

        # Stable multi-key sort: apply keys right-to-left.
        for key_fn, descending in reversed(self._compiled):
            rows.sort(
                key=lambda env, fn=key_fn: _null_safe_key(fn(env)),
                reverse=descending,
            )
        return iter(rows)

    def describe(self) -> str:
        return f"Sort({len(self.keys)} keys)"

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


def _null_safe_key(value: Any) -> Tuple[int, Any]:
    """NULLs sort first; mixed types sort by type name then value."""
    if value is None:
        return (0, "", "")
    return (1, type(value).__name__, value)


def _hashable_key(value: Any) -> Any:
    """A hashable, type-discriminating stand-in for ``value``.

    Built on :func:`_null_safe_key` so NULL is distinct from every real
    value and ``0``/``False``/``0.0`` (equal and hash-equal in Python)
    stay distinct across types.  Unhashable containers are converted
    structurally; anything else falls back to its ``repr``.
    """
    marker, type_name, value = _null_safe_key(value)
    try:
        hash(value)
    except TypeError:
        if isinstance(value, (list, tuple)):
            value = tuple(_hashable_key(part) for part in value)
        elif isinstance(value, (set, frozenset)):
            value = frozenset(_hashable_key(part) for part in value)
        elif isinstance(value, dict):
            value = tuple(
                sorted((repr(k), _hashable_key(v)) for k, v in value.items())
            )
        else:
            value = repr(value)
    return (marker, type_name, value)


@dataclass
class LimitNode(PlanNode):
    child: PlanNode
    limit: Optional[int]
    offset: int = 0

    def execute(self) -> Iterator[Env]:
        produced = 0
        for count, env in enumerate(self.child.execute()):
            if count < self.offset:
                continue
            if self.limit is not None and produced >= self.limit:
                return
            produced += 1
            yield env

    def describe(self) -> str:
        return f"Limit({self.limit}, offset={self.offset})"

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


_AGGREGATES: Dict[str, Callable[[List[Any]], Any]] = {
    "count": lambda values: len(values),
    "sum": lambda values: sum(values) if values else 0,
    "avg": lambda values: (sum(values) / len(values)) if values else None,
    "min": lambda values: min(values) if values else None,
    "max": lambda values: max(values) if values else None,
}


@dataclass
class AggregateNode(PlanNode):
    """Hash aggregation with optional GROUP BY.

    ``aggregates`` maps output names to ``(function, expression)``;
    ``expression`` may be ``None`` for ``count(*)``.
    """

    child: PlanNode
    group_by: List[Tuple[str, Expr]]
    aggregates: List[Tuple[str, str, Optional[Expr]]]

    def __post_init__(self) -> None:
        self._group_fns = [compile_expr(expr) for _name, expr in self.group_by]
        self._agg_fns = [
            (name, function, compile_expr(expr) if expr is not None else None)
            for name, function, expr in self.aggregates
        ]

    def execute(self) -> Iterator[Env]:
        group_fns = self._group_fns
        groups: Dict[Tuple[Any, ...], List[Env]] = {}
        for env in self.child.execute():
            key = tuple(fn(env) for fn in group_fns)
            groups.setdefault(key, []).append(env)
        if not self.group_by and not groups:
            groups[()] = []
        for key, rows in groups.items():
            out: Env = {name: part for (name, _expr), part in zip(self.group_by, key)}
            for out_name, function, fn in self._agg_fns:
                if function not in _AGGREGATES:
                    raise ValueError(f"unknown aggregate {function!r}")
                if fn is None:
                    values: List[Any] = [1] * len(rows)
                else:
                    values = [v for v in (fn(env) for env in rows) if v is not None]
                out[out_name] = _AGGREGATES[function](values)
            yield out

    def describe(self) -> str:
        names = ", ".join(name for name, _f, _e in self.aggregates)
        return f"Aggregate({names})"

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


@dataclass
class DistinctNode(PlanNode):
    child: PlanNode

    def execute(self) -> Iterator[Env]:
        seen = set()
        for env in self.child.execute():
            key = tuple(
                (name, _hashable_key(env[name])) for name in sorted(env)
            )
            if key not in seen:
                seen.add(key)
                yield env

    def describe(self) -> str:
        return "Distinct"

    def children(self) -> Sequence[PlanNode]:
        return (self.child,)


def explain(node: PlanNode, indent: int = 0, estimates: bool = False) -> str:
    """Render a plan tree as indented text (for tests and debugging).

    ``estimates=True`` appends the planner's estimated row count to
    every node that carries one (the planner annotates access paths and
    join operators with ``est_rows``); the default output is unchanged,
    so plan snapshots stay stable across estimator tweaks.
    """
    line = "  " * indent + node.describe()
    est = getattr(node, "est_rows", None)
    if estimates and est is not None:
        line += f"  (est_rows={est:.0f})"
    lines = [line]
    for child in node.children():
        lines.append(explain(child, indent + 1, estimates))
    return "\n".join(lines)
