"""Logical queries and a cost-based planner choosing index access paths.

The planner enumerates *candidate* access paths for each table access:

1. an equality conjunct covering an index's columns → ``IndexEqScan``;
2. a ``PrefixMatch`` conjunct on the first column of an *ordered* index
   → ``IndexPrefixScan`` (the ``loc LIKE 'p/%'`` descendant pattern);
3. merged comparison bounds (``k >= lo``, ``k < hi``, BETWEEN-shaped
   pairs, and equality prefixes on multi-column indexes) on an ordered
   index → ``IndexRangeScan``; an ordered index whose key order matches
   the requested ORDER BY is also eligible with open bounds, so ``ORDER
   BY k LIMIT n`` can stream;
4. a ``col IN (...)`` conjunct, or a top-level OR whose every disjunct
   is a sargable conjunction over one column, → ``IndexMultiRangeScan``
   (a sorted, de-duplicated union of per-disjunct ranges over one
   ordered index);
5. always: a ``SeqScan``.

and picks the cheapest under a small cost model (see *Cost model*
below) instead of the old static eq > prefix > range priority — so a
composite ordered index that also satisfies the ORDER BY can beat a
fully-equality-covered hash index whose output would still need a sort.
Residual conjuncts stay in a ``FilterNode`` above the access path.

Joins are planned as a cost-based subsystem of their own (see the
*Join planning* section below): equality conditions from ``ON``
clauses (any operand order, AND-ed multi-conjunct) and from WHERE
conjuncts form a join graph, join order is enumerated under the same
cost model with equi-depth-histogram selectivities, and each step
chooses between an ``IndexNestedLoopJoin`` (batched index probes into
the new table) and a build-side-aware ``HashJoinNode``; non-equi ON
conditions fall back to ``NestedLoopJoinNode``.

*Interesting orders*: when the chosen access path already yields rows in
the requested ORDER BY order — an ordered-index scan whose key columns
(minus equality-bound ones) lead with the ORDER BY columns, possibly
scanned in reverse for DESC — the trailing ``SortNode`` is elided and
``LimitNode`` streams.  ``plan_query(..., naive=True)`` disables every
rule (forced ``SeqScan`` + ``FilterNode`` + ``SortNode``), which is the
oracle side of the differential plan-equivalence tests.

DML shares the machinery: :func:`plan_mutation` compiles a
``delete_where``/``update_where`` predicate into the same access-path
candidates (every access node exposes a ``rows()`` stream of ``(rowid,
row)`` pairs), so victim enumeration probes indexes instead of paying a
full scan.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from math import log2
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .errors import UnknownTableError
from .expr import (
    And,
    Cmp,
    Col,
    Concat,
    Const,
    Expr,
    InList,
    IsNull,
    Not,
    Or,
    PrefixMatch,
    column_bound,
    conjuncts,
)
from .index import MAX_KEY, KeyRange, _range_start_key
from .plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    HashJoinNode,
    HashSemiJoinNode,
    IndexEqScan,
    IndexMultiRangeScan,
    IndexNestedLoopJoin,
    IndexPrefixScan,
    IndexRangeScan,
    LimitNode,
    NestedLoopJoinNode,
    PlanNode,
    ProjectNode,
    SeqScan,
    SortNode,
    TableScanNode,
    _probe_key_range,
)
from .table import IndexStats, Table
from .types import ColumnType

__all__ = [
    "TableRef",
    "JoinSpec",
    "Query",
    "PlanCache",
    "PlannerStats",
    "plan_query",
    "plan_mutation",
    "query_fingerprint",
]


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class JoinSpec:
    """A join between the query's running result and a new table.

    ``left_key = right_key`` is the first equality condition (kept as
    two fields for backward compatibility); ``extra`` carries further
    AND-ed equality pairs (``ON a.x = b.x AND a.y = b.y``) and
    ``residual`` any non-equi ON conjuncts, evaluated over the joined
    row.  Operand order is *as written* — the planner normalizes sides
    by binding, so ``ON b.x = a.x`` probes and builds correctly.  A
    spec with no equality pairs (pure non-equi, or none at all — a
    cross join) executes as a nested-loop join.
    """

    table: TableRef
    left_key: Optional[Expr] = None
    right_key: Optional[Expr] = None
    extra: Tuple[Tuple[Expr, Expr], ...] = ()
    residual: Optional[Expr] = None

    @property
    def pairs(self) -> Tuple[Tuple[Expr, Expr], ...]:
        """Every equality condition as an ``(as-written-left,
        as-written-right)`` pair."""
        first: Tuple[Tuple[Expr, Expr], ...] = ()
        if self.left_key is not None and self.right_key is not None:
            first = ((self.left_key, self.right_key),)
        return first + tuple(self.extra)


@dataclass
class Query:
    """A logical SELECT query.

    ``outputs`` of ``None`` means SELECT * (all columns of all tables,
    unqualified names from the first table win on collision).
    """

    table: TableRef
    joins: List[JoinSpec] = field(default_factory=list)
    where: Optional[Expr] = None
    outputs: Optional[List[Tuple[str, Expr]]] = None
    group_by: List[Tuple[str, Expr]] = field(default_factory=list)
    aggregates: List[Tuple[str, str, Optional[Expr]]] = field(default_factory=list)
    order_by: List[Tuple[Expr, bool]] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0
    having: Optional[Expr] = None
    distinct: bool = False


# ----------------------------------------------------------------------
# Planner statistics context and the plan cache
# ----------------------------------------------------------------------


class PlannerStats:
    """Memo of the table statistics planning consulted.

    The first planning call through a fresh instance records every
    ``index_stats`` / ``column_histogram`` answer; replaying the same
    instance on a later call (same query *shape*, same stats epoch)
    answers from the memo — zero sampling against the tables, which is
    what ``Table.stats_counts`` asserts.  A consult missing from the
    memo (a shape would have to diverge for that) falls through to the
    live table and is recorded.
    """

    __slots__ = ("_index_stats", "_histograms")

    def __init__(self) -> None:
        self._index_stats: Dict[Tuple[str, str], IndexStats] = {}
        self._histograms: Dict[Tuple[str, str], Any] = {}

    def index_stats(self, table: Table, name: str) -> IndexStats:
        key = (table.schema.name, name)
        try:
            return self._index_stats[key]
        except KeyError:
            value = self._index_stats[key] = table.index_stats(name)
            return value

    def histogram(self, table: Table, column: str):
        key = (table.schema.name, column)
        try:
            return self._histograms[key]
        except KeyError:
            value = self._histograms[key] = table.column_histogram(column)
            return value


#: the statistics memo the current ``plan_query`` call records into /
#: replays from; ``None`` = consult tables directly.  A module global —
#: not thread state — because the engine is single-threaded embedded
#: (see ROADMAP's MVCC item); ``plan_query`` saves and restores it.
_ACTIVE_STATS: Optional[PlannerStats] = None


def _table_index_stats(table: Table, name: str) -> IndexStats:
    if _ACTIVE_STATS is None:
        return table.index_stats(name)
    return _ACTIVE_STATS.index_stats(table, name)


def _table_histogram(table: Table, column: str):
    if _ACTIVE_STATS is None:
        return table.column_histogram(column)
    return _ACTIVE_STATS.histogram(table, column)


def _literal(value: Any) -> Any:
    """A hashable stand-in for one parameterized-out literal."""
    try:
        hash(value)
    except TypeError:
        return repr(value)
    return value


def _expr_shape(expr: Optional[Expr], literals: List[Any]) -> str:
    """Render an expression with every literal replaced by ``?`` (the
    values are appended to ``literals`` in rendering order)."""
    if expr is None:
        return "~"
    if isinstance(expr, Const):
        literals.append(_literal(expr.value))
        return "?"
    if isinstance(expr, Col):
        return "@" + expr.name
    if isinstance(expr, Cmp):
        return (
            f"({_expr_shape(expr.left, literals)}{expr.op}"
            f"{_expr_shape(expr.right, literals)})"
        )
    if isinstance(expr, And):
        return "and(" + ",".join(_expr_shape(p, literals) for p in expr.parts) + ")"
    if isinstance(expr, Or):
        return "or(" + ",".join(_expr_shape(p, literals) for p in expr.parts) + ")"
    if isinstance(expr, Not):
        return "not(" + _expr_shape(expr.inner, literals) + ")"
    if isinstance(expr, IsNull):
        tag = "notnull" if expr.negated else "isnull"
        return tag + "(" + _expr_shape(expr.inner, literals) + ")"
    if isinstance(expr, InList):
        # the option *count* stays in the shape: the planner builds one
        # key range per option, so different counts are different plans
        literals.extend(_literal(option) for option in expr.options)
        return (
            f"in({_expr_shape(expr.inner, literals)},#{len(expr.options)})"
        )
    if isinstance(expr, PrefixMatch):
        literals.append(expr.prefix)
        return f"prefix(@{expr.column.name},?)"
    if isinstance(expr, Concat):
        return "concat(" + ",".join(_expr_shape(p, literals) for p in expr.parts) + ")"
    # unknown Expr extension: repr is its identity (nothing parameterized)
    return repr(expr)


def query_fingerprint(query: Query) -> Tuple[str, Tuple[Any, ...]]:
    """``(shape, literals)`` for one query: the normalized query shape
    with literals parameterized out, plus the literal values in shape
    order.  Two queries with equal shapes differ only in constants; the
    shape (plus the stats epoch) keys the plan cache's statistics
    snapshots, and ``(shape, literals)`` keys whole cached plans."""
    literals: List[Any] = []
    parts = [f"t:{query.table.name}/{query.table.alias or ''}"]
    for join in query.joins:
        pair_shapes = ",".join(
            f"{_expr_shape(left, literals)}={_expr_shape(right, literals)}"
            for left, right in join.pairs
        )
        parts.append(
            f"j:{join.table.name}/{join.table.alias or ''}"
            f"[{pair_shapes}|{_expr_shape(join.residual, literals)}]"
        )
    parts.append("w:" + _expr_shape(query.where, literals))
    if query.outputs is None:
        parts.append("o:*")
    else:
        parts.append(
            "o:"
            + ",".join(
                f"{name}={_expr_shape(expr, literals)}"
                for name, expr in query.outputs
            )
        )
    parts.append(
        "g:"
        + ",".join(
            f"{name}={_expr_shape(expr, literals)}" for name, expr in query.group_by
        )
    )
    parts.append(
        "a:"
        + ",".join(
            f"{name}={fn}:{_expr_shape(expr, literals)}"
            for name, fn, expr in query.aggregates
        )
    )
    parts.append(
        "ord:"
        + ",".join(
            _expr_shape(expr, literals) + ("-" if descending else "+")
            for expr, descending in query.order_by
        )
    )
    parts.append("h:" + _expr_shape(query.having, literals))
    # LIMIT/OFFSET/DISTINCT are plan structure (LimitNode arguments),
    # not predicate literals — they stay in the shape
    parts.append(f"lim:{query.limit}/{query.offset}/{int(query.distinct)}")
    return ";".join(parts), tuple(literals)


class PlanCache:
    """Caches physical plans keyed on (query shape, literals, stats epoch).

    Two layers, both epoch-guarded and LRU-bounded:

    * **plans** — ``(shape, literals) -> plan``: an exact repeat reuses
      the plan object outright (plans are stateless between executions);
    * **statistics snapshots** — ``shape -> PlannerStats``: a repeat of
      the same shape with *different* literals re-costs against the
      recorded statistics instead of sampling the tables, then caches
      the resulting plan under its own literals.

    The epoch (built by ``Database._stats_epoch``) covers every involved
    table's ``_version`` mutation counter and index-spec fingerprint
    plus a catalog DDL counter, so any mutation, index DDL, or
    drop/recreate invalidates lazily on the next lookup.  Counters:
    ``hits`` (plan reuse), ``shape_hits`` (snapshot re-plan), ``misses``
    (full plan with sampling), ``invalidations`` (entries discarded for
    a stale epoch).
    """

    def __init__(self, capacity: int = 128) -> None:
        self.capacity = max(1, capacity)
        self._plans: "OrderedDict[Tuple[Any, ...], Tuple[PlanNode, Tuple[Any, ...]]]" = (
            OrderedDict()
        )
        self._snapshots: "OrderedDict[str, Tuple[PlannerStats, Tuple[Any, ...]]]" = (
            OrderedDict()
        )
        self.counters: Dict[str, int] = {
            "hits": 0,
            "shape_hits": 0,
            "misses": 0,
            "invalidations": 0,
        }
        #: outcome of the most recent :meth:`plan` call — EXPLAIN's
        #: cache annotation reads this
        self.last_lookup: str = "miss"

    def clear(self) -> None:
        self._plans.clear()
        self._snapshots.clear()

    def plan(
        self, tables: Dict[str, Table], query: Query, epoch: Tuple[Any, ...]
    ) -> PlanNode:
        shape, literals = query_fingerprint(query)
        plan_key = (shape, literals)
        entry = self._plans.get(plan_key)
        if entry is not None:
            plan, plan_epoch = entry
            if plan_epoch == epoch:
                self.counters["hits"] += 1
                self.last_lookup = "hit"
                self._plans.move_to_end(plan_key)
                return plan
            del self._plans[plan_key]
            self.counters["invalidations"] += 1
        stats: Optional[PlannerStats] = None
        snapshot_entry = self._snapshots.get(shape)
        if snapshot_entry is not None:
            snapshot, snapshot_epoch = snapshot_entry
            if snapshot_epoch == epoch:
                stats = snapshot
                self._snapshots.move_to_end(shape)
                self.counters["shape_hits"] += 1
                self.last_lookup = "shape_hit"
            else:
                del self._snapshots[shape]
                if entry is None:
                    # don't double-count a lookup that already counted
                    # its stale plan entry above
                    self.counters["invalidations"] += 1
        if stats is None:
            stats = PlannerStats()
            self.counters["misses"] += 1
            self.last_lookup = "miss"
        plan = plan_query(tables, query, stats=stats)
        self._plans[plan_key] = (plan, epoch)
        self._snapshots[shape] = (stats, epoch)
        while len(self._plans) > self.capacity:
            self._plans.popitem(last=False)
        while len(self._snapshots) > self.capacity:
            self._snapshots.popitem(last=False)
        return plan


def _split_predicate_for(
    binding: str, table: Table, predicate: Optional[Expr], qualified: bool = True
) -> Tuple[List[Expr], Optional[Expr]]:
    """Partition conjuncts into those referencing only ``binding``'s
    columns (pushable) and the residual predicate.

    ``qualified=False`` recognizes only bare column names — the DML
    paths evaluate residuals against unqualified row dicts, so a
    ``binding.column`` reference must stay residual (and raise on
    evaluation) exactly as it would without any planner."""
    if predicate is None:
        return [], None
    local: List[Expr] = []
    residual: List[Expr] = []
    known = set(table.schema.column_names)
    if qualified:
        known |= {f"{binding}.{name}" for name in table.schema.column_names}
    for part in conjuncts(predicate):
        if part.columns() and part.columns() <= known:
            local.append(part)
        else:
            residual.append(part)
    residual_expr: Optional[Expr]
    if not residual:
        residual_expr = None
    elif len(residual) == 1:
        residual_expr = residual[0]
    else:
        residual_expr = And(*residual)
    return local, residual_expr


def _strip_alias(name: str, binding: str) -> str:
    prefix = binding + "."
    return name[len(prefix):] if name.startswith(prefix) else name


# ----------------------------------------------------------------------
# Interval analysis
# ----------------------------------------------------------------------


class _Interval:
    """Merged comparison bounds for one column.

    ``low``/``high`` are ``(value, inclusive)`` or ``None`` (open);
    ``sources`` are the conjuncts the merged bounds subsume.  Merging
    incomparable values (mixed-type bounds) marks the interval unusable
    — those conjuncts stay in the filter, where ``Cmp.eval`` defines
    their semantics.
    """

    __slots__ = ("low", "high", "sources", "usable")

    def __init__(self) -> None:
        self.low: Optional[Tuple[Any, bool]] = None
        self.high: Optional[Tuple[Any, bool]] = None
        self.sources: List[Expr] = []
        self.usable = True

    @property
    def bounded(self) -> bool:
        return self.low is not None or self.high is not None

    def tighten(self, op: str, value: Any, source: Expr) -> None:
        if not self.usable:
            return
        inclusive = op in (">=", "<=")
        try:
            if op in (">", ">="):
                if self.low is None or value > self.low[0]:
                    self.low = (value, inclusive)
                elif value == self.low[0]:
                    self.low = (value, self.low[1] and inclusive)
            else:  # "<" or "<="
                if self.high is None or value < self.high[0]:
                    self.high = (value, inclusive)
                elif value == self.high[0]:
                    self.high = (value, self.high[1] and inclusive)
        except TypeError:
            self.usable = False
            return
        self.sources.append(source)


def _analyze_intervals(local: List[Expr], binding: str) -> Dict[str, _Interval]:
    """Merge the local ``< <= > >=`` conjuncts into per-column intervals."""
    intervals: Dict[str, _Interval] = {}
    for part in local:
        bound = column_bound(part)
        if bound is None or bound[1] == "=":
            continue
        column, op, value = bound
        column = _strip_alias(column, binding)
        intervals.setdefault(column, _Interval()).tighten(op, value, part)
    return {column: iv for column, iv in intervals.items() if iv.usable and iv.bounded}


def _point_interval(value: Any, source: Expr) -> _Interval:
    """The degenerate interval ``[value, value]`` (an IN-list member or
    an equality disjunct)."""
    interval = _Interval()
    interval.tighten(">=", value, source)
    interval.tighten("<=", value, source)
    return interval


def _is_point(interval: _Interval) -> bool:
    return (
        interval.low is not None
        and interval.high is not None
        and interval.low == interval.high
        and interval.low[1]
    )


# ----------------------------------------------------------------------
# Disjunction analysis (IN lists, OR-of-sargable-conjuncts)
# ----------------------------------------------------------------------


def _in_list_intervals(
    expr: InList, binding: str
) -> Optional[Tuple[str, List[_Interval]]]:
    """``col IN (...)`` as de-duplicated per-value point intervals."""
    if not isinstance(expr.inner, Col):
        return None
    column = _strip_alias(expr.inner.name, binding)
    seen: set = set()
    intervals: List[_Interval] = []
    for value in expr.options:
        if value is None:
            continue  # ``col = NULL`` matches nothing an index could hold
        try:
            if value in seen:
                continue
            seen.add(value)
        except TypeError:
            return None  # unhashable literal: the IN stays in the filter
        intervals.append(_point_interval(value, expr))
    return column, intervals


def _disjunct_intervals(
    part: Expr, binding: str
) -> Optional[Tuple[str, List[_Interval]]]:
    """One OR disjunct — a sargable conjunction over a single column —
    as ``(column, [intervals])``; ``None`` when not sargable."""
    if isinstance(part, InList):
        return _in_list_intervals(part, binding)
    column: Optional[str] = None
    interval = _Interval()
    for conj in conjuncts(part):
        bound = column_bound(conj)
        if bound is None:
            return None
        name, op, value = bound
        name = _strip_alias(name, binding)
        if column is None:
            column = name
        elif name != column:
            return None
        if op == "=":
            interval.tighten(">=", value, part)
            interval.tighten("<=", value, part)
        else:
            interval.tighten(op, value, part)
    if column is None or not interval.usable or not interval.bounded:
        return None
    return column, [interval]


def _disjunction_intervals(
    expr: Expr, binding: str
) -> Optional[Tuple[str, List[_Interval]]]:
    """Normalize a conjunct into per-disjunct intervals over one column.

    Two shapes qualify: ``col IN (...)`` and a top-level OR whose every
    disjunct is a sargable conjunction (comparison bounds, equalities,
    nested IN lists) over the *same* column — e.g. ``(a > 1 AND a < 5)
    OR a = 9 OR a IN (11, 13)``.  Anything else returns ``None`` and
    stays a filter conjunct.  The interval union is exactly equivalent
    to the predicate for non-NULL column values, which index probes
    require anyway (:func:`_bound_safe`)."""
    if isinstance(expr, InList):
        return _in_list_intervals(expr, binding)
    if not isinstance(expr, Or) or not expr.parts:
        return None
    column: Optional[str] = None
    intervals: List[_Interval] = []
    for part in expr.parts:
        got = _disjunct_intervals(part, binding)
        if got is None:
            return None
        part_column, part_intervals = got
        if column is None:
            column = part_column
        elif part_column != column:
            return None
        intervals.extend(part_intervals)
    if column is None:
        return None
    return column, intervals


_NUMERIC = (ColumnType.INT, ColumnType.REAL)
_TEXTUAL = (ColumnType.TEXT, ColumnType.CHAR)


def _bound_safe(table: Table, column: str, values: Sequence[Any]) -> bool:
    """True when index-probing ``column`` with ``values`` cannot raise.

    Ordered-index bisection compares bound constants against stored
    values, so the column must be NOT NULL (a NULL key would make the
    comparison raise, where the equivalent ``Cmp`` filter is simply
    False) and the constants must live in the column's type family.
    """
    if not table.schema.has_column(column):
        return False
    spec = table.schema.column(column)
    if spec.nullable:
        return False
    if spec.type in _NUMERIC:
        return all(
            isinstance(v, (int, float)) and not isinstance(v, bool) for v in values
        )
    if spec.type in _TEXTUAL:
        return all(isinstance(v, str) for v in values)
    return False


# ----------------------------------------------------------------------
# Interesting orders
# ----------------------------------------------------------------------


def _order_columns(
    query: Query, binding: str, table: Table
) -> Optional[List[Tuple[str, bool]]]:
    """The ORDER BY as ``(base-table column, descending)`` pairs, or
    ``None`` when it cannot be attributed to the base access path
    (joins, grouping, non-column keys, unknown columns).

    ``SortNode`` runs above the projection, so with explicit outputs an
    ORDER BY key must resolve *through* the projection to a plain base
    column; otherwise elision is refused and the plan keeps the sort —
    including the case where the sort would fail on a projected-away
    column, which must fail identically with or without indexes.
    """
    if not query.order_by or query.joins or query.aggregates or query.group_by:
        return None
    outputs: Optional[Dict[str, Expr]] = None
    if query.outputs is not None:
        outputs = dict(query.outputs)
    spec: List[Tuple[str, bool]] = []
    for expr, descending in query.order_by:
        if not isinstance(expr, Col):
            return None
        if outputs is not None:
            projected = outputs.get(expr.name)
            if not isinstance(projected, Col):
                return None
            expr = projected
        column = _strip_alias(expr.name, binding)
        if not table.schema.has_column(column):
            return None
        spec.append((column, descending))
    return spec


def _trivial_order(
    order_spec: Optional[List[Tuple[str, bool]]], eq_columns: Sequence[str]
) -> bool:
    """Every ORDER BY column pinned to a constant → any row order works."""
    return order_spec is not None and all(c in eq_columns for c, _d in order_spec)


def _match_index_order(
    index_columns: Sequence[str],
    eq_columns: Sequence[str],
    order_spec: Optional[List[Tuple[str, bool]]],
) -> Optional[bool]:
    """Whether a scan of an ordered index satisfies the ORDER BY.

    Equality-bound columns are constant in the output, so they can be
    dropped from both the ORDER BY and the index key.  The remaining
    ORDER BY columns must be a prefix of the remaining index columns
    with one shared direction.  Returns ``None`` (unsatisfiable),
    ``False`` (forward scan), or ``True`` (reverse scan).
    """
    if order_spec is None:
        return None
    keys = [(c, d) for c, d in order_spec if c not in eq_columns]
    if not keys:
        return False
    direction = keys[0][1]
    if any(d != direction for _c, d in keys):
        return None
    available = [c for c in index_columns if c not in eq_columns]
    if [c for c, _d in keys] != available[: len(keys)]:
        return None
    return direction


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
#
# Candidate costs are *estimated rows touched*, not wall time: the
# expected scanned-row count times a per-access-kind factor, plus a
# setup charge per probed range or bucket, plus — when the query has an
# ORDER BY the candidate's output order does not satisfy — an n·log n
# surcharge for the SortNode it would feed.  Selectivities come from
# table statistics (row count; distinct-key counts, exact for hash
# indexes and bounded-sample estimates for ordered ones — see
# ``Table.index_stats``).  The figures only need to *rank* candidates;
# exact ties fall back to the legacy rule priority (eq > prefix > range
# > multi-range > seq) so plans stay deterministic.

_HASH_ROW_COST = 1.0      # per row out of a hash bucket
_ORDERED_ROW_COST = 1.1   # per row off an ordered index (block walk)
_SEQ_ROW_COST = 1.0       # per row of a full heap scan
_PROBE_COST = 1.0         # per probed range/bucket: bisections + setup
_PREFIX_SELECTIVITY = 0.25
#: fraction of rows surviving 0/1/2 comparison bounds on a column
_BOUND_SELECTIVITY = {0: 1.0, 1: 0.4, 2: 0.15}


def _candidate_cost(
    est_rows: float,
    row_cost: float,
    probes: int,
    satisfies_order: bool,
    wants_order: bool,
    total_rows: int,
) -> float:
    est = min(max(est_rows, 0.0), float(total_rows))
    cost = row_cost * est + _PROBE_COST * probes
    if wants_order and not satisfies_order:
        cost += est * log2(est + 2.0)  # the SortNode this plan would feed
    return cost


def _eq_prefix_selectivity(stats: IndexStats, eq_len: int, width: int) -> float:
    """Fraction of rows surviving ``eq_len`` equality-bound leading
    columns of a ``width``-column index: the distinct full keys are
    assumed to spread geometrically over the key columns."""
    if eq_len <= 0:
        return 1.0
    per_column = float(max(1, stats.keys)) ** (1.0 / width)
    return per_column ** -eq_len


@dataclass
class _Candidate:
    """One costed access path: the physical node, the conjuncts it did
    not absorb, and whether its output satisfies the ORDER BY."""

    cost: float
    rank: int  # enumeration order = legacy rule priority, the tie-break
    node: TableScanNode
    leftover: List[Expr]
    ordered: bool
    est: float = 0.0  # estimated rows out of the access path (EXPLAIN)


# ----------------------------------------------------------------------
# Access-path selection
# ----------------------------------------------------------------------


def _key_range(
    prefix: Tuple[Any, ...], width: int, interval: Optional[_Interval]
) -> KeyRange:
    """Convert merged bounds on one column into index-key bounds.

    ``prefix`` carries the equality-bound leading columns and ``width``
    the index's total column count.  The ``MAX_KEY`` padding discipline
    lives in :func:`repro.storage.plan._probe_key_range` (shared with
    the join operator's probe ranges); the one difference is that with
    no equality prefix an unbounded side stays ``None`` (fully open)
    rather than degenerating to an empty-tuple bound.
    """
    low_pair = interval.low if interval is not None else None
    high_pair = interval.high if interval is not None else None
    low, high, include_low, include_high = _probe_key_range(
        prefix, width, low_pair, high_pair
    )
    if not prefix:
        if low_pair is None:
            low = None
        if high_pair is None:
            high = None
    return low, high, include_low, include_high


def _hashable_values(values: Sequence[Any]) -> bool:
    try:
        for value in values:
            hash(value)
    except TypeError:
        return False
    return True


def _choose_access_path(
    table: Table,
    binding: str,
    alias: Optional[str],
    local: List[Expr],
    order_spec: Optional[List[Tuple[str, bool]]] = None,
) -> Tuple[TableScanNode, List[Expr], bool]:
    """Enumerate candidate access paths, cost each, and keep the
    cheapest; returns the access node, leftover conjuncts that must
    still be filtered, and whether the node already yields rows in the
    requested ORDER BY order."""
    eq_bindings: Dict[str, Any] = {}
    eq_sources: Dict[str, Expr] = {}
    for part in local:
        bound = column_bound(part)
        if bound is not None and bound[1] == "=":
            column = _strip_alias(bound[0], binding)
            eq_bindings[column] = bound[2]
            eq_sources[column] = part
    eq_columns = tuple(eq_bindings)
    total_rows = table.row_count
    wants_order = order_spec is not None
    trivially_ordered = _trivial_order(order_spec, eq_columns)
    candidates: List[_Candidate] = []
    rank = 0

    # Statistics are computed lazily and cached per planning call: a
    # query that resolves to a SeqScan or a plain probe never pays the
    # ordered indexes' key-count sampling.
    specs = list(table.index_specs.values())
    stats_cache: Dict[str, IndexStats] = {}

    def stats_of(name: str) -> IndexStats:
        stats = stats_cache.get(name)
        if stats is None:
            stats = stats_cache[name] = _table_index_stats(table, name)
        return stats

    # Distinct-key counts per covered column set: any index over exactly
    # those columns measures their joint selectivity, whichever access
    # path ends up using it.  Falls back to the geometric spread
    # assumption (_eq_prefix_selectivity) for uncovered prefixes.
    distinct_by_columns: Dict[Tuple[str, ...], int] = {}

    def eq_rows(
        columns: Sequence[str], fallback_index: str, width: int, depth: int
    ) -> float:
        """Expected rows matching equality on ``columns``."""
        if not distinct_by_columns:
            for spec in specs:
                key = tuple(sorted(spec.columns))
                keys = stats_of(spec.name).keys
                distinct_by_columns[key] = max(distinct_by_columns.get(key, 0), keys)
        distinct = distinct_by_columns.get(tuple(sorted(columns)))
        if distinct:
            return total_rows / distinct
        return total_rows * _eq_prefix_selectivity(
            stats_of(fallback_index), depth, width
        )

    # Equality candidates: indexes fully covered by equality conjuncts
    # (including the primary-key-backed ones).
    for spec in specs:
        rank += 1
        if not all(column in eq_bindings for column in spec.columns):
            continue
        key = tuple(eq_bindings[column] for column in spec.columns)
        if not _hashable_values(key):
            continue  # an unhashable constant cannot probe a bucket
        if any(value is None for value in key):
            # `col = NULL` is always False under Cmp semantics, but a
            # hash probe with a NULL key would *find* NULL rows — keep
            # the conjunct in the filter instead
            continue
        if spec.ordered and not all(
            _bound_safe(table, column, [eq_bindings[column]])
            for column in spec.columns
        ):
            # ordered lookups bisect: a mixed-type or NULL-adjacent
            # probe would raise where the equivalent filter is False
            continue
        stats = stats_of(spec.name)
        used = {eq_sources[column] for column in spec.columns}
        leftover = [part for part in local if part not in used]
        est = 1.0 if stats.unique else total_rows / max(1, stats.keys)
        row_cost = _ORDERED_ROW_COST if spec.ordered else _HASH_ROW_COST
        cost = _candidate_cost(
            est, row_cost, 1, trivially_ordered, wants_order, total_rows
        )
        candidates.append(
            _Candidate(
                cost,
                rank,
                IndexEqScan(table, spec.name, key, alias),
                leftover,
                trivially_ordered,
                est,
            )
        )

    # Prefix candidates: a PrefixMatch on the leading column of an
    # ordered index (the descendant-of pattern).
    for part in local:
        if not isinstance(part, PrefixMatch):
            continue
        column = _strip_alias(part.column.name, binding)
        for spec in specs:
            rank += 1
            if not spec.ordered or spec.columns[0] != column:
                continue
            direction = _match_index_order(spec.columns, eq_columns, order_spec)
            satisfied = direction is False  # prefix scans stream forward only
            leftover = [p for p in local if p is not part]
            est = max(1.0, total_rows * _PREFIX_SELECTIVITY)
            cost = _candidate_cost(
                est, _ORDERED_ROW_COST, 1, satisfied, wants_order, total_rows
            )
            candidates.append(
                _Candidate(
                    cost,
                    rank,
                    IndexPrefixScan(table, spec.name, part.prefix, alias),
                    leftover,
                    satisfied,
                    est,
                )
            )

    # Range and multi-range candidates over ordered indexes: equality
    # bound leading columns, then either one merged interval or a
    # disjunction (IN list / OR-of-ranges) on the next column.
    intervals = _analyze_intervals(local, binding)
    disjunctions: List[Tuple[Expr, str, List[_Interval]]] = []
    for part in local:
        got = _disjunction_intervals(part, binding)
        if got is not None:
            disjunctions.append((part, got[0], got[1]))

    for spec in specs:
        if not spec.ordered:
            rank += 2
            continue
        width = len(spec.columns)
        eq_len = 0
        while (
            eq_len < width
            and spec.columns[eq_len] in eq_bindings
            and _bound_safe(
                table, spec.columns[eq_len], [eq_bindings[spec.columns[eq_len]]]
            )
        ):
            eq_len += 1
        # a fully equality-bound index is the eq candidate's business
        eq_len = min(eq_len, width - 1)
        range_column = spec.columns[eq_len]
        prefix = tuple(eq_bindings[c] for c in spec.columns[:eq_len])
        prefix_used = {eq_sources[c] for c in spec.columns[:eq_len]}
        direction = _match_index_order(spec.columns, eq_columns, order_spec)
        satisfied = direction is not None

        # one merged interval on the range column
        rank += 1
        interval = intervals.get(range_column)
        if interval is not None:
            bound_values = [pair[0] for pair in (interval.low, interval.high) if pair]
            if not _bound_safe(table, range_column, bound_values):
                interval = None
        if eq_len > 0 or interval is not None or satisfied:
            prefix_rows = (
                eq_rows(spec.columns[:eq_len], spec.name, width, eq_len)
                if eq_len
                else float(total_rows)
            )
            fraction: Optional[float] = None
            if interval is not None:
                # histogram-measured bound tightness when available; the
                # fixed per-bound factors remain the fallback
                histogram = _table_histogram(table, range_column)
                if histogram is not None:
                    fraction = histogram.range_fraction(interval.low, interval.high)
            if fraction is None:
                bounds = int(interval is not None and interval.low is not None) + int(
                    interval is not None and interval.high is not None
                )
                fraction = _BOUND_SELECTIVITY[bounds]
            est = prefix_rows * fraction
            cost = _candidate_cost(
                est, _ORDERED_ROW_COST, 1, satisfied, wants_order, total_rows
            )
            used = set(prefix_used)
            if interval is not None:
                used.update(interval.sources)
            leftover = [p for p in local if p not in used]
            low, high, include_low, include_high = _key_range(prefix, width, interval)
            node: TableScanNode = IndexRangeScan(
                table,
                spec.name,
                low,
                high,
                include_low,
                include_high,
                alias,
                reverse=direction is True,
            )
            candidates.append(_Candidate(cost, rank, node, leftover, satisfied, est))

        # a disjunction on the range column: the multi-range union
        rank += 1
        for part, column, part_intervals in disjunctions:
            if column != range_column:
                continue
            values = [
                pair[0]
                for iv in part_intervals
                for pair in (iv.low, iv.high)
                if pair is not None
            ]
            # checked even with zero intervals: an all-NULL IN list is
            # only "matches nothing" on a NOT NULL column — the filter's
            # Python-`in` semantics make NULL IN (NULL) *true*, so a
            # nullable column must keep the conjunct in the filter
            if not _bound_safe(table, range_column, values):
                continue
            ranges = [_key_range(prefix, width, iv) for iv in part_intervals]
            # the sweep's canonical order: sorted once here, and the node
            # carries presorted=True so executions skip the re-sort.
            # Cannot raise: _bound_safe confined every bound to one type
            # family, and the key handles None lows and MAX_KEY padding.
            ranges.sort(key=_range_start_key)
            prefix_rows = (
                eq_rows(spec.columns[:eq_len], spec.name, width, eq_len)
                if eq_len
                else float(total_rows)
            )
            point_rows = eq_rows(
                spec.columns[: eq_len + 1], spec.name, width, eq_len + 1
            )
            histogram = _table_histogram(table, range_column)
            est = 0.0
            for iv in part_intervals:
                if _is_point(iv):
                    est += point_rows
                    continue
                fraction = (
                    histogram.range_fraction(iv.low, iv.high)
                    if histogram is not None
                    else None
                )
                if fraction is None:
                    bounds = int(iv.low is not None) + int(iv.high is not None)
                    fraction = _BOUND_SELECTIVITY[bounds]
                est += prefix_rows * fraction
            cost = _candidate_cost(
                est,
                _ORDERED_ROW_COST,
                len(ranges),
                satisfied,
                wants_order,
                total_rows,
            )
            used = prefix_used | {part}
            leftover = [p for p in local if p not in used]
            node = IndexMultiRangeScan(
                table,
                spec.name,
                ranges,
                alias,
                reverse=direction is True,
                presorted=True,
            )
            candidates.append(_Candidate(cost, rank, node, leftover, satisfied, est))

    # The fallback everyone competes against.
    rank += 1
    seq_cost = _candidate_cost(
        float(total_rows), _SEQ_ROW_COST, 0, trivially_ordered, wants_order, total_rows
    )
    candidates.append(
        _Candidate(
            seq_cost,
            rank,
            SeqScan(table, alias),
            list(local),
            trivially_ordered,
            float(total_rows),
        )
    )

    best = min(candidates, key=lambda candidate: (candidate.cost, candidate.rank))
    best.node.est_rows = min(max(best.est, 0.0), float(total_rows))  # EXPLAIN estimate
    return best.node, best.leftover, best.ordered


# ----------------------------------------------------------------------
# Join planning
# ----------------------------------------------------------------------
#
# Joins are planned as a *join graph*: each table binding is a node and
# every equality condition between two bindings — whether written in an
# ``ON`` clause (any operand order, multi-conjunct) or as a WHERE
# conjunct — is an edge.  Join order is chosen by cost (dynamic
# programming over subsets up to ``_DP_RELATIONS`` relations, greedy
# smallest-estimated-intermediate beyond), and each step picks its
# physical operator: an ``IndexNestedLoopJoin`` probing the new table's
# index with batched left-side keys, or a ``HashJoinNode`` whose build
# side is the smaller estimated input.  Equi-join selectivity is
# ``1 / max(distinct(left column), distinct(right column))`` with
# distinct counts from per-column equi-depth histograms
# (``Table.column_histogram``).
#
# Reordering and operator substitution must be *invisible* next to the
# naive left-deep oracle — same result multiset, same errors.  The
# checks in ``_reorder_safe`` guarantee that: every join condition must
# attribute each side to exactly one relation (so its value cannot
# depend on evaluation order), shared unqualified column names require
# aliases (so env merging cannot raise for one order and not another),
# and non-equi ON residuals must be shapes whose evaluation cannot
# raise (so deferring them to a different intermediate cannot hide an
# error).  Queries that fail the checks keep the written join order —
# with physical-operator selection still active where it is provably
# equivalent — and anything murkier falls all the way back to the
# legacy hash-join pipeline.


@dataclass
class _Relation:
    """One table binding in the join graph."""

    ref: TableRef
    table: Table
    local: List[Expr]
    est: float = 0.0  # estimated rows after local predicates

    @property
    def binding(self) -> str:
        return self.ref.binding


@dataclass
class _JoinCondition:
    """A JoinSpec, normalized: binding-attributed equality pairs plus
    any non-equi residual, for the relation at index ``right``."""

    right: int
    pairs: List[Tuple[Expr, Expr]]
    residual: Optional[Expr]


@dataclass
class _Pair:
    """One equality condition at a join step: ``left`` evaluates on the
    accumulated side, ``right`` on the newly joined relation."""

    left: Expr
    right: Expr
    left_owner: Optional[int]  # unique owning relation, when attributable
    right_col: Optional[str]   # unqualified column on the joined table


@dataclass
class _InljPlan:
    """A costed IndexNestedLoopJoin candidate for one join step."""

    index_name: str
    left_exprs: Tuple[Expr, ...]
    uncovered: List[_Pair]
    residual: Optional[Expr]
    tail_low: Optional[Tuple[Any, bool]]
    tail_high: Optional[Tuple[Any, bool]]
    cost: float


@dataclass
class _StepPlan:
    """The chosen physical operator for one join step."""

    op: str  # "inlj" | "hash" | "nlj"
    cost: float
    out: float
    pairs: List[_Pair]
    inlj: Optional[_InljPlan] = None
    build_left: bool = False


#: exhaustive DP join ordering up to this many relations; greedy beyond
_DP_RELATIONS = 4
_HASH_BUILD_COST = 1.5  # per build-side row: materialize + hash insert


def _and_all(parts: Sequence[Expr]) -> Optional[Expr]:
    if not parts:
        return None
    if len(parts) == 1:
        return parts[0]
    return And(*parts)


def _owners(name: str, relations: Sequence[_Relation]) -> List[int]:
    """Relations where a ``Col(name)`` reference resolves *at runtime*:
    unqualified names exist in every relation whose table has the
    column; qualified ``a.c`` only where ``a`` is the relation's alias
    (environments carry qualified keys only for aliased tables)."""
    if "." in name:
        qualifier, column = name.split(".", 1)
        return [
            index
            for index, rel in enumerate(relations)
            if rel.ref.alias == qualifier and rel.table.schema.has_column(column)
        ]
    return [
        index
        for index, rel in enumerate(relations)
        if rel.table.schema.has_column(name)
    ]


def _resolves_on(name: str, rel: _Relation) -> Optional[str]:
    """The unqualified column of ``rel`` that ``Col(name)`` reads, or
    ``None`` when the reference does not resolve on this relation."""
    if "." in name:
        qualifier, column = name.split(".", 1)
        if rel.ref.alias == qualifier and rel.table.schema.has_column(column):
            return column
        return None
    return name if rel.table.schema.has_column(name) else None


def _unique_owner(expr: Expr, relations: Sequence[_Relation]) -> Optional[int]:
    if not isinstance(expr, Col):
        return None
    owners = _owners(expr.name, relations)
    return owners[0] if len(owners) == 1 else None


def _normalize_condition(
    spec: JoinSpec, right_index: int, relations: Sequence[_Relation]
) -> _JoinCondition:
    """Normalize a JoinSpec's equality pairs by binding: a pair written
    ``ON b.x = a.x`` (new table first) is swapped so the left expression
    references prior bindings and the right the joined table.  Sides
    that stay ambiguous or unresolvable keep their written order, which
    preserves the legacy behavior (including its errors) exactly."""
    pairs: List[Tuple[Expr, Expr]] = []
    for left, right in spec.pairs:
        if isinstance(left, Col) and isinstance(right, Col):
            left_owners = _owners(left.name, relations)
            right_owners = _owners(right.name, relations)
            if (
                left_owners == [right_index]
                and right_owners
                and right_index not in right_owners
            ):
                left, right = right, left
        pairs.append((left, right))
    return _JoinCondition(right_index, pairs, spec.residual)


_FAMILY_OF_TYPE = {
    ColumnType.INT: "n",
    ColumnType.REAL: "n",
    ColumnType.TEXT: "s",
    ColumnType.CHAR: "s",
}


def _type_family(column_type: ColumnType) -> Optional[str]:
    return _FAMILY_OF_TYPE.get(column_type)


def _value_family(value: Any) -> Optional[str]:
    if value is None:
        return "null"  # comparisons with NULL are False, never raising
    if isinstance(value, bool):
        return None
    if isinstance(value, (int, float)):
        return "n"
    if isinstance(value, str):
        return "s"
    return None


def _shape_safe(part: Expr, family_of) -> bool:
    """Whether evaluating ``part`` can be deferred to a different row
    set than the oracle evaluates it on: True only when evaluation can
    never raise (columns pre-checked resolvable by the caller;
    ``family_of`` maps a column name to its type family).  Equality and
    membership use ``==`` (total in Python); ordering comparisons are
    safe only within one type family."""
    if isinstance(part, (And, Or)):
        return all(_shape_safe(inner, family_of) for inner in part.parts)
    if isinstance(part, Not):
        return _shape_safe(part.inner, family_of)
    if isinstance(part, (IsNull, InList)):
        return isinstance(part.inner, Col)
    if isinstance(part, PrefixMatch):
        return True
    if isinstance(part, Cmp):
        if part.op in ("=", "!="):
            return isinstance(part.left, (Col, Const)) and isinstance(
                part.right, (Col, Const)
            )
        families = set()
        for side in (part.left, part.right):
            if isinstance(side, Col):
                family = family_of(side.name)
            elif isinstance(side, Const):
                family = _value_family(side.value)
                if family == "null":
                    continue
            else:
                return False
            if family is None:
                return False
            families.add(family)
        return len(families) <= 1
    return False


def _eval_safe(rel: _Relation, part: Expr) -> bool:
    """Whether ``part`` (a local conjunct of ``rel``) can be evaluated
    lazily on probed rows instead of on every row of the relation, as
    IndexNestedLoopJoin residuals are."""
    columns = part.columns()
    if any(_resolves_on(name, rel) is None for name in columns):
        return False

    def family_of(name: str) -> Optional[str]:
        column = _resolves_on(name, rel)
        assert column is not None
        return _type_family(rel.table.schema.column(column).type)

    return _shape_safe(part, family_of)


def _cross_safe(part: Expr, relations: Sequence[_Relation], step: int) -> bool:
    """Whether an ON residual can move to a different join step under
    reordering: every column must have exactly one owner no later than
    the condition's own step (so its value is order-independent and the
    oracle could evaluate it), and the shape must be non-raising."""
    owner_of: Dict[str, int] = {}
    for name in part.columns():
        owners = _owners(name, relations)
        if len(owners) != 1 or owners[0] > step:
            return False
        owner_of[name] = owners[0]

    def family_of(name: str) -> Optional[str]:
        rel = relations[owner_of[name]]
        column = _resolves_on(name, rel)
        assert column is not None
        return _type_family(rel.table.schema.column(column).type)

    return _shape_safe(part, family_of)


def _shared_names(relations: Sequence[_Relation]) -> Dict[str, List[int]]:
    shared: Dict[str, List[int]] = {}
    for index, rel in enumerate(relations):
        for name in rel.table.schema.column_names:
            shared.setdefault(name, []).append(index)
    return {name: owners for name, owners in shared.items() if len(owners) > 1}


def _shared_names_order_free(
    relations: Sequence[_Relation],
    edges: Sequence[Tuple[int, int, Expr, Expr]],
) -> bool:
    """Whether every shared unqualified column name yields the same
    merged value under any join order.

    A name owned by several relations is shadowed in the merged
    environment by whichever side merged first, so reordering may only
    proceed when the shadowing cannot matter: for each shared name, the
    owning relations must be connected by equality edges equating *that
    very column* (same declared type, so equal values are also
    indistinguishable values) — then every owner agrees on the value in
    every output row, whatever the order.  The provenance workload's
    ``p JOIN t ON p.tid = t.tid`` is exactly this shape."""
    for name, owners in _shared_names(relations).items():
        adjacency: Dict[int, set] = {index: set() for index in owners}
        column_type = None
        types_match = True
        for index in owners:
            owner_type = relations[index].table.schema.column(name).type
            if column_type is None:
                column_type = owner_type
            elif owner_type is not column_type:
                types_match = False
        if not types_match:
            return False
        for a, b, a_expr, b_expr in edges:
            if a not in adjacency or b not in adjacency:
                continue
            if not (isinstance(a_expr, Col) and isinstance(b_expr, Col)):
                continue
            if (
                _resolves_on(a_expr.name, relations[a]) == name
                and _resolves_on(b_expr.name, relations[b]) == name
            ):
                adjacency[a].add(b)
                adjacency[b].add(a)
        seen = {owners[0]}
        frontier = [owners[0]]
        while frontier:
            for peer in adjacency[frontier.pop()]:
                if peer not in seen:
                    seen.add(peer)
                    frontier.append(peer)
        if seen != set(owners):
            return False
    return True


def _reorder_safe(
    relations: Sequence[_Relation], conditions: Sequence[_JoinCondition]
) -> bool:
    """Whether join-order enumeration is provably invisible (see the
    section comment).  False falls back to the written order.  A second
    gate, :func:`_shared_names_order_free`, runs once the full edge set
    (including WHERE-implied edges) is known."""
    for owners in _shared_names(relations).values():
        if any(relations[index].ref.alias is None for index in owners):
            return False  # unaliased shared names: merge behavior is order-sensitive
    for condition in conditions:
        if not condition.pairs:
            return False  # non-equi-only joins keep their written place
        for left, right in condition.pairs:
            left_owner = _unique_owner(left, relations)
            right_owner = _unique_owner(right, relations)
            if (
                left_owner is None
                or right_owner != condition.right
                or left_owner >= condition.right
            ):
                return False
        if condition.residual is not None:
            for part in conjuncts(condition.residual):
                if not _cross_safe(part, relations, condition.right):
                    return False
    return True


# ---- statistics ------------------------------------------------------


def _column_distinct(table: Table, column: str) -> float:
    """Estimated distinct values of one column: histogram first, an
    index over exactly that column second, square-root heuristic last."""
    histogram = _table_histogram(table, column)
    if histogram is not None:
        return float(histogram.distinct)
    for spec in table.index_specs.values():
        if spec.columns == (column,):
            return float(max(1, _table_index_stats(table, spec.name).keys))
    return max(1.0, float(table.row_count) ** 0.5)


def _conjunct_selectivity(table: Table, binding: str, part: Expr) -> float:
    """Fraction of a relation's rows expected to survive one local
    conjunct — only has to rank join orders, not be right."""
    bound = column_bound(part)
    if bound is not None:
        column = _strip_alias(bound[0], binding)
        if not table.schema.has_column(column):
            return 1.0
        if bound[1] == "=":
            return min(1.0, 1.0 / _column_distinct(table, column))
        histogram = _table_histogram(table, column)
        if histogram is not None:
            pair = (bound[2], bound[1] in (">=", "<="))
            fraction = histogram.range_fraction(
                pair if bound[1] in (">", ">=") else None,
                pair if bound[1] in ("<", "<=") else None,
            )
            if fraction is not None:
                return fraction
        return _BOUND_SELECTIVITY[1]
    if isinstance(part, InList) and isinstance(part.inner, Col):
        column = _strip_alias(part.inner.name, binding)
        if table.schema.has_column(column):
            return min(1.0, len(part.options) / _column_distinct(table, column))
        return 0.5
    if isinstance(part, PrefixMatch):
        return _PREFIX_SELECTIVITY
    if isinstance(part, IsNull):
        return 0.9 if part.negated else 0.1
    return 0.5


def _estimate_relation_rows(table: Table, binding: str, local: List[Expr]) -> float:
    rows = float(table.row_count)
    selectivity = 1.0
    for part in local:
        selectivity *= _conjunct_selectivity(table, binding, part)
    return min(rows, max(rows * selectivity, 0.0))


def _pair_distinct(relations: Sequence[_Relation], pair: _Pair, right: int) -> float:
    d_right = (
        _column_distinct(relations[right].table, pair.right_col)
        if pair.right_col is not None
        else 1.0
    )
    d_left = d_right
    if pair.left_owner is not None and isinstance(pair.left, Col):
        column = _resolves_on(pair.left.name, relations[pair.left_owner])
        if column is not None:
            d_left = _column_distinct(relations[pair.left_owner].table, column)
    return max(d_left, d_right)


# ---- physical operator selection per join step -----------------------


def _ordered_probe_safe(
    relations: Sequence[_Relation],
    placed: Sequence[int],
    pair: _Pair,
    table: Table,
    column: str,
) -> bool:
    """Whether probing an *ordered* index column with this pair's left
    values can never raise: the index column NOT NULL and orderable,
    and every relation the left side could read from agreeing on the
    type family (probe values bisect against stored keys)."""
    column_spec = table.schema.column(column)
    if column_spec.nullable:
        return False
    family = _type_family(column_spec.type)
    if family is None:
        return False
    if not isinstance(pair.left, Col):
        return False
    owners = (
        [pair.left_owner]
        if pair.left_owner is not None
        else [
            index
            for index in placed
            if _resolves_on(pair.left.name, relations[index]) is not None
        ]
    )
    if not owners:
        return False
    for index in owners:
        left_column = _resolves_on(pair.left.name, relations[index])
        if left_column is None:
            return False
        left_family = _type_family(relations[index].table.schema.column(left_column).type)
        if left_family != family:
            return False
    return True


def _pair_filter_safe(
    pair: _Pair, relations: Sequence[_Relation], placed: Sequence[int], right: int
) -> bool:
    """Whether an uncovered pair may be checked as an equality filter
    above the join: both sides must resolve to exactly one relation (so
    the merged environment cannot shadow either side)."""
    left_owner = _unique_owner(pair.left, relations)
    right_owner = _unique_owner(pair.right, relations)
    return left_owner in placed and right_owner == right


def _best_inlj(
    relations: Sequence[_Relation],
    placed: Sequence[int],
    placed_est: float,
    right: int,
    pairs: List[_Pair],
) -> Optional[_InljPlan]:
    """The cheapest IndexNestedLoopJoin candidate for this step, or
    ``None`` when no index of the joined table can serve the equality
    pairs safely (see the safety helpers above — the local conjuncts it
    would defer must be non-raising, probe families must match, and
    uncovered pairs must be filterable without ambiguity)."""
    rel = relations[right]
    table = rel.table
    if not pairs:
        return None
    if not all(_eval_safe(rel, part) for part in rel.local):
        return None
    by_col: Dict[str, _Pair] = {}
    for pair in pairs:
        if pair.right_col is not None and pair.right_col not in by_col:
            by_col[pair.right_col] = pair
    if not by_col:
        return None
    rows = float(table.row_count)
    intervals = _analyze_intervals(rel.local, rel.binding)
    best: Optional[_InljPlan] = None
    for name, spec in table.index_specs.items():
        tail_low: Optional[Tuple[Any, bool]] = None
        tail_high: Optional[Tuple[Any, bool]] = None
        tail_sources: set = set()
        fraction = 1.0
        if spec.ordered:
            eq_len = 0
            while eq_len < len(spec.columns):
                pair = by_col.get(spec.columns[eq_len])
                if pair is None or not _ordered_probe_safe(
                    relations, placed, pair, table, spec.columns[eq_len]
                ):
                    break
                eq_len += 1
            if eq_len == 0:
                continue
            covered = [by_col[column] for column in spec.columns[:eq_len]]
            if eq_len < len(spec.columns):
                interval = intervals.get(spec.columns[eq_len])
                if interval is not None:
                    values = [p[0] for p in (interval.low, interval.high) if p]
                    if _bound_safe(table, spec.columns[eq_len], values):
                        tail_low, tail_high = interval.low, interval.high
                        tail_sources = set(map(id, interval.sources))
                        histogram = _table_histogram(table, spec.columns[eq_len])
                        tail_fraction = (
                            histogram.range_fraction(tail_low, tail_high)
                            if histogram is not None
                            else None
                        )
                        if tail_fraction is None:
                            tail_fraction = _BOUND_SELECTIVITY[
                                int(tail_low is not None) + int(tail_high is not None)
                            ]
                        fraction = tail_fraction
            row_cost = _ORDERED_ROW_COST
        else:
            if not all(column in by_col for column in spec.columns):
                continue
            covered = [by_col[column] for column in spec.columns]
            row_cost = _HASH_ROW_COST
        covered_ids = {id(pair) for pair in covered}
        uncovered = [pair for pair in pairs if id(pair) not in covered_ids]
        if any(
            not _pair_filter_safe(pair, relations, placed, right) for pair in uncovered
        ):
            continue
        selectivity = 1.0
        for pair in covered:
            selectivity /= max(_pair_distinct(relations, pair, right), 1.0)
        fetched = placed_est * rows * selectivity * fraction
        cost = placed_est * (1.0 + _PROBE_COST) + fetched * row_cost
        if best is None or cost < best.cost:
            residual = _and_all(
                [part for part in rel.local if id(part) not in tail_sources]
            )
            left_exprs = tuple(pair.left for pair in covered)
            best = _InljPlan(
                name, left_exprs, uncovered, residual, tail_low, tail_high, cost
            )
    return best


def _plan_join_step(
    relations: Sequence[_Relation],
    placed: Sequence[int],
    placed_est: float,
    right: int,
    pairs: List[_Pair],
) -> _StepPlan:
    """Cost the physical alternatives for joining ``right`` into the
    accumulated plan and keep the cheapest."""
    rel = relations[right]
    if not pairs:
        out = placed_est * rel.est * 0.5
        return _StepPlan("nlj", placed_est * max(rel.est, 1.0), out, pairs)
    selectivity = 1.0
    for pair in pairs:
        selectivity /= max(_pair_distinct(relations, pair, right), 1.0)
    out = placed_est * rel.est * selectivity
    build = min(placed_est, rel.est)
    probe = max(placed_est, rel.est)
    hash_cost = _HASH_BUILD_COST * build + probe + out
    # Swapping the build side also swaps which input is *evaluated*
    # first; that is only invisible when the right side's filters
    # cannot raise (else the oracle, which always builds right first,
    # could surface a different error type).
    build_left = placed_est < rel.est and all(
        _eval_safe(rel, part) for part in rel.local
    )
    step = _StepPlan("hash", hash_cost, out, pairs, build_left=build_left)
    inlj = _best_inlj(relations, placed, placed_est, right, pairs)
    if inlj is not None and inlj.cost < hash_cost:
        step = _StepPlan("inlj", inlj.cost, out, pairs, inlj=inlj)
    return step


# ---- join-order enumeration ------------------------------------------


def _pairs_between(
    relations: Sequence[_Relation],
    placed: Sequence[int],
    right: int,
    edges: Sequence[Tuple[int, int, Expr, Expr]],
) -> List[_Pair]:
    placed_set = set(placed)
    pairs: List[_Pair] = []
    for a, b, a_expr, b_expr in edges:
        if b == right and a in placed_set:
            left, right_expr, owner = a_expr, b_expr, a
        elif a == right and b in placed_set:
            left, right_expr, owner = b_expr, a_expr, b
        else:
            continue
        right_col = (
            _resolves_on(right_expr.name, relations[right])
            if isinstance(right_expr, Col)
            else None
        )
        pairs.append(_Pair(left, right_expr, owner, right_col))
    return pairs


def _enumerate_join_order(
    relations: Sequence[_Relation], edges: Sequence[Tuple[int, int, Expr, Expr]]
) -> List[int]:
    """Pick a left-deep join order: exhaustive DP over subsets for small
    queries, greedy smallest-estimated-intermediate beyond.  The edge
    set is connected (every ON clause links its table to an earlier
    one), so cross products never arise."""
    n = len(relations)

    def connects(mask: int, j: int) -> bool:
        return any(
            (a == j and (mask >> b) & 1) or (b == j and (mask >> a) & 1)
            for a, b, _ae, _be in edges
        )

    if n <= _DP_RELATIONS:
        best: Dict[int, Tuple[float, float, Tuple[int, ...]]] = {
            1 << i: (relations[i].est, relations[i].est, (i,)) for i in range(n)
        }
        full = (1 << n) - 1
        for mask in range(1, full):
            entry = best.get(mask)
            if entry is None:
                continue
            cost, est, order = entry
            for j in range(n):
                if (mask >> j) & 1 or not connects(mask, j):
                    continue
                pairs = _pairs_between(relations, order, j, edges)
                step = _plan_join_step(relations, order, est, j, pairs)
                candidate = (cost + step.cost, step.out, order + (j,))
                key = mask | (1 << j)
                existing = best.get(key)
                if existing is None or (candidate[0], candidate[2]) < (
                    existing[0],
                    existing[2],
                ):
                    best[key] = candidate
        return list(best[full][2])

    start = min(range(n), key=lambda i: (relations[i].est, i))
    order = [start]
    mask = 1 << start
    est = relations[start].est
    while len(order) < n:
        chosen: Optional[Tuple[float, float, int]] = None
        for j in range(n):
            if (mask >> j) & 1 or not connects(mask, j):
                continue
            pairs = _pairs_between(relations, order, j, edges)
            step = _plan_join_step(relations, order, est, j, pairs)
            key = (step.out, step.cost, j)
            if chosen is None or key < chosen:
                chosen = key
        assert chosen is not None  # the graph is connected by construction
        order.append(chosen[2])
        mask |= 1 << chosen[2]
        est = chosen[0]
    return order


# ---- plan assembly ---------------------------------------------------


def _access_with_filter(rel: _Relation) -> Tuple[PlanNode, bool]:
    node, leftover, _order = _choose_access_path(
        rel.table, rel.binding, rel.ref.alias, rel.local
    )
    result: PlanNode = node
    if leftover:
        result = FilterNode(result, _and_all(leftover))
    return result, not leftover


def _assemble_joins(
    relations: Sequence[_Relation],
    first: int,
    steps: Sequence[Tuple[int, List[_Pair], List[Expr], Optional[Expr]]],
) -> PlanNode:
    """Build the physical join tree: ``steps`` lists, per join, the new
    relation, its equality pairs, the filters to apply once the join's
    bindings are all present, and (for pair-less steps) the nested-loop
    predicate."""
    node, _clean = _access_with_filter(relations[first])
    placed: List[int] = [first]
    placed_est = relations[first].est
    for right, pairs, post_filters, nlj_predicate in steps:
        rel = relations[right]
        step = _plan_join_step(relations, placed, placed_est, right, pairs)
        if step.op == "inlj":
            plan = step.inlj
            assert plan is not None
            node = IndexNestedLoopJoin(
                node,
                rel.table,
                plan.index_name,
                plan.left_exprs,
                rel.ref.alias,
                plan.residual,
                plan.tail_low,
                plan.tail_high,
            )
            node.est_rows = step.out
            for pair in plan.uncovered:
                node = FilterNode(node, Cmp("=", pair.left, pair.right))
        elif step.op == "hash":
            right_node, _clean = _access_with_filter(rel)
            node = HashJoinNode(
                node,
                right_node,
                tuple(pair.left for pair in pairs),
                tuple(pair.right for pair in pairs),
                build_left=step.build_left,
            )
            node.est_rows = step.out
        else:
            right_node, _clean = _access_with_filter(rel)
            node = NestedLoopJoinNode(node, right_node, nlj_predicate)
            node.est_rows = step.out
        for part in post_filters:
            node = FilterNode(node, part)
        placed.append(right)
        placed_est = step.out
    return node


def _plan_joins(
    relations: List[_Relation],
    conditions: List[_JoinCondition],
    residual: Optional[Expr],
) -> Tuple[PlanNode, Optional[Expr]]:
    """The cost-based join path; returns the join tree and whatever
    WHERE residual was not absorbed as join edges."""
    for rel in relations:
        rel.est = _estimate_relation_rows(rel.table, rel.binding, rel.local)

    if _reorder_safe(relations, conditions):
        edges: List[Tuple[int, int, Expr, Expr]] = []
        on_filters: List[Tuple[frozenset, Expr]] = []
        for condition in conditions:
            for left, right in condition.pairs:
                owner = _unique_owner(left, relations)
                assert owner is not None  # _reorder_safe checked
                edges.append((owner, condition.right, left, right))
            if condition.residual is not None:
                for part in conjuncts(condition.residual):
                    owners = frozenset(
                        _owners(name, relations)[0] for name in part.columns()
                    )
                    on_filters.append((owners or frozenset({condition.right}), part))
        # WHERE-implied edges: cross-binding equality conjuncts with
        # uniquely attributable sides join the graph
        residual_parts: List[Expr] = []
        for part in conjuncts(residual) if residual is not None else ():
            if (
                isinstance(part, Cmp)
                and part.op == "="
                and isinstance(part.left, Col)
                and isinstance(part.right, Col)
            ):
                left_owner = _unique_owner(part.left, relations)
                right_owner = _unique_owner(part.right, relations)
                if (
                    left_owner is not None
                    and right_owner is not None
                    and left_owner != right_owner
                ):
                    a, b = sorted((left_owner, right_owner))
                    if left_owner == a:
                        edges.append((a, b, part.left, part.right))
                    else:
                        edges.append((a, b, part.right, part.left))
                    continue
            residual_parts.append(part)

        if _shared_names_order_free(relations, edges):
            residual = _and_all(residual_parts)
            order = _enumerate_join_order(relations, edges)
            steps: List[Tuple[int, List[_Pair], List[Expr], Optional[Expr]]] = []
            placed: List[int] = [order[0]]
            pending = list(on_filters)
            for right in order[1:]:
                pairs = _pairs_between(relations, placed, right, edges)
                placed.append(right)
                available = set(placed)
                ready = [part for owners, part in pending if owners <= available]
                pending = [
                    (owners, part)
                    for owners, part in pending
                    if not owners <= available
                ]
                steps.append((right, pairs, ready, None))
            return _assemble_joins(relations, order[0], steps), residual

    # Written order, physical selection still on where provably safe.
    steps = []
    for condition in conditions:
        rel = relations[condition.right]
        pairs = [
            _Pair(
                left,
                right,
                _unique_owner(left, relations),
                _resolves_on(right.name, rel) if isinstance(right, Col) else None,
            )
            for left, right in condition.pairs
        ]
        if pairs:
            post = list(conjuncts(condition.residual)) if condition.residual else []
            steps.append((condition.right, pairs, post, None))
        else:
            steps.append((condition.right, pairs, [], condition.residual))
    return _assemble_joins(relations, 0, steps), residual


def _reducible_joins(
    query: Query,
    relations: Sequence[_Relation],
    conditions: Sequence[_JoinCondition],
    residual: Optional[Expr],
) -> Dict[int, _JoinCondition]:
    """Relations a DISTINCT query can *semi-join-reduce*, keyed by
    relation index, each with its equality pairs oriented ``(kept side,
    reduced side)``.

    Under ``SELECT DISTINCT`` a joined relation that contributes nothing
    downstream — no output, ORDER BY, or WHERE-residual reference, no
    other join edge through its binding — only multiplies row
    multiplicity, and DISTINCT erases multiplicity.  An existence check
    (:class:`~repro.storage.plan.HashSemiJoinNode`) is therefore
    set-equivalent to the full join, skips the reduced relation's
    environment merging entirely, and never re-inflates the DISTINCT
    input.  Checks are conservative by column *resolution*: a name that
    could resolve on the reduced relation at runtime counts as a
    reference, so ambiguous unqualified columns disqualify."""
    if not query.distinct or query.outputs is None:
        return {}
    if query.aggregates or query.group_by or query.having is not None:
        return {}

    def resolvers(exprs: Iterable[Expr]) -> Set[int]:
        touched: Set[int] = set()
        for expr in exprs:
            for name in expr.columns():
                touched.update(_owners(name, relations))
        return touched

    downstream: List[Expr] = [expr for _name, expr in query.outputs]
    downstream.extend(expr for expr, _asc in query.order_by)
    if residual is not None:
        downstream.append(residual)
    outside = resolvers(downstream)

    reduced: Dict[int, _JoinCondition] = {}
    for condition in conditions:
        idx = condition.right
        if idx in outside or condition.residual is not None or not condition.pairs:
            continue
        oriented: List[Tuple[Expr, Expr]] = []
        for left, right in condition.pairs:
            if not (isinstance(left, Col) and isinstance(right, Col)):
                break
            left_owners = _owners(left.name, relations)
            right_owners = _owners(right.name, relations)
            if right_owners == [idx] and left_owners and idx not in left_owners:
                oriented.append((left, right))
            elif left_owners == [idx] and right_owners and idx not in right_owners:
                oriented.append((right, left))
            else:
                break
        else:
            other_exprs: List[Expr] = []
            for other in conditions:
                if other.right == idx:
                    continue
                other_exprs.extend(expr for pair in other.pairs for expr in pair)
                if other.residual is not None:
                    other_exprs.append(other.residual)
            if idx not in resolvers(other_exprs):
                reduced[idx] = _JoinCondition(idx, oriented, None)

    # A reduced relation's kept-side keys must evaluate on the surviving
    # join tree: drop candidates keyed through another reduced relation.
    changed = True
    while changed:
        changed = False
        for idx, condition in list(reduced.items()):
            for kept_expr, _reduced_expr in condition.pairs:
                owners = set(_owners(kept_expr.name, relations))  # type: ignore[union-attr]
                if owners & (reduced.keys() - {idx}):
                    del reduced[idx]
                    changed = True
                    break
    return reduced


def _naive_join_plan(
    relations: Sequence[_Relation], conditions: Sequence[_JoinCondition]
) -> PlanNode:
    """The forced seq-scan/hash-join oracle: written order, SeqScan per
    table with its local filter, one hash join (or nested loop, for
    pair-less joins) per step."""
    first = relations[0]
    node: PlanNode = SeqScan(first.table, first.ref.alias)
    if first.local:
        node = FilterNode(node, _and_all(first.local))
    for condition in conditions:
        rel = relations[condition.right]
        right_node: PlanNode = SeqScan(rel.table, rel.ref.alias)
        if rel.local:
            right_node = FilterNode(right_node, _and_all(rel.local))
        if condition.pairs:
            node = HashJoinNode(
                node,
                right_node,
                tuple(left for left, _right in condition.pairs),
                tuple(right for _left, right in condition.pairs),
            )
            if condition.residual is not None:
                node = FilterNode(node, condition.residual)
        else:
            node = NestedLoopJoinNode(node, right_node, condition.residual)
    return node


# ----------------------------------------------------------------------
# Query compilation
# ----------------------------------------------------------------------


def plan_query(
    tables: Dict[str, Table],
    query: Query,
    *,
    naive: bool = False,
    stats: Optional[PlannerStats] = None,
) -> PlanNode:
    """Compile a logical query to a physical plan.

    ``naive=True`` disables every planner rule: each table access is a
    forced ``SeqScan`` with all pushable conjuncts in ``FilterNode``s,
    joins stay left-deep hash joins in written order, and ORDER BY is
    always realized by a ``SortNode`` — the seed planner's behavior,
    kept as the oracle for differential plan-equivalence testing and
    the baseline for planner benchmarks.

    ``stats`` (a :class:`PlannerStats`) records — or, when already
    populated for this query's shape, replays — every index-stats and
    histogram consultation: the plan cache's zero-sampling re-planning
    path.  ``None`` consults the tables directly (the default,
    unchanged behavior).
    """
    global _ACTIVE_STATS
    previous = _ACTIVE_STATS
    _ACTIVE_STATS = None if naive else stats
    try:
        return _plan_query_impl(tables, query, naive=naive)
    finally:
        _ACTIVE_STATS = previous


def _plan_query_impl(
    tables: Dict[str, Table], query: Query, *, naive: bool = False
) -> PlanNode:
    def get_table(ref: TableRef) -> Table:
        try:
            return tables[ref.name]
        except KeyError:
            raise UnknownTableError(f"unknown table {ref.name!r}") from None

    base_table = get_table(query.table)
    local, residual = _split_predicate_for(query.table.binding, base_table, query.where)
    if not query.joins:
        order_satisfied = False
        if naive:
            node: PlanNode = SeqScan(base_table, query.table.alias)
            leftover = local
        else:
            order_spec = _order_columns(query, query.table.binding, base_table)
            node, leftover, order_satisfied = _choose_access_path(
                base_table, query.table.binding, query.table.alias, local, order_spec
            )
        if leftover:
            node = FilterNode(node, And(*leftover) if len(leftover) > 1 else leftover[0])
    else:
        order_satisfied = False
        relations = [_Relation(query.table, base_table, local)]
        for join in query.joins:
            right_table = get_table(join.table)
            right_local, residual = _split_predicate_for(
                join.table.binding, right_table, residual
            )
            relations.append(_Relation(join.table, right_table, right_local))
        conditions = [
            _normalize_condition(spec, index + 1, relations)
            for index, spec in enumerate(query.joins)
        ]
        if naive:
            node = _naive_join_plan(relations, conditions)
        else:
            reduced = _reducible_joins(query, relations, conditions, residual)
            if reduced:
                keep = [i for i in range(len(relations)) if i not in reduced]
                remap = {old: new for new, old in enumerate(keep)}
                kept_relations = [relations[i] for i in keep]
                kept_conditions = [
                    _JoinCondition(remap[cond.right], cond.pairs, cond.residual)
                    for cond in conditions
                    if cond.right not in reduced
                ]
                if kept_conditions:
                    node, residual = _plan_joins(
                        kept_relations, kept_conditions, residual
                    )
                else:
                    node, _clean = _access_with_filter(kept_relations[0])
                for idx in sorted(reduced):
                    condition = reduced[idx]
                    right_node, _clean = _access_with_filter(relations[idx])
                    node = HashSemiJoinNode(
                        node,
                        right_node,
                        tuple(kept for kept, _red in condition.pairs),
                        tuple(red for _kept, red in condition.pairs),
                    )
            else:
                node, residual = _plan_joins(relations, conditions, residual)

    if residual is not None:
        node = FilterNode(node, residual)

    if query.aggregates or query.group_by:
        node = AggregateNode(node, query.group_by, query.aggregates)
        if query.having is not None:
            # HAVING filters *groups*: it runs over aggregate outputs
            node = FilterNode(node, query.having)
    elif query.outputs is not None:
        node = ProjectNode(node, query.outputs)

    if query.distinct:
        node = DistinctNode(node)
    if query.order_by and not order_satisfied:
        node = SortNode(node, query.order_by)
    if query.limit is not None or query.offset:
        node = LimitNode(node, query.limit, query.offset)
    return node


def plan_mutation(
    table: Table, predicate: Optional[Expr], *, naive: bool = False
) -> Tuple[TableScanNode, Optional[Expr]]:
    """Compile a DML predicate to an access path plus residual filter.

    The planner's entry point for ``Database.delete_where`` /
    ``update_where``: victim enumeration runs the returned node's
    ``rows()`` stream of ``(rowid, row)`` pairs — probing the same
    indexes a SELECT with this WHERE clause would — and applies the
    residual predicate (the conjuncts the access path did not absorb)
    to each row.  Only unqualified column references are plannable:
    residuals evaluate against plain row dicts, so a ``t.col``
    reference fails during evaluation exactly as it does on the naive
    path, with or without indexes.  ``naive=True`` forces the
    full-scan + filter-everything oracle used by the differential DML
    tests.
    """
    binding = table.schema.name
    local, residual = _split_predicate_for(binding, table, predicate, qualified=False)
    if naive:
        node: TableScanNode = SeqScan(table)
        leftover: List[Expr] = local
    else:
        node, leftover, _order = _choose_access_path(table, binding, None, local)
    parts = list(leftover)
    if residual is not None:
        parts.extend(conjuncts(residual))
    if not parts:
        combined: Optional[Expr] = None
    elif len(parts) == 1:
        combined = parts[0]
    else:
        combined = And(*parts)
    return node, combined
