"""Logical queries and a rule-based planner choosing index access paths.

The planner applies three rules, in order, to each table access:

1. an equality conjunct covering an index's columns → ``IndexEqScan``;
2. a ``PrefixMatch`` conjunct on the first column of an *ordered* index
   → ``IndexPrefixScan`` (the ``loc LIKE 'p/%'`` descendant pattern);
3. otherwise → ``SeqScan``.

Residual conjuncts stay in a ``FilterNode`` above the access path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .errors import UnknownTableError
from .expr import And, Cmp, Col, Const, Expr, PrefixMatch, conjuncts
from .plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    HashJoinNode,
    IndexEqScan,
    IndexPrefixScan,
    LimitNode,
    PlanNode,
    ProjectNode,
    SeqScan,
    SortNode,
)
from .table import Table

__all__ = ["TableRef", "JoinSpec", "Query", "plan_query"]


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class JoinSpec:
    """An equi-join between the query's running result and a new table."""

    table: TableRef
    left_key: Expr
    right_key: Expr


@dataclass
class Query:
    """A logical SELECT query.

    ``outputs`` of ``None`` means SELECT * (all columns of all tables,
    unqualified names from the first table win on collision).
    """

    table: TableRef
    joins: List[JoinSpec] = field(default_factory=list)
    where: Optional[Expr] = None
    outputs: Optional[List[Tuple[str, Expr]]] = None
    group_by: List[Tuple[str, Expr]] = field(default_factory=list)
    aggregates: List[Tuple[str, str, Optional[Expr]]] = field(default_factory=list)
    order_by: List[Tuple[Expr, bool]] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0
    having: Optional[Expr] = None
    distinct: bool = False


def _split_predicate_for(
    binding: str, table: Table, predicate: Optional[Expr]
) -> Tuple[List[Expr], Optional[Expr]]:
    """Partition conjuncts into those referencing only ``binding``'s
    columns (pushable) and the residual predicate."""
    if predicate is None:
        return [], None
    local: List[Expr] = []
    residual: List[Expr] = []
    known = set(table.schema.column_names) | {
        f"{binding}.{name}" for name in table.schema.column_names
    }
    for part in conjuncts(predicate):
        if part.columns() and part.columns() <= known:
            local.append(part)
        else:
            residual.append(part)
    residual_expr: Optional[Expr]
    if not residual:
        residual_expr = None
    elif len(residual) == 1:
        residual_expr = residual[0]
    else:
        residual_expr = And(*residual)
    return local, residual_expr


def _strip_alias(name: str, binding: str) -> str:
    prefix = binding + "."
    return name[len(prefix):] if name.startswith(prefix) else name


def _choose_access_path(
    table: Table, binding: str, alias: Optional[str], local: List[Expr]
) -> Tuple[PlanNode, List[Expr]]:
    """Apply the planner rules; returns the access node and leftover
    conjuncts that must still be filtered."""
    eq_bindings: Dict[str, Any] = {}
    eq_sources: Dict[str, Expr] = {}
    for part in local:
        if isinstance(part, Cmp) and part.op == "=":
            if isinstance(part.left, Col) and isinstance(part.right, Const):
                column = _strip_alias(part.left.name, binding)
                eq_bindings[column] = part.right.value
                eq_sources[column] = part
            elif isinstance(part.right, Col) and isinstance(part.left, Const):
                column = _strip_alias(part.right.name, binding)
                eq_bindings[column] = part.left.value
                eq_sources[column] = part

    # Rule 1: equality index (including the primary-key-backed indexes).
    for spec in table.index_specs.values():
        if all(column in eq_bindings for column in spec.columns):
            key = tuple(eq_bindings[column] for column in spec.columns)
            used = {eq_sources[column] for column in spec.columns}
            leftover = [part for part in local if part not in used]
            return IndexEqScan(table, spec.name, key, alias), leftover

    # Rule 2: prefix scan on an ordered index.
    for part in local:
        if isinstance(part, PrefixMatch):
            column = _strip_alias(part.column.name, binding)
            for spec in table.index_specs.values():
                if spec.ordered and spec.columns[0] == column:
                    leftover = [p for p in local if p is not part]
                    # the prefix scan is exact (startswith), nothing residual
                    return IndexPrefixScan(table, spec.name, part.prefix, alias), leftover

    # Rule 3: fall back to a sequential scan.
    return SeqScan(table, alias), list(local)


def plan_query(tables: Dict[str, Table], query: Query) -> PlanNode:
    """Compile a logical query to a physical plan."""

    def get_table(ref: TableRef) -> Table:
        try:
            return tables[ref.name]
        except KeyError:
            raise UnknownTableError(f"unknown table {ref.name!r}") from None

    base_table = get_table(query.table)
    local, residual = _split_predicate_for(query.table.binding, base_table, query.where)
    node, leftover = _choose_access_path(
        base_table, query.table.binding, query.table.alias, local
    )
    if leftover:
        node = FilterNode(node, And(*leftover) if len(leftover) > 1 else leftover[0])

    for join in query.joins:
        right_table = get_table(join.table)
        right_local, residual = _split_predicate_for(
            join.table.binding, right_table, residual
        )
        right_node, right_leftover = _choose_access_path(
            right_table, join.table.binding, join.table.alias, right_local
        )
        if right_leftover:
            right_node = FilterNode(
                right_node,
                And(*right_leftover) if len(right_leftover) > 1 else right_leftover[0],
            )
        node = HashJoinNode(node, right_node, join.left_key, join.right_key)

    if residual is not None:
        node = FilterNode(node, residual)

    if query.aggregates or query.group_by:
        node = AggregateNode(node, query.group_by, query.aggregates)
        if query.having is not None:
            # HAVING filters *groups*: it runs over aggregate outputs
            node = FilterNode(node, query.having)
    elif query.outputs is not None:
        node = ProjectNode(node, query.outputs)

    if query.distinct:
        node = DistinctNode(node)
    if query.order_by:
        node = SortNode(node, query.order_by)
    if query.limit is not None or query.offset:
        node = LimitNode(node, query.limit, query.offset)
    return node
