"""Logical queries and a cost-based planner choosing index access paths.

The planner enumerates *candidate* access paths for each table access:

1. an equality conjunct covering an index's columns → ``IndexEqScan``;
2. a ``PrefixMatch`` conjunct on the first column of an *ordered* index
   → ``IndexPrefixScan`` (the ``loc LIKE 'p/%'`` descendant pattern);
3. merged comparison bounds (``k >= lo``, ``k < hi``, BETWEEN-shaped
   pairs, and equality prefixes on multi-column indexes) on an ordered
   index → ``IndexRangeScan``; an ordered index whose key order matches
   the requested ORDER BY is also eligible with open bounds, so ``ORDER
   BY k LIMIT n`` can stream;
4. a ``col IN (...)`` conjunct, or a top-level OR whose every disjunct
   is a sargable conjunction over one column, → ``IndexMultiRangeScan``
   (a sorted, de-duplicated union of per-disjunct ranges over one
   ordered index);
5. always: a ``SeqScan``.

and picks the cheapest under a small cost model (see *Cost model*
below) instead of the old static eq > prefix > range priority — so a
composite ordered index that also satisfies the ORDER BY can beat a
fully-equality-covered hash index whose output would still need a sort.
Residual conjuncts stay in a ``FilterNode`` above the access path.

*Interesting orders*: when the chosen access path already yields rows in
the requested ORDER BY order — an ordered-index scan whose key columns
(minus equality-bound ones) lead with the ORDER BY columns, possibly
scanned in reverse for DESC — the trailing ``SortNode`` is elided and
``LimitNode`` streams.  ``plan_query(..., naive=True)`` disables every
rule (forced ``SeqScan`` + ``FilterNode`` + ``SortNode``), which is the
oracle side of the differential plan-equivalence tests.

DML shares the machinery: :func:`plan_mutation` compiles a
``delete_where``/``update_where`` predicate into the same access-path
candidates (every access node exposes a ``rows()`` stream of ``(rowid,
row)`` pairs), so victim enumeration probes indexes instead of paying a
full scan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from math import log2
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .errors import UnknownTableError
from .expr import (
    And,
    Cmp,
    Col,
    Const,
    Expr,
    InList,
    Or,
    PrefixMatch,
    column_bound,
    conjuncts,
)
from .index import MAX_KEY, KeyRange, _range_start_key
from .plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    HashJoinNode,
    IndexEqScan,
    IndexMultiRangeScan,
    IndexPrefixScan,
    IndexRangeScan,
    LimitNode,
    PlanNode,
    ProjectNode,
    SeqScan,
    SortNode,
    TableScanNode,
)
from .table import IndexStats, Table
from .types import ColumnType

__all__ = ["TableRef", "JoinSpec", "Query", "plan_query", "plan_mutation"]


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class JoinSpec:
    """An equi-join between the query's running result and a new table."""

    table: TableRef
    left_key: Expr
    right_key: Expr


@dataclass
class Query:
    """A logical SELECT query.

    ``outputs`` of ``None`` means SELECT * (all columns of all tables,
    unqualified names from the first table win on collision).
    """

    table: TableRef
    joins: List[JoinSpec] = field(default_factory=list)
    where: Optional[Expr] = None
    outputs: Optional[List[Tuple[str, Expr]]] = None
    group_by: List[Tuple[str, Expr]] = field(default_factory=list)
    aggregates: List[Tuple[str, str, Optional[Expr]]] = field(default_factory=list)
    order_by: List[Tuple[Expr, bool]] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0
    having: Optional[Expr] = None
    distinct: bool = False


def _split_predicate_for(
    binding: str, table: Table, predicate: Optional[Expr], qualified: bool = True
) -> Tuple[List[Expr], Optional[Expr]]:
    """Partition conjuncts into those referencing only ``binding``'s
    columns (pushable) and the residual predicate.

    ``qualified=False`` recognizes only bare column names — the DML
    paths evaluate residuals against unqualified row dicts, so a
    ``binding.column`` reference must stay residual (and raise on
    evaluation) exactly as it would without any planner."""
    if predicate is None:
        return [], None
    local: List[Expr] = []
    residual: List[Expr] = []
    known = set(table.schema.column_names)
    if qualified:
        known |= {f"{binding}.{name}" for name in table.schema.column_names}
    for part in conjuncts(predicate):
        if part.columns() and part.columns() <= known:
            local.append(part)
        else:
            residual.append(part)
    residual_expr: Optional[Expr]
    if not residual:
        residual_expr = None
    elif len(residual) == 1:
        residual_expr = residual[0]
    else:
        residual_expr = And(*residual)
    return local, residual_expr


def _strip_alias(name: str, binding: str) -> str:
    prefix = binding + "."
    return name[len(prefix):] if name.startswith(prefix) else name


# ----------------------------------------------------------------------
# Interval analysis
# ----------------------------------------------------------------------


class _Interval:
    """Merged comparison bounds for one column.

    ``low``/``high`` are ``(value, inclusive)`` or ``None`` (open);
    ``sources`` are the conjuncts the merged bounds subsume.  Merging
    incomparable values (mixed-type bounds) marks the interval unusable
    — those conjuncts stay in the filter, where ``Cmp.eval`` defines
    their semantics.
    """

    __slots__ = ("low", "high", "sources", "usable")

    def __init__(self) -> None:
        self.low: Optional[Tuple[Any, bool]] = None
        self.high: Optional[Tuple[Any, bool]] = None
        self.sources: List[Expr] = []
        self.usable = True

    @property
    def bounded(self) -> bool:
        return self.low is not None or self.high is not None

    def tighten(self, op: str, value: Any, source: Expr) -> None:
        if not self.usable:
            return
        inclusive = op in (">=", "<=")
        try:
            if op in (">", ">="):
                if self.low is None or value > self.low[0]:
                    self.low = (value, inclusive)
                elif value == self.low[0]:
                    self.low = (value, self.low[1] and inclusive)
            else:  # "<" or "<="
                if self.high is None or value < self.high[0]:
                    self.high = (value, inclusive)
                elif value == self.high[0]:
                    self.high = (value, self.high[1] and inclusive)
        except TypeError:
            self.usable = False
            return
        self.sources.append(source)


def _analyze_intervals(local: List[Expr], binding: str) -> Dict[str, _Interval]:
    """Merge the local ``< <= > >=`` conjuncts into per-column intervals."""
    intervals: Dict[str, _Interval] = {}
    for part in local:
        bound = column_bound(part)
        if bound is None or bound[1] == "=":
            continue
        column, op, value = bound
        column = _strip_alias(column, binding)
        intervals.setdefault(column, _Interval()).tighten(op, value, part)
    return {column: iv for column, iv in intervals.items() if iv.usable and iv.bounded}


def _point_interval(value: Any, source: Expr) -> _Interval:
    """The degenerate interval ``[value, value]`` (an IN-list member or
    an equality disjunct)."""
    interval = _Interval()
    interval.tighten(">=", value, source)
    interval.tighten("<=", value, source)
    return interval


def _is_point(interval: _Interval) -> bool:
    return (
        interval.low is not None
        and interval.high is not None
        and interval.low == interval.high
        and interval.low[1]
    )


# ----------------------------------------------------------------------
# Disjunction analysis (IN lists, OR-of-sargable-conjuncts)
# ----------------------------------------------------------------------


def _in_list_intervals(
    expr: InList, binding: str
) -> Optional[Tuple[str, List[_Interval]]]:
    """``col IN (...)`` as de-duplicated per-value point intervals."""
    if not isinstance(expr.inner, Col):
        return None
    column = _strip_alias(expr.inner.name, binding)
    seen: set = set()
    intervals: List[_Interval] = []
    for value in expr.options:
        if value is None:
            continue  # ``col = NULL`` matches nothing an index could hold
        try:
            if value in seen:
                continue
            seen.add(value)
        except TypeError:
            return None  # unhashable literal: the IN stays in the filter
        intervals.append(_point_interval(value, expr))
    return column, intervals


def _disjunct_intervals(
    part: Expr, binding: str
) -> Optional[Tuple[str, List[_Interval]]]:
    """One OR disjunct — a sargable conjunction over a single column —
    as ``(column, [intervals])``; ``None`` when not sargable."""
    if isinstance(part, InList):
        return _in_list_intervals(part, binding)
    column: Optional[str] = None
    interval = _Interval()
    for conj in conjuncts(part):
        bound = column_bound(conj)
        if bound is None:
            return None
        name, op, value = bound
        name = _strip_alias(name, binding)
        if column is None:
            column = name
        elif name != column:
            return None
        if op == "=":
            interval.tighten(">=", value, part)
            interval.tighten("<=", value, part)
        else:
            interval.tighten(op, value, part)
    if column is None or not interval.usable or not interval.bounded:
        return None
    return column, [interval]


def _disjunction_intervals(
    expr: Expr, binding: str
) -> Optional[Tuple[str, List[_Interval]]]:
    """Normalize a conjunct into per-disjunct intervals over one column.

    Two shapes qualify: ``col IN (...)`` and a top-level OR whose every
    disjunct is a sargable conjunction (comparison bounds, equalities,
    nested IN lists) over the *same* column — e.g. ``(a > 1 AND a < 5)
    OR a = 9 OR a IN (11, 13)``.  Anything else returns ``None`` and
    stays a filter conjunct.  The interval union is exactly equivalent
    to the predicate for non-NULL column values, which index probes
    require anyway (:func:`_bound_safe`)."""
    if isinstance(expr, InList):
        return _in_list_intervals(expr, binding)
    if not isinstance(expr, Or) or not expr.parts:
        return None
    column: Optional[str] = None
    intervals: List[_Interval] = []
    for part in expr.parts:
        got = _disjunct_intervals(part, binding)
        if got is None:
            return None
        part_column, part_intervals = got
        if column is None:
            column = part_column
        elif part_column != column:
            return None
        intervals.extend(part_intervals)
    if column is None:
        return None
    return column, intervals


_NUMERIC = (ColumnType.INT, ColumnType.REAL)
_TEXTUAL = (ColumnType.TEXT, ColumnType.CHAR)


def _bound_safe(table: Table, column: str, values: Sequence[Any]) -> bool:
    """True when index-probing ``column`` with ``values`` cannot raise.

    Ordered-index bisection compares bound constants against stored
    values, so the column must be NOT NULL (a NULL key would make the
    comparison raise, where the equivalent ``Cmp`` filter is simply
    False) and the constants must live in the column's type family.
    """
    if not table.schema.has_column(column):
        return False
    spec = table.schema.column(column)
    if spec.nullable:
        return False
    if spec.type in _NUMERIC:
        return all(
            isinstance(v, (int, float)) and not isinstance(v, bool) for v in values
        )
    if spec.type in _TEXTUAL:
        return all(isinstance(v, str) for v in values)
    return False


# ----------------------------------------------------------------------
# Interesting orders
# ----------------------------------------------------------------------


def _order_columns(
    query: Query, binding: str, table: Table
) -> Optional[List[Tuple[str, bool]]]:
    """The ORDER BY as ``(base-table column, descending)`` pairs, or
    ``None`` when it cannot be attributed to the base access path
    (joins, grouping, non-column keys, unknown columns).

    ``SortNode`` runs above the projection, so with explicit outputs an
    ORDER BY key must resolve *through* the projection to a plain base
    column; otherwise elision is refused and the plan keeps the sort —
    including the case where the sort would fail on a projected-away
    column, which must fail identically with or without indexes.
    """
    if not query.order_by or query.joins or query.aggregates or query.group_by:
        return None
    outputs: Optional[Dict[str, Expr]] = None
    if query.outputs is not None:
        outputs = dict(query.outputs)
    spec: List[Tuple[str, bool]] = []
    for expr, descending in query.order_by:
        if not isinstance(expr, Col):
            return None
        if outputs is not None:
            projected = outputs.get(expr.name)
            if not isinstance(projected, Col):
                return None
            expr = projected
        column = _strip_alias(expr.name, binding)
        if not table.schema.has_column(column):
            return None
        spec.append((column, descending))
    return spec


def _trivial_order(
    order_spec: Optional[List[Tuple[str, bool]]], eq_columns: Sequence[str]
) -> bool:
    """Every ORDER BY column pinned to a constant → any row order works."""
    return order_spec is not None and all(c in eq_columns for c, _d in order_spec)


def _match_index_order(
    index_columns: Sequence[str],
    eq_columns: Sequence[str],
    order_spec: Optional[List[Tuple[str, bool]]],
) -> Optional[bool]:
    """Whether a scan of an ordered index satisfies the ORDER BY.

    Equality-bound columns are constant in the output, so they can be
    dropped from both the ORDER BY and the index key.  The remaining
    ORDER BY columns must be a prefix of the remaining index columns
    with one shared direction.  Returns ``None`` (unsatisfiable),
    ``False`` (forward scan), or ``True`` (reverse scan).
    """
    if order_spec is None:
        return None
    keys = [(c, d) for c, d in order_spec if c not in eq_columns]
    if not keys:
        return False
    direction = keys[0][1]
    if any(d != direction for _c, d in keys):
        return None
    available = [c for c in index_columns if c not in eq_columns]
    if [c for c, _d in keys] != available[: len(keys)]:
        return None
    return direction


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
#
# Candidate costs are *estimated rows touched*, not wall time: the
# expected scanned-row count times a per-access-kind factor, plus a
# setup charge per probed range or bucket, plus — when the query has an
# ORDER BY the candidate's output order does not satisfy — an n·log n
# surcharge for the SortNode it would feed.  Selectivities come from
# table statistics (row count; distinct-key counts, exact for hash
# indexes and bounded-sample estimates for ordered ones — see
# ``Table.index_stats``).  The figures only need to *rank* candidates;
# exact ties fall back to the legacy rule priority (eq > prefix > range
# > multi-range > seq) so plans stay deterministic.

_HASH_ROW_COST = 1.0      # per row out of a hash bucket
_ORDERED_ROW_COST = 1.1   # per row off an ordered index (block walk)
_SEQ_ROW_COST = 1.0       # per row of a full heap scan
_PROBE_COST = 1.0         # per probed range/bucket: bisections + setup
_PREFIX_SELECTIVITY = 0.25
#: fraction of rows surviving 0/1/2 comparison bounds on a column
_BOUND_SELECTIVITY = {0: 1.0, 1: 0.4, 2: 0.15}


def _candidate_cost(
    est_rows: float,
    row_cost: float,
    probes: int,
    satisfies_order: bool,
    wants_order: bool,
    total_rows: int,
) -> float:
    est = min(max(est_rows, 0.0), float(total_rows))
    cost = row_cost * est + _PROBE_COST * probes
    if wants_order and not satisfies_order:
        cost += est * log2(est + 2.0)  # the SortNode this plan would feed
    return cost


def _eq_prefix_selectivity(stats: IndexStats, eq_len: int, width: int) -> float:
    """Fraction of rows surviving ``eq_len`` equality-bound leading
    columns of a ``width``-column index: the distinct full keys are
    assumed to spread geometrically over the key columns."""
    if eq_len <= 0:
        return 1.0
    per_column = float(max(1, stats.keys)) ** (1.0 / width)
    return per_column ** -eq_len


@dataclass
class _Candidate:
    """One costed access path: the physical node, the conjuncts it did
    not absorb, and whether its output satisfies the ORDER BY."""

    cost: float
    rank: int  # enumeration order = legacy rule priority, the tie-break
    node: TableScanNode
    leftover: List[Expr]
    ordered: bool


# ----------------------------------------------------------------------
# Access-path selection
# ----------------------------------------------------------------------


def _key_range(
    prefix: Tuple[Any, ...], width: int, interval: Optional[_Interval]
) -> KeyRange:
    """Convert merged bounds on one column into index-key bounds.

    ``prefix`` carries the equality-bound leading columns and ``width``
    the index's total column count.  Keys in a multi-column index extend
    the bounded prefix, and a short tuple sorts before any of its
    extensions — so inclusive-low bounds need no padding, while
    inclusive-high (and exclusive-low) bounds are padded with
    ``MAX_KEY`` so every extension of the bound prefix falls on the
    correct side.
    """
    eq_len = len(prefix)
    extra = width - eq_len - 1
    low: Optional[Tuple[Any, ...]] = None
    high: Optional[Tuple[Any, ...]] = None
    include_low = include_high = True
    if interval is not None and interval.low is not None:
        value, inclusive = interval.low
        if inclusive:
            low = prefix + (value,)
        else:
            low, include_low = prefix + (value,) + (MAX_KEY,) * extra, False
    elif eq_len:
        low = prefix
    if interval is not None and interval.high is not None:
        value, inclusive = interval.high
        if inclusive:
            high = prefix + (value,) + (MAX_KEY,) * extra
        else:
            high, include_high = prefix + (value,), False
    elif eq_len:
        high = prefix + (MAX_KEY,) * (width - eq_len)
    return low, high, include_low, include_high


def _hashable_values(values: Sequence[Any]) -> bool:
    try:
        for value in values:
            hash(value)
    except TypeError:
        return False
    return True


def _choose_access_path(
    table: Table,
    binding: str,
    alias: Optional[str],
    local: List[Expr],
    order_spec: Optional[List[Tuple[str, bool]]] = None,
) -> Tuple[TableScanNode, List[Expr], bool]:
    """Enumerate candidate access paths, cost each, and keep the
    cheapest; returns the access node, leftover conjuncts that must
    still be filtered, and whether the node already yields rows in the
    requested ORDER BY order."""
    eq_bindings: Dict[str, Any] = {}
    eq_sources: Dict[str, Expr] = {}
    for part in local:
        bound = column_bound(part)
        if bound is not None and bound[1] == "=":
            column = _strip_alias(bound[0], binding)
            eq_bindings[column] = bound[2]
            eq_sources[column] = part
    eq_columns = tuple(eq_bindings)
    total_rows = table.row_count
    wants_order = order_spec is not None
    trivially_ordered = _trivial_order(order_spec, eq_columns)
    candidates: List[_Candidate] = []
    rank = 0

    # Statistics are computed lazily and cached per planning call: a
    # query that resolves to a SeqScan or a plain probe never pays the
    # ordered indexes' key-count sampling.
    specs = list(table.index_specs.values())
    stats_cache: Dict[str, IndexStats] = {}

    def stats_of(name: str) -> IndexStats:
        stats = stats_cache.get(name)
        if stats is None:
            stats = stats_cache[name] = table.index_stats(name)
        return stats

    # Distinct-key counts per covered column set: any index over exactly
    # those columns measures their joint selectivity, whichever access
    # path ends up using it.  Falls back to the geometric spread
    # assumption (_eq_prefix_selectivity) for uncovered prefixes.
    distinct_by_columns: Dict[Tuple[str, ...], int] = {}

    def eq_rows(
        columns: Sequence[str], fallback_index: str, width: int, depth: int
    ) -> float:
        """Expected rows matching equality on ``columns``."""
        if not distinct_by_columns:
            for spec in specs:
                key = tuple(sorted(spec.columns))
                keys = stats_of(spec.name).keys
                distinct_by_columns[key] = max(distinct_by_columns.get(key, 0), keys)
        distinct = distinct_by_columns.get(tuple(sorted(columns)))
        if distinct:
            return total_rows / distinct
        return total_rows * _eq_prefix_selectivity(
            stats_of(fallback_index), depth, width
        )

    # Equality candidates: indexes fully covered by equality conjuncts
    # (including the primary-key-backed ones).
    for spec in specs:
        rank += 1
        if not all(column in eq_bindings for column in spec.columns):
            continue
        key = tuple(eq_bindings[column] for column in spec.columns)
        if not _hashable_values(key):
            continue  # an unhashable constant cannot probe a bucket
        if any(value is None for value in key):
            # `col = NULL` is always False under Cmp semantics, but a
            # hash probe with a NULL key would *find* NULL rows — keep
            # the conjunct in the filter instead
            continue
        if spec.ordered and not all(
            _bound_safe(table, column, [eq_bindings[column]])
            for column in spec.columns
        ):
            # ordered lookups bisect: a mixed-type or NULL-adjacent
            # probe would raise where the equivalent filter is False
            continue
        stats = stats_of(spec.name)
        used = {eq_sources[column] for column in spec.columns}
        leftover = [part for part in local if part not in used]
        est = 1.0 if stats.unique else total_rows / max(1, stats.keys)
        row_cost = _ORDERED_ROW_COST if spec.ordered else _HASH_ROW_COST
        cost = _candidate_cost(
            est, row_cost, 1, trivially_ordered, wants_order, total_rows
        )
        candidates.append(
            _Candidate(
                cost,
                rank,
                IndexEqScan(table, spec.name, key, alias),
                leftover,
                trivially_ordered,
            )
        )

    # Prefix candidates: a PrefixMatch on the leading column of an
    # ordered index (the descendant-of pattern).
    for part in local:
        if not isinstance(part, PrefixMatch):
            continue
        column = _strip_alias(part.column.name, binding)
        for spec in specs:
            rank += 1
            if not spec.ordered or spec.columns[0] != column:
                continue
            direction = _match_index_order(spec.columns, eq_columns, order_spec)
            satisfied = direction is False  # prefix scans stream forward only
            leftover = [p for p in local if p is not part]
            est = max(1.0, total_rows * _PREFIX_SELECTIVITY)
            cost = _candidate_cost(
                est, _ORDERED_ROW_COST, 1, satisfied, wants_order, total_rows
            )
            candidates.append(
                _Candidate(
                    cost,
                    rank,
                    IndexPrefixScan(table, spec.name, part.prefix, alias),
                    leftover,
                    satisfied,
                )
            )

    # Range and multi-range candidates over ordered indexes: equality
    # bound leading columns, then either one merged interval or a
    # disjunction (IN list / OR-of-ranges) on the next column.
    intervals = _analyze_intervals(local, binding)
    disjunctions: List[Tuple[Expr, str, List[_Interval]]] = []
    for part in local:
        got = _disjunction_intervals(part, binding)
        if got is not None:
            disjunctions.append((part, got[0], got[1]))

    for spec in specs:
        if not spec.ordered:
            rank += 2
            continue
        width = len(spec.columns)
        eq_len = 0
        while (
            eq_len < width
            and spec.columns[eq_len] in eq_bindings
            and _bound_safe(
                table, spec.columns[eq_len], [eq_bindings[spec.columns[eq_len]]]
            )
        ):
            eq_len += 1
        # a fully equality-bound index is the eq candidate's business
        eq_len = min(eq_len, width - 1)
        range_column = spec.columns[eq_len]
        prefix = tuple(eq_bindings[c] for c in spec.columns[:eq_len])
        prefix_used = {eq_sources[c] for c in spec.columns[:eq_len]}
        direction = _match_index_order(spec.columns, eq_columns, order_spec)
        satisfied = direction is not None

        # one merged interval on the range column
        rank += 1
        interval = intervals.get(range_column)
        if interval is not None:
            bound_values = [pair[0] for pair in (interval.low, interval.high) if pair]
            if not _bound_safe(table, range_column, bound_values):
                interval = None
        if eq_len > 0 or interval is not None or satisfied:
            prefix_rows = (
                eq_rows(spec.columns[:eq_len], spec.name, width, eq_len)
                if eq_len
                else float(total_rows)
            )
            bounds = int(interval is not None and interval.low is not None) + int(
                interval is not None and interval.high is not None
            )
            est = prefix_rows * _BOUND_SELECTIVITY[bounds]
            cost = _candidate_cost(
                est, _ORDERED_ROW_COST, 1, satisfied, wants_order, total_rows
            )
            used = set(prefix_used)
            if interval is not None:
                used.update(interval.sources)
            leftover = [p for p in local if p not in used]
            low, high, include_low, include_high = _key_range(prefix, width, interval)
            node: TableScanNode = IndexRangeScan(
                table,
                spec.name,
                low,
                high,
                include_low,
                include_high,
                alias,
                reverse=direction is True,
            )
            candidates.append(_Candidate(cost, rank, node, leftover, satisfied))

        # a disjunction on the range column: the multi-range union
        rank += 1
        for part, column, part_intervals in disjunctions:
            if column != range_column:
                continue
            values = [
                pair[0]
                for iv in part_intervals
                for pair in (iv.low, iv.high)
                if pair is not None
            ]
            # checked even with zero intervals: an all-NULL IN list is
            # only "matches nothing" on a NOT NULL column — the filter's
            # Python-`in` semantics make NULL IN (NULL) *true*, so a
            # nullable column must keep the conjunct in the filter
            if not _bound_safe(table, range_column, values):
                continue
            ranges = [_key_range(prefix, width, iv) for iv in part_intervals]
            # the sweep's canonical order: sorted once here, and the node
            # carries presorted=True so executions skip the re-sort.
            # Cannot raise: _bound_safe confined every bound to one type
            # family, and the key handles None lows and MAX_KEY padding.
            ranges.sort(key=_range_start_key)
            prefix_rows = (
                eq_rows(spec.columns[:eq_len], spec.name, width, eq_len)
                if eq_len
                else float(total_rows)
            )
            point_rows = eq_rows(
                spec.columns[: eq_len + 1], spec.name, width, eq_len + 1
            )
            est = 0.0
            for iv in part_intervals:
                if _is_point(iv):
                    est += point_rows
                else:
                    bounds = int(iv.low is not None) + int(iv.high is not None)
                    est += prefix_rows * _BOUND_SELECTIVITY[bounds]
            cost = _candidate_cost(
                est,
                _ORDERED_ROW_COST,
                len(ranges),
                satisfied,
                wants_order,
                total_rows,
            )
            used = prefix_used | {part}
            leftover = [p for p in local if p not in used]
            node = IndexMultiRangeScan(
                table,
                spec.name,
                ranges,
                alias,
                reverse=direction is True,
                presorted=True,
            )
            candidates.append(_Candidate(cost, rank, node, leftover, satisfied))

    # The fallback everyone competes against.
    rank += 1
    seq_cost = _candidate_cost(
        float(total_rows), _SEQ_ROW_COST, 0, trivially_ordered, wants_order, total_rows
    )
    candidates.append(
        _Candidate(seq_cost, rank, SeqScan(table, alias), list(local), trivially_ordered)
    )

    best = min(candidates, key=lambda candidate: (candidate.cost, candidate.rank))
    return best.node, best.leftover, best.ordered


# ----------------------------------------------------------------------
# Query compilation
# ----------------------------------------------------------------------


def plan_query(
    tables: Dict[str, Table], query: Query, *, naive: bool = False
) -> PlanNode:
    """Compile a logical query to a physical plan.

    ``naive=True`` disables every planner rule: each table access is a
    forced ``SeqScan`` with all pushable conjuncts in ``FilterNode``s and
    ORDER BY always realized by a ``SortNode`` — the seed planner's
    behavior, kept as the oracle for differential plan-equivalence
    testing and the baseline for planner benchmarks.
    """

    def get_table(ref: TableRef) -> Table:
        try:
            return tables[ref.name]
        except KeyError:
            raise UnknownTableError(f"unknown table {ref.name!r}") from None

    base_table = get_table(query.table)
    local, residual = _split_predicate_for(query.table.binding, base_table, query.where)
    if naive:
        node: PlanNode = SeqScan(base_table, query.table.alias)
        leftover, order_satisfied = local, False
    else:
        order_spec = _order_columns(query, query.table.binding, base_table)
        node, leftover, order_satisfied = _choose_access_path(
            base_table, query.table.binding, query.table.alias, local, order_spec
        )
    if leftover:
        node = FilterNode(node, And(*leftover) if len(leftover) > 1 else leftover[0])

    for join in query.joins:
        right_table = get_table(join.table)
        right_local, residual = _split_predicate_for(
            join.table.binding, right_table, residual
        )
        if naive:
            right_node: PlanNode = SeqScan(right_table, join.table.alias)
            right_leftover = right_local
        else:
            right_node, right_leftover, _ = _choose_access_path(
                right_table, join.table.binding, join.table.alias, right_local
            )
        if right_leftover:
            right_node = FilterNode(
                right_node,
                And(*right_leftover) if len(right_leftover) > 1 else right_leftover[0],
            )
        node = HashJoinNode(node, right_node, join.left_key, join.right_key)

    if residual is not None:
        node = FilterNode(node, residual)

    if query.aggregates or query.group_by:
        node = AggregateNode(node, query.group_by, query.aggregates)
        if query.having is not None:
            # HAVING filters *groups*: it runs over aggregate outputs
            node = FilterNode(node, query.having)
    elif query.outputs is not None:
        node = ProjectNode(node, query.outputs)

    if query.distinct:
        node = DistinctNode(node)
    if query.order_by and not order_satisfied:
        node = SortNode(node, query.order_by)
    if query.limit is not None or query.offset:
        node = LimitNode(node, query.limit, query.offset)
    return node


def plan_mutation(
    table: Table, predicate: Optional[Expr], *, naive: bool = False
) -> Tuple[TableScanNode, Optional[Expr]]:
    """Compile a DML predicate to an access path plus residual filter.

    The planner's entry point for ``Database.delete_where`` /
    ``update_where``: victim enumeration runs the returned node's
    ``rows()`` stream of ``(rowid, row)`` pairs — probing the same
    indexes a SELECT with this WHERE clause would — and applies the
    residual predicate (the conjuncts the access path did not absorb)
    to each row.  Only unqualified column references are plannable:
    residuals evaluate against plain row dicts, so a ``t.col``
    reference fails during evaluation exactly as it does on the naive
    path, with or without indexes.  ``naive=True`` forces the
    full-scan + filter-everything oracle used by the differential DML
    tests.
    """
    binding = table.schema.name
    local, residual = _split_predicate_for(binding, table, predicate, qualified=False)
    if naive:
        node: TableScanNode = SeqScan(table)
        leftover: List[Expr] = local
    else:
        node, leftover, _order = _choose_access_path(table, binding, None, local)
    parts = list(leftover)
    if residual is not None:
        parts.extend(conjuncts(residual))
    if not parts:
        combined: Optional[Expr] = None
    elif len(parts) == 1:
        combined = parts[0]
    else:
        combined = And(*parts)
    return node, combined
