"""Logical queries and a rule-based planner choosing index access paths.

The planner applies four rules, in order, to each table access:

1. an equality conjunct covering an index's columns → ``IndexEqScan``;
2. a ``PrefixMatch`` conjunct on the first column of an *ordered* index
   → ``IndexPrefixScan`` (the ``loc LIKE 'p/%'`` descendant pattern);
3. merged comparison bounds (``k >= lo``, ``k < hi``, BETWEEN-shaped
   pairs, and equality prefixes on multi-column indexes) on an ordered
   index → ``IndexRangeScan``; an ordered index whose key order matches
   the requested ORDER BY is also eligible with open bounds, so ``ORDER
   BY k LIMIT n`` can stream;
4. otherwise → ``SeqScan``.

Residual conjuncts stay in a ``FilterNode`` above the access path.

*Interesting orders*: when the chosen access path already yields rows in
the requested ORDER BY order — an ordered-index scan whose key columns
(minus equality-bound ones) lead with the ORDER BY columns, possibly
scanned in reverse for DESC — the trailing ``SortNode`` is elided and
``LimitNode`` streams.  ``plan_query(..., naive=True)`` disables every
rule (forced ``SeqScan`` + ``FilterNode`` + ``SortNode``), which is the
oracle side of the differential plan-equivalence tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .errors import UnknownTableError
from .expr import And, Cmp, Col, Const, Expr, PrefixMatch, column_bound, conjuncts
from .index import MAX_KEY
from .plan import (
    AggregateNode,
    DistinctNode,
    FilterNode,
    HashJoinNode,
    IndexEqScan,
    IndexPrefixScan,
    IndexRangeScan,
    LimitNode,
    PlanNode,
    ProjectNode,
    SeqScan,
    SortNode,
)
from .table import Table
from .types import ColumnType

__all__ = ["TableRef", "JoinSpec", "Query", "plan_query"]


@dataclass(frozen=True)
class TableRef:
    name: str
    alias: Optional[str] = None

    @property
    def binding(self) -> str:
        return self.alias or self.name


@dataclass(frozen=True)
class JoinSpec:
    """An equi-join between the query's running result and a new table."""

    table: TableRef
    left_key: Expr
    right_key: Expr


@dataclass
class Query:
    """A logical SELECT query.

    ``outputs`` of ``None`` means SELECT * (all columns of all tables,
    unqualified names from the first table win on collision).
    """

    table: TableRef
    joins: List[JoinSpec] = field(default_factory=list)
    where: Optional[Expr] = None
    outputs: Optional[List[Tuple[str, Expr]]] = None
    group_by: List[Tuple[str, Expr]] = field(default_factory=list)
    aggregates: List[Tuple[str, str, Optional[Expr]]] = field(default_factory=list)
    order_by: List[Tuple[Expr, bool]] = field(default_factory=list)
    limit: Optional[int] = None
    offset: int = 0
    having: Optional[Expr] = None
    distinct: bool = False


def _split_predicate_for(
    binding: str, table: Table, predicate: Optional[Expr]
) -> Tuple[List[Expr], Optional[Expr]]:
    """Partition conjuncts into those referencing only ``binding``'s
    columns (pushable) and the residual predicate."""
    if predicate is None:
        return [], None
    local: List[Expr] = []
    residual: List[Expr] = []
    known = set(table.schema.column_names) | {
        f"{binding}.{name}" for name in table.schema.column_names
    }
    for part in conjuncts(predicate):
        if part.columns() and part.columns() <= known:
            local.append(part)
        else:
            residual.append(part)
    residual_expr: Optional[Expr]
    if not residual:
        residual_expr = None
    elif len(residual) == 1:
        residual_expr = residual[0]
    else:
        residual_expr = And(*residual)
    return local, residual_expr


def _strip_alias(name: str, binding: str) -> str:
    prefix = binding + "."
    return name[len(prefix):] if name.startswith(prefix) else name


# ----------------------------------------------------------------------
# Interval analysis
# ----------------------------------------------------------------------


class _Interval:
    """Merged comparison bounds for one column.

    ``low``/``high`` are ``(value, inclusive)`` or ``None`` (open);
    ``sources`` are the conjuncts the merged bounds subsume.  Merging
    incomparable values (mixed-type bounds) marks the interval unusable
    — those conjuncts stay in the filter, where ``Cmp.eval`` defines
    their semantics.
    """

    __slots__ = ("low", "high", "sources", "usable")

    def __init__(self) -> None:
        self.low: Optional[Tuple[Any, bool]] = None
        self.high: Optional[Tuple[Any, bool]] = None
        self.sources: List[Expr] = []
        self.usable = True

    @property
    def bounded(self) -> bool:
        return self.low is not None or self.high is not None

    def tighten(self, op: str, value: Any, source: Expr) -> None:
        if not self.usable:
            return
        inclusive = op in (">=", "<=")
        try:
            if op in (">", ">="):
                if self.low is None or value > self.low[0]:
                    self.low = (value, inclusive)
                elif value == self.low[0]:
                    self.low = (value, self.low[1] and inclusive)
            else:  # "<" or "<="
                if self.high is None or value < self.high[0]:
                    self.high = (value, inclusive)
                elif value == self.high[0]:
                    self.high = (value, self.high[1] and inclusive)
        except TypeError:
            self.usable = False
            return
        self.sources.append(source)


def _analyze_intervals(local: List[Expr], binding: str) -> Dict[str, _Interval]:
    """Merge the local ``< <= > >=`` conjuncts into per-column intervals."""
    intervals: Dict[str, _Interval] = {}
    for part in local:
        bound = column_bound(part)
        if bound is None or bound[1] == "=":
            continue
        column, op, value = bound
        column = _strip_alias(column, binding)
        intervals.setdefault(column, _Interval()).tighten(op, value, part)
    return {column: iv for column, iv in intervals.items() if iv.usable and iv.bounded}


_NUMERIC = (ColumnType.INT, ColumnType.REAL)
_TEXTUAL = (ColumnType.TEXT, ColumnType.CHAR)


def _bound_safe(table: Table, column: str, values: Sequence[Any]) -> bool:
    """True when index-probing ``column`` with ``values`` cannot raise.

    Ordered-index bisection compares bound constants against stored
    values, so the column must be NOT NULL (a NULL key would make the
    comparison raise, where the equivalent ``Cmp`` filter is simply
    False) and the constants must live in the column's type family.
    """
    if not table.schema.has_column(column):
        return False
    spec = table.schema.column(column)
    if spec.nullable:
        return False
    if spec.type in _NUMERIC:
        return all(
            isinstance(v, (int, float)) and not isinstance(v, bool) for v in values
        )
    if spec.type in _TEXTUAL:
        return all(isinstance(v, str) for v in values)
    return False


# ----------------------------------------------------------------------
# Interesting orders
# ----------------------------------------------------------------------


def _order_columns(
    query: Query, binding: str, table: Table
) -> Optional[List[Tuple[str, bool]]]:
    """The ORDER BY as ``(base-table column, descending)`` pairs, or
    ``None`` when it cannot be attributed to the base access path
    (joins, grouping, non-column keys, unknown columns).

    ``SortNode`` runs above the projection, so with explicit outputs an
    ORDER BY key must resolve *through* the projection to a plain base
    column; otherwise elision is refused and the plan keeps the sort —
    including the case where the sort would fail on a projected-away
    column, which must fail identically with or without indexes.
    """
    if not query.order_by or query.joins or query.aggregates or query.group_by:
        return None
    outputs: Optional[Dict[str, Expr]] = None
    if query.outputs is not None:
        outputs = dict(query.outputs)
    spec: List[Tuple[str, bool]] = []
    for expr, descending in query.order_by:
        if not isinstance(expr, Col):
            return None
        if outputs is not None:
            projected = outputs.get(expr.name)
            if not isinstance(projected, Col):
                return None
            expr = projected
        column = _strip_alias(expr.name, binding)
        if not table.schema.has_column(column):
            return None
        spec.append((column, descending))
    return spec


def _trivial_order(
    order_spec: Optional[List[Tuple[str, bool]]], eq_columns: Sequence[str]
) -> bool:
    """Every ORDER BY column pinned to a constant → any row order works."""
    return order_spec is not None and all(c in eq_columns for c, _d in order_spec)


def _match_index_order(
    index_columns: Sequence[str],
    eq_columns: Sequence[str],
    order_spec: Optional[List[Tuple[str, bool]]],
) -> Optional[bool]:
    """Whether a scan of an ordered index satisfies the ORDER BY.

    Equality-bound columns are constant in the output, so they can be
    dropped from both the ORDER BY and the index key.  The remaining
    ORDER BY columns must be a prefix of the remaining index columns
    with one shared direction.  Returns ``None`` (unsatisfiable),
    ``False`` (forward scan), or ``True`` (reverse scan).
    """
    if order_spec is None:
        return None
    keys = [(c, d) for c, d in order_spec if c not in eq_columns]
    if not keys:
        return False
    direction = keys[0][1]
    if any(d != direction for _c, d in keys):
        return None
    available = [c for c in index_columns if c not in eq_columns]
    if [c for c, _d in keys] != available[: len(keys)]:
        return None
    return direction


# ----------------------------------------------------------------------
# Access-path selection
# ----------------------------------------------------------------------


def _choose_access_path(
    table: Table,
    binding: str,
    alias: Optional[str],
    local: List[Expr],
    order_spec: Optional[List[Tuple[str, bool]]] = None,
) -> Tuple[PlanNode, List[Expr], bool]:
    """Apply the planner rules; returns the access node, leftover
    conjuncts that must still be filtered, and whether the node already
    yields rows in the requested ORDER BY order."""
    eq_bindings: Dict[str, Any] = {}
    eq_sources: Dict[str, Expr] = {}
    for part in local:
        bound = column_bound(part)
        if bound is not None and bound[1] == "=":
            column = _strip_alias(bound[0], binding)
            eq_bindings[column] = bound[2]
            eq_sources[column] = part
    eq_columns = tuple(eq_bindings)

    # Rule 1: equality index (including the primary-key-backed indexes).
    for spec in table.index_specs.values():
        if all(column in eq_bindings for column in spec.columns):
            key = tuple(eq_bindings[column] for column in spec.columns)
            used = {eq_sources[column] for column in spec.columns}
            leftover = [part for part in local if part not in used]
            node = IndexEqScan(table, spec.name, key, alias)
            return node, leftover, _trivial_order(order_spec, eq_columns)

    # Rule 2: prefix scan on an ordered index.
    for part in local:
        if isinstance(part, PrefixMatch):
            column = _strip_alias(part.column.name, binding)
            for spec in table.index_specs.values():
                if spec.ordered and spec.columns[0] == column:
                    leftover = [p for p in local if p is not part]
                    # the prefix scan is exact (startswith), nothing residual
                    node = IndexPrefixScan(table, spec.name, part.prefix, alias)
                    ordered = (
                        _match_index_order(spec.columns, eq_columns, order_spec)
                        is False  # forward scans only
                    )
                    return node, leftover, ordered

    # Rule 3: range scan on an ordered index.  Candidates score by how
    # much they push into the index: equality-bound leading columns, a
    # bounded range on the next column, and ORDER BY satisfaction.
    intervals = _analyze_intervals(local, binding)
    best: Optional[Tuple[Tuple[int, int, int], IndexSpecChoice]] = None
    for spec in table.index_specs.values():
        if not spec.ordered:
            continue
        eq_len = 0
        while (
            eq_len < len(spec.columns)
            and spec.columns[eq_len] in eq_bindings
            and _bound_safe(
                table, spec.columns[eq_len], [eq_bindings[spec.columns[eq_len]]]
            )
        ):
            eq_len += 1
        # rule 1 failed, so at least one column is not equality-bound
        eq_len = min(eq_len, len(spec.columns) - 1)
        range_column = spec.columns[eq_len]
        interval = intervals.get(range_column)
        if interval is not None:
            bound_values = [pair[0] for pair in (interval.low, interval.high) if pair]
            if not _bound_safe(table, range_column, bound_values):
                interval = None
        direction = _match_index_order(spec.columns, eq_columns, order_spec)
        satisfies_order = direction is not None
        if eq_len == 0 and interval is None and not satisfies_order:
            continue  # nothing to push down; a full index scan buys nothing
        bounds = int(interval is not None and interval.low is not None) + int(
            interval is not None and interval.high is not None
        )
        score = (eq_len, bounds, int(satisfies_order))
        choice = IndexSpecChoice(spec.name, spec.columns, eq_len, interval, direction)
        if best is None or score > best[0]:
            best = (score, choice)
    if best is not None:
        choice = best[1]
        node = _range_scan_node(table, alias, choice, eq_bindings)
        used = {eq_sources[c] for c in choice.columns[: choice.eq_len]}
        if choice.interval is not None:
            used.update(choice.interval.sources)
        leftover = [part for part in local if part not in used]
        return node, leftover, choice.direction is not None

    # Rule 4: fall back to a sequential scan.
    node = SeqScan(table, alias)
    return node, list(local), _trivial_order(order_spec, eq_columns)


@dataclass(frozen=True)
class IndexSpecChoice:
    """A scored rule-3 candidate: which ordered index, how many leading
    equality columns, the (possibly absent) range interval on the next
    column, and the scan direction satisfying the ORDER BY (``None``
    when it does not)."""

    name: str
    columns: Tuple[str, ...]
    eq_len: int
    interval: Optional[_Interval]
    direction: Optional[bool]


def _range_scan_node(
    table: Table,
    alias: Optional[str],
    choice: IndexSpecChoice,
    eq_bindings: Dict[str, Any],
) -> IndexRangeScan:
    """Convert merged bounds into index-key bounds.

    Keys in a multi-column index extend the bounded prefix, and a short
    tuple sorts before any of its extensions — so inclusive-low bounds
    need no padding, while inclusive-high (and exclusive-low) bounds are
    padded with ``MAX_KEY`` so every extension of the bound prefix falls
    on the correct side.
    """
    prefix = tuple(eq_bindings[c] for c in choice.columns[: choice.eq_len])
    extra = len(choice.columns) - choice.eq_len - 1
    low: Optional[Tuple[Any, ...]] = None
    high: Optional[Tuple[Any, ...]] = None
    include_low = include_high = True
    interval = choice.interval
    if interval is not None and interval.low is not None:
        value, inclusive = interval.low
        if inclusive:
            low = prefix + (value,)
        else:
            low, include_low = prefix + (value,) + (MAX_KEY,) * extra, False
    elif choice.eq_len:
        low = prefix
    if interval is not None and interval.high is not None:
        value, inclusive = interval.high
        if inclusive:
            high = prefix + (value,) + (MAX_KEY,) * extra
        else:
            high, include_high = prefix + (value,), False
    elif choice.eq_len:
        high = prefix + (MAX_KEY,) * (len(choice.columns) - choice.eq_len)
    return IndexRangeScan(
        table,
        choice.name,
        low,
        high,
        include_low,
        include_high,
        alias,
        reverse=choice.direction is True,
    )


# ----------------------------------------------------------------------
# Query compilation
# ----------------------------------------------------------------------


def plan_query(
    tables: Dict[str, Table], query: Query, *, naive: bool = False
) -> PlanNode:
    """Compile a logical query to a physical plan.

    ``naive=True`` disables every planner rule: each table access is a
    forced ``SeqScan`` with all pushable conjuncts in ``FilterNode``s and
    ORDER BY always realized by a ``SortNode`` — the seed planner's
    behavior, kept as the oracle for differential plan-equivalence
    testing and the baseline for planner benchmarks.
    """

    def get_table(ref: TableRef) -> Table:
        try:
            return tables[ref.name]
        except KeyError:
            raise UnknownTableError(f"unknown table {ref.name!r}") from None

    base_table = get_table(query.table)
    local, residual = _split_predicate_for(query.table.binding, base_table, query.where)
    if naive:
        node: PlanNode = SeqScan(base_table, query.table.alias)
        leftover, order_satisfied = local, False
    else:
        order_spec = _order_columns(query, query.table.binding, base_table)
        node, leftover, order_satisfied = _choose_access_path(
            base_table, query.table.binding, query.table.alias, local, order_spec
        )
    if leftover:
        node = FilterNode(node, And(*leftover) if len(leftover) > 1 else leftover[0])

    for join in query.joins:
        right_table = get_table(join.table)
        right_local, residual = _split_predicate_for(
            join.table.binding, right_table, residual
        )
        if naive:
            right_node: PlanNode = SeqScan(right_table, join.table.alias)
            right_leftover = right_local
        else:
            right_node, right_leftover, _ = _choose_access_path(
                right_table, join.table.binding, join.table.alias, right_local
            )
        if right_leftover:
            right_node = FilterNode(
                right_node,
                And(*right_leftover) if len(right_leftover) > 1 else right_leftover[0],
            )
        node = HashJoinNode(node, right_node, join.left_key, join.right_key)

    if residual is not None:
        node = FilterNode(node, residual)

    if query.aggregates or query.group_by:
        node = AggregateNode(node, query.group_by, query.aggregates)
        if query.having is not None:
            # HAVING filters *groups*: it runs over aggregate outputs
            node = FilterNode(node, query.having)
    elif query.outputs is not None:
        node = ProjectNode(node, query.outputs)

    if query.distinct:
        node = DistinctNode(node)
    if query.order_by and not order_satisfied:
        node = SortNode(node, query.order_by)
    if query.limit is not None or query.offset:
        node = LimitNode(node, query.limit, query.offset)
    return node
