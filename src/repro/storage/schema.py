"""Table schemas: columns, nullability, keys, and index declarations."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .errors import SchemaError, UnknownColumnError
from .types import ColumnType, coerce_value, validate_value, value_bytes

__all__ = ["Column", "IndexSpec", "TableSchema"]


@dataclass(frozen=True)
class Column:
    """One column definition."""

    name: str
    type: ColumnType
    nullable: bool = True
    default: Any = None

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"invalid column name: {self.name!r}")
        if isinstance(self.type, str):
            # accept SQL-style spellings ("INTEGER", "varchar", ...) so
            # the ColumnType.parse alias table applies to programmatic
            # DDL too, not only the SQL front-end
            object.__setattr__(self, "type", ColumnType.parse(self.type))
        if self.default is not None:
            validate_value(self.type, self.default)


@dataclass(frozen=True)
class IndexSpec:
    """A secondary index over one or more columns.

    ``unique`` enforces at-most-one row per key; ``ordered`` builds a
    sorted index supporting range and prefix scans (needed for the
    provenance store's ``Loc LIKE 'T/c2/%'`` descendant lookups).
    """

    name: str
    columns: Tuple[str, ...]
    unique: bool = False
    ordered: bool = False

    def __post_init__(self) -> None:
        if not self.columns:
            raise SchemaError(f"index {self.name!r} must cover at least one column")


class TableSchema:
    """Schema of one table: ordered columns, primary key, secondary indexes.

    >>> schema = TableSchema(
    ...     "prov",
    ...     [Column("tid", ColumnType.INT, nullable=False),
    ...      Column("op", ColumnType.CHAR, nullable=False),
    ...      Column("loc", ColumnType.TEXT, nullable=False),
    ...      Column("src", ColumnType.TEXT)],
    ...     primary_key=("tid", "loc"),
    ... )
    >>> schema.column_index("loc")
    2
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column],
        primary_key: Sequence[str] = (),
        indexes: Sequence[IndexSpec] = (),
    ) -> None:
        if not name or not name.isidentifier():
            raise SchemaError(f"invalid table name: {name!r}")
        if not columns:
            raise SchemaError("a table must have at least one column")
        names = [column.name for column in columns]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate column names in table {name!r}")
        self.name = name
        self.columns: Tuple[Column, ...] = tuple(columns)
        self._positions: Dict[str, int] = {c.name: i for i, c in enumerate(self.columns)}
        for key_column in primary_key:
            if key_column not in self._positions:
                raise SchemaError(f"primary key column {key_column!r} not in table {name!r}")
        self.primary_key: Tuple[str, ...] = tuple(primary_key)
        seen_index_names = set()
        for spec in indexes:
            if spec.name in seen_index_names:
                raise SchemaError(f"duplicate index name {spec.name!r}")
            seen_index_names.add(spec.name)
            for column in spec.columns:
                if column not in self._positions:
                    raise SchemaError(f"index column {column!r} not in table {name!r}")
        self.indexes: Tuple[IndexSpec, ...] = tuple(indexes)
        # precomputed once: row->env construction touches this per row on
        # every scan and join probe, so a fresh per-call tuple shows up
        # directly in the hot-path profiles
        self._column_names: Tuple[str, ...] = tuple(
            column.name for column in self.columns
        )

    # ------------------------------------------------------------------
    @property
    def column_names(self) -> Tuple[str, ...]:
        return self._column_names

    def column(self, name: str) -> Column:
        try:
            return self.columns[self._positions[name]]
        except KeyError:
            raise UnknownColumnError(f"no column {name!r} in table {self.name!r}") from None

    def column_index(self, name: str) -> int:
        try:
            return self._positions[name]
        except KeyError:
            raise UnknownColumnError(f"no column {name!r} in table {self.name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._positions

    # ------------------------------------------------------------------
    def normalize_row(self, row: "Sequence[Any] | Dict[str, Any]") -> Tuple[Any, ...]:
        """Validate and coerce a row (tuple in column order, or a mapping).

        Applies defaults and NOT NULL checks; raises on arity or type
        mismatches.  Returns the canonical value tuple.
        """
        if isinstance(row, dict):
            unknown = set(row) - set(self._positions)
            if unknown:
                raise UnknownColumnError(
                    f"unknown column(s) {sorted(unknown)} for table {self.name!r}"
                )
            values = [row.get(column.name, column.default) for column in self.columns]
        else:
            values = list(row)
            if len(values) != len(self.columns):
                raise SchemaError(
                    f"table {self.name!r} expects {len(self.columns)} values, "
                    f"got {len(values)}"
                )
        normalized = []
        for column, value in zip(self.columns, values):
            if value is None:
                value = column.default
            if value is None and not column.nullable:
                raise SchemaError(f"column {column.name!r} is NOT NULL")
            normalized.append(coerce_value(column.type, value))
        return tuple(normalized)

    def row_as_dict(self, row: Sequence[Any]) -> Dict[str, Any]:
        return dict(zip(self.column_names, row))

    def key_of(self, row: Sequence[Any]) -> Tuple[Any, ...]:
        """Extract the primary-key tuple from a normalized row."""
        return tuple(row[self._positions[c]] for c in self.primary_key)

    def project(self, row: Sequence[Any], columns: Sequence[str]) -> Tuple[Any, ...]:
        return tuple(row[self.column_index(c)] for c in columns)

    def row_bytes(self, row: Sequence[Any]) -> int:
        """Byte size of a row under the storage codec (header + values)."""
        header = 4  # row length prefix
        return header + sum(
            value_bytes(column.type, value) for column, value in zip(self.columns, row)
        )

    def __repr__(self) -> str:
        cols = ", ".join(f"{c.name} {c.type.value}" for c in self.columns)
        return f"TableSchema({self.name!r}: {cols})"
