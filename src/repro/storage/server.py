"""Asyncio front-end for the embedded database: batched wire protocol
over snapshot-isolation MVCC sessions.

The paper's cost model charges *round trips*, not rows —
:class:`~repro.storage.client.StoreClient` simulates exactly that on a
virtual clock.  This server makes the same economics hold on a real
socket: **one message = one round trip**, and a message carries an
arbitrary batch of operations, so a client that packs a whole
transaction (or a whole batched probe) into one frame pays one
turnaround for it — the wire twin of the store's batched ``loc IN
(...)`` probes.

Framing is length-prefixed: a 4-byte big-endian byte count, then a
UTF-8 JSON document.  Requests and responses pair by ``id``::

    -> {"id": 7, "ops": [{"op": "begin"},
                         {"op": "insert", "table": "prov", "row": [...]},
                         {"op": "commit"}]}
    <- {"id": 7, "results": [{"ok": true, "value": {"snapshot": 3, "txn": 9}},
                             {"ok": true, "value": {"rowid": 1}},
                             {"ok": true, "value": {"ts": 4}}]}

Each connection is one MVCC session: ``begin`` opens a snapshot
transaction for the connection, reads/writes inside it observe snapshot
isolation, ``commit``/``rollback`` close it, and operations arriving
outside a transaction run in their own single-op transaction
(autocommit).  A failed operation reports ``{"ok": false, "error":
<exception class>, "message": ...}`` and the remaining operations in
the batch still execute — batch framing is a transport optimization,
not an atomicity boundary; atomicity comes from ``begin``/``commit``.
A connection that drops with an open transaction is rolled back.

The server is single-threaded (one event loop): operations from
concurrent connections interleave at message granularity, which is the
cooperative model the MVCC layer is built for.  Concurrency wins come
from overlapping one client's network turnaround with another client's
server-side work — use :class:`ThreadedServer` to host the loop next to
synchronous callers (the benchmark harness does).
"""

from __future__ import annotations

import asyncio
import json
import socket
import struct
import threading
from typing import Any, Dict, List, Optional, Sequence

from . import errors as _errors
from .db import Database
from .errors import StorageError, TransactionError
from .mvcc import MVCCManager, MVCCTransaction

__all__ = [
    "DatabaseServer",
    "ThreadedServer",
    "ServerClient",
    "AsyncServerClient",
    "ServerError",
]

_HEADER = struct.Struct(">I")
#: refuse frames above this size — a corrupt length prefix must not
#: allocate gigabytes
MAX_FRAME = 64 * 1024 * 1024


class ServerError(StorageError):
    """An operation failed server-side with an exception class the
    client does not recognize (unknown classes degrade to this)."""


def _encode_frame(payload: Dict[str, Any]) -> bytes:
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    return _HEADER.pack(len(body)) + body


def _raise_remote(result: Dict[str, Any]) -> None:
    """Re-raise a ``{"ok": false}`` result as its typed exception."""
    name = result.get("error", "ServerError")
    message = result.get("message", "")
    cls = getattr(_errors, name, None)
    if cls is None or not (isinstance(cls, type) and issubclass(cls, Exception)):
        raise ServerError(f"{name}: {message}")
    raise cls(message)


class _Session:
    """Per-connection state: the open MVCC transaction, if any."""

    __slots__ = ("txn",)

    def __init__(self) -> None:
        self.txn: Optional[MVCCTransaction] = None


class DatabaseServer:
    """Serve one :class:`Database` over the batched wire protocol.

    ``port=0`` (the default) binds an ephemeral port; read it back from
    :attr:`port` after :meth:`start`.  A shared :class:`MVCCManager` may
    be injected so embedded callers and remote sessions coordinate
    through the same commit log.
    """

    def __init__(
        self,
        db: Database,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        manager: Optional[MVCCManager] = None,
    ) -> None:
        self.db = db
        self.manager = manager if manager is not None else MVCCManager(db)
        self.host = host
        self._requested_port = port
        self._server: Optional[asyncio.AbstractServer] = None
        #: served-message counter — each increment is one client round trip
        self.messages = 0
        self.operations = 0

    @property
    def port(self) -> int:
        if self._server is None:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self._requested_port
        )

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        session = _Session()
        try:
            while True:
                try:
                    header = await reader.readexactly(_HEADER.size)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break
                (length,) = _HEADER.unpack(header)
                if length > MAX_FRAME:
                    break  # corrupt framing: drop the connection
                try:
                    body = await reader.readexactly(length)
                except (asyncio.IncompleteReadError, ConnectionResetError):
                    break
                try:
                    request = json.loads(body.decode("utf-8"))
                except ValueError:
                    break
                response = self._serve_message(session, request)
                writer.write(_encode_frame(response))
                try:
                    await writer.drain()
                except ConnectionResetError:
                    break
        finally:
            if session.txn is not None and session.txn.status == "active":
                session.txn.rollback()
                session.txn = None
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):  # pragma: no cover - teardown races
                pass

    def _serve_message(
        self, session: _Session, request: Dict[str, Any]
    ) -> Dict[str, Any]:
        self.messages += 1
        results: List[Dict[str, Any]] = []
        ops = request.get("ops", [])
        if not isinstance(ops, list):
            ops = []
        for op in ops:
            self.operations += 1
            try:
                value = self._apply(session, op)
                results.append({"ok": True, "value": value})
            except Exception as exc:
                results.append(
                    {
                        "ok": False,
                        "error": type(exc).__name__,
                        "message": str(exc),
                    }
                )
        return {"id": request.get("id"), "results": results}

    # ------------------------------------------------------------------
    # Operations
    # ------------------------------------------------------------------
    def _apply(self, session: _Session, op: Dict[str, Any]) -> Any:
        kind = op.get("op")
        if kind == "ping":
            return {}
        if kind == "begin":
            if session.txn is not None and session.txn.status == "active":
                raise TransactionError("a transaction is already active")
            session.txn = self.manager.begin()
            return {"snapshot": session.txn.snapshot_ts, "txn": session.txn.txn_id}
        if kind == "commit":
            txn = self._require_txn(session)
            session.txn = None
            return {"ts": txn.commit()}
        if kind == "rollback":
            txn = self._require_txn(session)
            session.txn = None
            txn.rollback()
            return {}
        if kind == "stats":
            return self.db.stats()
        if kind == "mvcc_counters":
            return dict(self.manager.counters)

        # data operations: inside the session transaction when one is
        # open, else in a single-op autocommit transaction
        txn = session.txn
        if txn is not None and txn.status == "active":
            return self._data_op(txn, op)
        return self.manager.run(lambda t: self._data_op(t, op))

    @staticmethod
    def _require_txn(session: _Session) -> MVCCTransaction:
        txn = session.txn
        if txn is None or txn.status != "active":
            raise TransactionError("no active transaction on this connection")
        return txn

    def _data_op(self, txn: MVCCTransaction, op: Dict[str, Any]) -> Any:
        kind = op.get("op")
        if kind == "get":
            return txn.get(op["table"], op["key"])
        if kind == "scan":
            return txn.scan(op["table"])
        if kind == "insert":
            return {"rowid": txn.insert(op["table"], op["row"])}
        if kind == "insert_many":
            rowids = txn.insert_many(op["table"], op["rows"])
            return {"count": len(rowids)}
        if kind == "sql":
            text = op["text"]
            if _is_ddl(text):
                if txn._ops:
                    raise TransactionError(
                        "DDL is not snapshot-versioned; run it on a "
                        "connection with no open transaction"
                    )
                from .sql import execute_sql  # deferred: sql.py imports db.py

                return execute_sql(self.db, text)
            return txn.sql(text)
        raise TransactionError(f"unknown operation {kind!r}")


def _is_ddl(text: str) -> bool:
    head = text.lstrip().split(None, 1)
    if not head:
        return False
    first = head[0].upper()
    return first in ("CREATE", "DROP")


class ThreadedServer:
    """Host a :class:`DatabaseServer` on its own event-loop thread.

    Context manager for synchronous callers (tests, the benchmark
    harness)::

        with ThreadedServer(db) as server:
            client = ServerClient(server.host, server.port)
            ...

    All database work still happens on the one server thread; client
    threads only ever block on sockets, so the arrangement measures
    genuine request/response overlap rather than sharing a thread with
    the engine.
    """

    def __init__(self, db: Database, host: str = "127.0.0.1", *, manager=None) -> None:
        self.server = DatabaseServer(db, host, 0, manager=manager)
        self.host = host
        self.port: Optional[int] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()

    def __enter__(self) -> "ThreadedServer":
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        if not self._started.wait(timeout=10):  # pragma: no cover - defensive
            raise RuntimeError("server thread failed to start")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        self._loop = loop
        asyncio.set_event_loop(loop)

        async def boot() -> None:
            await self.server.start()
            self.port = self.server.port
            self._started.set()

        loop.run_until_complete(boot())
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.server.stop())
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=10)

    def run_on_loop(self, coro) -> Any:
        """Run a coroutine on the server's loop and wait for its result
        (used by the benchmark to drive async client fleets)."""
        assert self._loop is not None
        return asyncio.run_coroutine_threadsafe(coro, self._loop).result()


class ServerClient:
    """Blocking socket client; every :meth:`request` is one round trip."""

    def __init__(self, host: str, port: int, *, timeout: float = 30.0) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._next_id = 1
        #: messages sent — the client-side round-trip odometer, matching
        #: ``StoreClient``'s charging model
        self.round_trips = 0

    def close(self) -> None:
        try:
            self._sock.close()
        except OSError:  # pragma: no cover - defensive
            pass

    def __enter__(self) -> "ServerClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def request(self, ops: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        """Send one batched message; returns the raw per-op results."""
        request_id = self._next_id
        self._next_id += 1
        self._sock.sendall(_encode_frame({"id": request_id, "ops": list(ops)}))
        header = self._recv_exactly(_HEADER.size)
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME:
            raise ServerError("oversized response frame")
        body = self._recv_exactly(length)
        self.round_trips += 1
        response = json.loads(body.decode("utf-8"))
        if response.get("id") != request_id:
            raise ServerError(
                f"response id {response.get('id')!r} != request id {request_id}"
            )
        return response["results"]

    def _recv_exactly(self, count: int) -> bytes:
        chunks = []
        remaining = count
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ServerError("connection closed mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def call(self, op: Dict[str, Any]) -> Any:
        """One operation in its own message; raises typed errors."""
        result = self.request([op])[0]
        if not result["ok"]:
            _raise_remote(result)
        return result["value"]

    def batch(self, ops: Sequence[Dict[str, Any]]) -> List[Any]:
        """Many operations in one message; raises on the first failure."""
        values = []
        for result in self.request(ops):
            if not result["ok"]:
                _raise_remote(result)
            values.append(result["value"])
        return values

    # convenience wrappers — each is exactly one round trip
    def ping(self) -> None:
        self.call({"op": "ping"})

    def begin(self) -> Dict[str, Any]:
        return self.call({"op": "begin"})

    def commit(self) -> int:
        return self.call({"op": "commit"})["ts"]

    def rollback(self) -> None:
        self.call({"op": "rollback"})

    def get(self, table: str, key: Sequence[Any]) -> Optional[Dict[str, Any]]:
        return self.call({"op": "get", "table": table, "key": list(key)})

    def insert(self, table: str, row: Any) -> int:
        return self.call({"op": "insert", "table": table, "row": row})["rowid"]

    def sql(self, text: str) -> List[Dict[str, Any]]:
        return self.call({"op": "sql", "text": text})

    def stats(self) -> Dict[str, Any]:
        return self.call({"op": "stats"})


class AsyncServerClient:
    """Asyncio client; the await twin of :class:`ServerClient`."""

    def __init__(self) -> None:
        self._reader: Optional[asyncio.StreamReader] = None
        self._writer: Optional[asyncio.StreamWriter] = None
        self._next_id = 1
        self.round_trips = 0

    async def connect(self, host: str, port: int) -> "AsyncServerClient":
        self._reader, self._writer = await asyncio.open_connection(host, port)
        return self

    async def close(self) -> None:
        if self._writer is not None:
            self._writer.close()
            try:
                await self._writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):  # pragma: no cover
                pass

    async def request(self, ops: Sequence[Dict[str, Any]]) -> List[Dict[str, Any]]:
        request_id = self._next_id
        self._next_id += 1
        self._writer.write(_encode_frame({"id": request_id, "ops": list(ops)}))
        await self._writer.drain()
        header = await self._reader.readexactly(_HEADER.size)
        (length,) = _HEADER.unpack(header)
        if length > MAX_FRAME:
            raise ServerError("oversized response frame")
        body = await self._reader.readexactly(length)
        self.round_trips += 1
        response = json.loads(body.decode("utf-8"))
        if response.get("id") != request_id:
            raise ServerError(
                f"response id {response.get('id')!r} != request id {request_id}"
            )
        return response["results"]

    async def call(self, op: Dict[str, Any]) -> Any:
        result = (await self.request([op]))[0]
        if not result["ok"]:
            _raise_remote(result)
        return result["value"]

    async def batch(self, ops: Sequence[Dict[str, Any]]) -> List[Any]:
        values = []
        for result in await self.request(ops):
            if not result["ok"]:
                _raise_remote(result)
            values.append(result["value"])
        return values
