"""Database snapshots and checkpointing.

A snapshot file holds the full catalog (schemas, indexes) and every
table's rows in the binary codec; ``checkpoint`` atomically writes a
snapshot and truncates the WAL, bounding recovery time.  Together with
REDO recovery this completes the durability story: state = latest
snapshot + committed WAL suffix.

File format (v2, checksummed)::

    header   := magic "RPRO" u16 version u8 checksum_alg
                u64 wal_watermark u32 table_count
    table    := u16 name_len name_bytes u32 schema_len schema_json
                u32 row_count row*
    row      := length-prefixed codec row (see repro.storage.codec)
    footer   := magic "RPND" u32 crc-of-everything-before-the-footer

Schemas travel as JSON (they are metadata, not data) — column names,
types, nullability, defaults, primary key, and index declarations.

Durability hardening (v2):

* the temp file is flushed and fsynced *before* the atomic rename, and
  the containing directory is fsynced after it, so a crash at any
  point leaves either the old snapshot or the complete new one — never
  a zero-length or torn file at the final path;
* the footer checksum (algorithm named in the header — see
  :mod:`repro.common.checksum`) turns every bit flip or truncation
  into a typed :class:`~repro.storage.errors.StorageError` at load
  time, and every read in the loader is bounds-checked so no
  corruption surfaces as a raw ``struct.error``/``IndexError``;
* ``wal_watermark`` records the WAL LSN the snapshot contains state up
  to, so recovery can skip WAL records the snapshot already holds —
  which is what makes a crash *during* checkpoint truncation safe;
* v1 snapshots (no checksum, no watermark) still load, version-sniffed.

Crash points (see :class:`~repro.common.faults.FaultPlan`):
``snapshot.before_temp_write``, ``snapshot.mid_temp_write`` (before
each table), ``snapshot.after_fsync`` (temp durable, not yet renamed),
``snapshot.after_rename``, ``checkpoint.before_truncate``, and the
WAL's ``wal.truncate.begin``/``.mid``/``.end``.
"""

from __future__ import annotations

import json
import os
import struct
from typing import Any, Dict, List, Optional

from ..common.checksum import ALG_NAMES, PREFERRED_ALG, checksum
from ..common.faults import NO_FAULTS, durable_fsync, fsync_directory
from .codec import decode_row, encode_row
from .db import Database
from .errors import StorageError, WALError
from .schema import Column, IndexSpec, TableSchema
from .types import ColumnType

__all__ = ["save_snapshot", "load_snapshot", "checkpoint"]

_MAGIC = b"RPRO"
_FOOTER_MAGIC = b"RPND"
_VERSION = 2
#: u16 version, u8 checksum alg, u64 WAL watermark, u32 table count
_HEADER_V2 = struct.Struct("<HBQI")
_FOOTER_SIZE = len(_FOOTER_MAGIC) + 4


def _schema_to_json(schema: TableSchema) -> str:
    return json.dumps(
        {
            "name": schema.name,
            "columns": [
                {
                    "name": column.name,
                    "type": column.type.value,
                    "nullable": column.nullable,
                    "default": column.default,
                }
                for column in schema.columns
            ],
            "primary_key": list(schema.primary_key),
            "indexes": [
                {
                    "name": spec.name,
                    "columns": list(spec.columns),
                    "unique": spec.unique,
                    "ordered": spec.ordered,
                }
                for spec in schema.indexes
            ],
        }
    )


def _schema_from_json(text: str) -> TableSchema:
    data = json.loads(text)
    return TableSchema(
        data["name"],
        [
            Column(
                column["name"],
                ColumnType(column["type"]),
                nullable=column["nullable"],
                default=column["default"],
            )
            for column in data["columns"]
        ],
        primary_key=tuple(data["primary_key"]),
        indexes=tuple(
            IndexSpec(
                spec["name"],
                tuple(spec["columns"]),
                unique=spec["unique"],
                ordered=spec["ordered"],
            )
            for spec in data["indexes"]
        ),
    )


class _ChecksumWriter:
    """Tracks a running checksum and byte count over logical writes.

    The checksum is taken *before* the (possibly fault-wrapped) handle
    sees the bytes, so an injected bit flip lands in the file but not
    in the recorded checksum — exactly the mismatch the loader must
    catch.
    """

    def __init__(self, handle: Any, alg: int) -> None:
        self._handle = handle
        self.alg = alg
        self.crc = 0
        self.written = 0

    def write(self, data: bytes) -> None:
        self.crc = checksum(self.alg, data, self.crc)
        self.written += len(data)
        self._handle.write(data)


def save_snapshot(db: Database, path: str, *, faults=None) -> int:
    """Write the whole database to ``path``; returns bytes written.

    The write goes to a temp file that is fsynced before being renamed
    into place (and the directory fsynced after), so a crash at any
    point leaves the previous snapshot intact and never exposes a torn
    file at ``path``.  A failed write raises ``StorageError`` and
    removes the temp file.
    """
    if db.in_transaction:
        raise StorageError("cannot snapshot with an open transaction")
    faults = faults if faults is not None else NO_FAULTS
    watermark = db._wal.last_lsn() if db._wal is not None else 0
    alg = PREFERRED_ALG
    temp = path + ".tmp"
    faults.reached("snapshot.before_temp_write")
    try:
        with open(temp, "wb") as raw:
            handle = faults.wrap(raw, os.path.basename(temp))
            writer = _ChecksumWriter(handle, alg)
            writer.write(_MAGIC)
            writer.write(_HEADER_V2.pack(_VERSION, alg, watermark, len(db.tables)))
            for name in sorted(db.tables):
                faults.reached("snapshot.mid_temp_write")
                table = db.tables[name]
                schema_json = _schema_to_json(table.schema).encode("utf-8")
                name_bytes = name.encode("utf-8")
                writer.write(struct.pack("<H", len(name_bytes)))
                writer.write(name_bytes)
                writer.write(struct.pack("<I", len(schema_json)))
                writer.write(schema_json)
                writer.write(struct.pack("<I", table.row_count))
                for _rowid, row in table.scan():
                    writer.write(encode_row(table.schema, row))
            # the footer seals everything before it (and is excluded)
            handle.write(_FOOTER_MAGIC + struct.pack("<I", writer.crc))
            size = writer.written + _FOOTER_SIZE
            durable_fsync(handle)
    except OSError as exc:
        try:
            os.remove(temp)
        except OSError:
            pass
        raise StorageError(f"snapshot write to {temp!r} failed: {exc}") from exc
    faults.reached("snapshot.after_fsync")
    os.replace(temp, path)
    fsync_directory(path)
    faults.reached("snapshot.after_rename")
    return size


class _Reader:
    """A bounds-checked cursor over snapshot bytes: every read names
    what it wanted and where, so truncation surfaces as a typed
    ``StorageError`` instead of a raw ``struct.error``."""

    def __init__(self, data: bytes, path: str) -> None:
        self._data = data
        self._path = path
        self.offset = 0

    def take(self, count: int, what: str) -> bytes:
        have = len(self._data) - self.offset
        if count > have:
            raise StorageError(
                f"truncated snapshot {self._path!r}: needed {count} byte(s) "
                f"for {what} at offset {self.offset}, found {have}"
            )
        chunk = self._data[self.offset : self.offset + count]
        self.offset += count
        return chunk

    def u16(self, what: str) -> int:
        return struct.unpack("<H", self.take(2, what))[0]

    def u32(self, what: str) -> int:
        return struct.unpack("<I", self.take(4, what))[0]

    def text(self, count: int, what: str) -> str:
        raw = self.take(count, what)
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise StorageError(
                f"corrupt snapshot {self._path!r}: {what} at offset "
                f"{self.offset - count} is not UTF-8 ({exc})"
            ) from exc


def load_snapshot(
    path: str, name: str = "db", *, wal_dir: Optional[str] = None
) -> Database:
    """Rebuild a database from a snapshot file.

    Every truncation or corruption raises ``StorageError`` naming the
    offending offset; v2 files are checksum-verified before any
    parsing.  ``wal_dir`` re-attaches a write-ahead log (for a
    subsequent ``Database.recover()`` of the post-snapshot suffix); the
    snapshot's WAL watermark is carried onto the returned database so
    recovery skips records the snapshot already contains.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) < 6 or data[:4] != _MAGIC:
        raise StorageError(f"{path!r} is not a snapshot file")
    (version,) = struct.unpack_from("<H", data, 4)
    watermark = 0
    if version == 1:
        reader = _Reader(data, path)
        reader.take(6, "v1 header")
        table_count = reader.u32("v1 table count")
        body_end = len(data)
    elif version == _VERSION:
        if len(data) < 4 + _HEADER_V2.size + _FOOTER_SIZE:
            raise StorageError(
                f"truncated snapshot {path!r}: {len(data)} byte(s) is too "
                f"short for a v{_VERSION} header and footer"
            )
        if data[-_FOOTER_SIZE:-4] != _FOOTER_MAGIC:
            raise StorageError(
                f"corrupt snapshot {path!r}: footer magic missing at offset "
                f"{len(data) - _FOOTER_SIZE} (file truncated or overwritten)"
            )
        (stored_crc,) = struct.unpack_from("<I", data, len(data) - 4)
        _version, alg, watermark, table_count = _HEADER_V2.unpack_from(data, 4)
        if alg not in ALG_NAMES:
            raise StorageError(
                f"corrupt snapshot {path!r}: unknown checksum algorithm id "
                f"{alg} at offset 6"
            )
        actual_crc = checksum(alg, data[: -_FOOTER_SIZE])
        if actual_crc != stored_crc:
            raise StorageError(
                f"corrupt snapshot {path!r}: {ALG_NAMES[alg]} mismatch "
                f"(stored {stored_crc:#010x}, computed {actual_crc:#010x})"
            )
        reader = _Reader(data, path)
        reader.take(4 + _HEADER_V2.size, "v2 header")
        body_end = len(data) - _FOOTER_SIZE
    else:
        raise StorageError(f"unsupported snapshot version {version}")

    db = Database(name, wal_dir=wal_dir)
    db._wal_watermark = watermark
    for _table in range(table_count):
        name_len = reader.u16("table name length")
        table_name = reader.text(name_len, "table name")
        schema_len = reader.u32("schema length")
        schema_json = reader.text(schema_len, f"schema of {table_name!r}")
        try:
            schema = _schema_from_json(schema_json)
        except (ValueError, KeyError, TypeError) as exc:
            raise StorageError(
                f"corrupt snapshot {path!r}: unreadable schema for "
                f"{table_name!r} ({exc})"
            ) from exc
        if schema.name != table_name:
            raise StorageError(
                f"snapshot corruption: {table_name!r} vs {schema.name!r}"
            )
        db.create_table(schema)
        row_count = reader.u32(f"row count of {table_name!r}")
        rows: List[Any] = []
        for row_index in range(row_count):
            if reader.offset >= body_end:
                raise StorageError(
                    f"truncated snapshot {path!r}: row {row_index} of "
                    f"{table_name!r} would start at offset {reader.offset}, "
                    f"past the table data"
                )
            try:
                row, reader.offset = decode_row(schema, data, reader.offset)
            except (WALError, struct.error, IndexError, UnicodeDecodeError) as exc:
                raise StorageError(
                    f"corrupt snapshot {path!r}: row {row_index} of "
                    f"{table_name!r} at offset {reader.offset}: {exc}"
                ) from exc
            rows.append(row)
        if rows:
            # fast path: snapshot rows were valid when written, so skip
            # the per-row transaction bookkeeping of insert_many; the
            # batch lands in one heap append and the table's indexes are
            # bulk-built (sort-then-chunk) rather than grown row by row
            db.bulk_load(table_name, rows)
    return db


def checkpoint(db: Database, path: str, *, faults=None) -> int:
    """Snapshot the database and truncate its WAL (if any).

    After a checkpoint, recovery = load_snapshot + replay of the (now
    empty) log; the log stops growing without bound.  The ordering is
    the durability-critical part: the WAL is truncated only after the
    snapshot is durably renamed into place, and the snapshot's WAL
    watermark makes recovery skip any log suffix a crash mid-truncate
    leaves behind — every interleaving recovers the committed state.
    """
    faults = faults if faults is not None else NO_FAULTS
    size = save_snapshot(db, path, faults=faults)
    faults.reached("checkpoint.before_truncate")
    if db._wal is not None:
        db._wal.truncate()
    return size
