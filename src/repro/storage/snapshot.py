"""Database snapshots and checkpointing.

A snapshot file holds the full catalog (schemas, indexes) and every
table's rows in the binary codec; ``checkpoint`` atomically writes a
snapshot and truncates the WAL, bounding recovery time.  Together with
REDO recovery this completes the durability story: state = latest
snapshot + committed WAL suffix.

File format::

    header   := magic "RPRO" u16 version u32 table_count
    table    := u16 name_len name_bytes u32 schema_len schema_json
                u32 row_count row*
    row      := length-prefixed codec row (see repro.storage.codec)

Schemas travel as JSON (they are metadata, not data) — column names,
types, nullability, defaults, primary key, and index declarations.
"""

from __future__ import annotations

import json
import os
import struct
from typing import Any, Dict, List

from .codec import decode_row, encode_row
from .db import Database
from .errors import StorageError
from .schema import Column, IndexSpec, TableSchema
from .types import ColumnType

__all__ = ["save_snapshot", "load_snapshot", "checkpoint"]

_MAGIC = b"RPRO"
_VERSION = 1


def _schema_to_json(schema: TableSchema) -> str:
    return json.dumps(
        {
            "name": schema.name,
            "columns": [
                {
                    "name": column.name,
                    "type": column.type.value,
                    "nullable": column.nullable,
                    "default": column.default,
                }
                for column in schema.columns
            ],
            "primary_key": list(schema.primary_key),
            "indexes": [
                {
                    "name": spec.name,
                    "columns": list(spec.columns),
                    "unique": spec.unique,
                    "ordered": spec.ordered,
                }
                for spec in schema.indexes
            ],
        }
    )


def _schema_from_json(text: str) -> TableSchema:
    data = json.loads(text)
    return TableSchema(
        data["name"],
        [
            Column(
                column["name"],
                ColumnType(column["type"]),
                nullable=column["nullable"],
                default=column["default"],
            )
            for column in data["columns"]
        ],
        primary_key=tuple(data["primary_key"]),
        indexes=tuple(
            IndexSpec(
                spec["name"],
                tuple(spec["columns"]),
                unique=spec["unique"],
                ordered=spec["ordered"],
            )
            for spec in data["indexes"]
        ),
    )


def save_snapshot(db: Database, path: str) -> int:
    """Write the whole database to ``path``; returns bytes written.

    The write goes to a temp file first and is renamed into place, so a
    crash mid-snapshot never corrupts the previous snapshot."""
    if db.in_transaction:
        raise StorageError("cannot snapshot with an open transaction")
    temp = path + ".tmp"
    with open(temp, "wb") as handle:
        handle.write(_MAGIC)
        handle.write(struct.pack("<HI", _VERSION, len(db.tables)))
        for name in sorted(db.tables):
            table = db.tables[name]
            schema_json = _schema_to_json(table.schema).encode("utf-8")
            name_bytes = name.encode("utf-8")
            handle.write(struct.pack("<H", len(name_bytes)))
            handle.write(name_bytes)
            handle.write(struct.pack("<I", len(schema_json)))
            handle.write(schema_json)
            handle.write(struct.pack("<I", table.row_count))
            for _rowid, row in table.scan():
                handle.write(encode_row(table.schema, row))
        size = handle.tell()
    os.replace(temp, path)
    return size


def load_snapshot(path: str, name: str = "db") -> Database:
    """Rebuild a database from a snapshot file."""
    with open(path, "rb") as handle:
        data = handle.read()
    if data[:4] != _MAGIC:
        raise StorageError(f"{path!r} is not a snapshot file")
    (version, table_count) = struct.unpack_from("<HI", data, 4)
    if version != _VERSION:
        raise StorageError(f"unsupported snapshot version {version}")
    offset = 10
    db = Database(name)
    for _ in range(table_count):
        (name_len,) = struct.unpack_from("<H", data, offset)
        offset += 2
        table_name = data[offset : offset + name_len].decode("utf-8")
        offset += name_len
        (schema_len,) = struct.unpack_from("<I", data, offset)
        offset += 4
        schema = _schema_from_json(data[offset : offset + schema_len].decode("utf-8"))
        offset += schema_len
        if schema.name != table_name:
            raise StorageError(f"snapshot corruption: {table_name!r} vs {schema.name!r}")
        db.create_table(schema)
        (row_count,) = struct.unpack_from("<I", data, offset)
        offset += 4
        rows: List[Any] = []
        for _row in range(row_count):
            row, offset = decode_row(schema, data, offset)
            rows.append(row)
        if rows:
            # fast path: snapshot rows were valid when written, so skip
            # the per-row transaction bookkeeping of insert_many; the
            # batch lands in one heap append and the table's indexes are
            # bulk-built (sort-then-chunk) rather than grown row by row
            db.bulk_load(table_name, rows)
    return db


def checkpoint(db: Database, path: str) -> int:
    """Snapshot the database and truncate its WAL (if any).

    After a checkpoint, recovery = load_snapshot + replay of the (now
    empty) log; the log stops growing without bound."""
    size = save_snapshot(db, path)
    if db._wal is not None:
        db._wal.truncate()
    return size
