"""A small SQL subset over the embedded engine.

Supported statements::

    CREATE TABLE t (col TYPE [NOT NULL] [DEFAULT lit] ..., PRIMARY KEY (a, b))
    CREATE [UNIQUE] [ORDERED] INDEX name ON t (a, b)
    DROP TABLE t
    INSERT INTO t [(cols)] VALUES (lits), (lits), ...
    SELECT [DISTINCT] cols|*|aggs FROM t [alias]
        [JOIN t2 [alias] ON a.x = b.x [AND a.y = b.y | AND a.y < b.y]...]...
        [WHERE predicate] [GROUP BY cols] [HAVING predicate]
        [ORDER BY col [ASC|DESC], ...] [LIMIT n [OFFSET m]]
    DELETE FROM t [WHERE predicate]
    UPDATE t SET col = lit, ... [WHERE predicate]

Predicates support ``= != < <= > >= AND OR NOT IS [NOT] NULL``,
``[NOT] IN (...)`` (the planner maps an IN list on an ordered index
onto one multi-range union scan), ``[NOT] BETWEEN lo AND hi``
(desugared to a ``>=``/``<=`` pair the planner merges onto ordered
indexes), and ``[NOT] LIKE 'prefix%'`` (prefix patterns only — the
shape provenance queries need).  This is intentionally a subset: enough
to use the engine the way CPDB used MySQL, with readable tests.

``Database.prepare(sql)`` parses a statement once with ``?``
placeholders in literal positions and returns a
:class:`PreparedStatement` whose ``execute(params)`` binds values and
runs through the plan cache — no re-parse, no statistics re-sampling.
A bare ``?`` passed to :func:`execute_sql` is rejected.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .db import Database
from .errors import SQLError
from .expr import (
    And,
    Cmp,
    Col,
    Const,
    Expr,
    InList,
    IsNull,
    Not,
    Or,
    PrefixMatch,
)
from .query import JoinSpec, Query, TableRef
from .schema import Column, IndexSpec, TableSchema
from .types import ColumnType

__all__ = ["execute_sql", "parse_statement", "PreparedStatement", "SQLError"]

_TOKEN_RE = re.compile(
    r"""
    \s*(?:
        (?P<string>'(?:[^']|'')*')
      | (?P<number>-?\d+\.\d+|-?\d+)
      | (?P<op><=|>=|!=|<>|=|<|>|\(|\)|,|\*|\.|\?)
      | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
    )
    """,
    re.VERBOSE,
)

_KEYWORDS = {
    "create", "table", "index", "unique", "ordered", "on", "drop",
    "insert", "into", "values", "select", "distinct", "from", "join",
    "where", "group", "order", "by", "asc", "desc", "limit", "offset",
    "having", "delete",
    "update", "set", "and", "or", "not", "is", "null", "in", "like", "between",
    "primary", "key", "default", "as", "count", "sum", "avg", "min", "max",
    "true", "false",
}


@dataclass
class _Token:
    kind: str  # "string" | "number" | "op" | "word"
    text: str


@dataclass(frozen=True)
class _Param:
    """Positional ``?`` placeholder sentinel, substituted at bind time."""

    index: int


def _tokenize(sql: str) -> List[_Token]:
    tokens: List[_Token] = []
    position = 0
    text = sql.strip().rstrip(";")
    while position < len(text):
        match = _TOKEN_RE.match(text, position)
        if match is None or match.end() == position:
            raise SQLError(f"cannot tokenize SQL at: {text[position:position+20]!r}")
        position = match.end()
        for kind in ("string", "number", "op", "word"):
            value = match.group(kind)
            if value is not None:
                tokens.append(_Token(kind, value))
                break
    return tokens


class _Parser:
    def __init__(self, tokens: List[_Token], allow_params: bool = False) -> None:
        self._tokens = tokens
        self._position = 0
        self._allow_params = allow_params
        self.param_count = 0

    # ---- token utilities -------------------------------------------
    def peek(self) -> Optional[_Token]:
        if self._position < len(self._tokens):
            return self._tokens[self._position]
        return None

    def next(self) -> _Token:
        token = self.peek()
        if token is None:
            raise SQLError("unexpected end of statement")
        self._position += 1
        return token

    def accept_word(self, *words: str) -> Optional[str]:
        token = self.peek()
        if token is not None and token.kind == "word" and token.text.lower() in words:
            self._position += 1
            return token.text.lower()
        return None

    def expect_word(self, word: str) -> None:
        if self.accept_word(word) is None:
            raise SQLError(f"expected {word.upper()!r} near {self._context()}")

    def accept_op(self, op: str) -> bool:
        token = self.peek()
        if token is not None and token.kind == "op" and token.text == op:
            self._position += 1
            return True
        return False

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            raise SQLError(f"expected {op!r} near {self._context()}")

    def identifier(self) -> str:
        token = self.next()
        if token.kind != "word" or token.text.lower() in _KEYWORDS - {
            "count", "sum", "avg", "min", "max", "key", "index", "table",
        }:
            raise SQLError(f"expected identifier, got {token.text!r}")
        return token.text

    def at_end(self) -> bool:
        return self._position >= len(self._tokens)

    def _context(self) -> str:
        token = self.peek()
        return repr(token.text) if token else "<end>"

    # ---- literals ---------------------------------------------------
    def literal(self) -> Any:
        token = self.next()
        if token.kind == "op" and token.text == "?":
            if not self._allow_params:
                raise SQLError(
                    'placeholders ("?") are only valid in prepared statements'
                )
            param = _Param(self.param_count)
            self.param_count += 1
            return param
        if token.kind == "string":
            return token.text[1:-1].replace("''", "'")
        if token.kind == "number":
            return float(token.text) if "." in token.text else int(token.text)
        if token.kind == "word":
            lowered = token.text.lower()
            if lowered == "null":
                return None
            if lowered == "true":
                return True
            if lowered == "false":
                return False
        raise SQLError(f"expected a literal, got {token.text!r}")

    # ---- column references -----------------------------------------
    def column_ref(self) -> str:
        first = self.identifier()
        if self.accept_op("."):
            second = self.identifier()
            return f"{first}.{second}"
        return first

    # ---- predicates (precedence: OR < AND < NOT < atom) -------------
    def predicate(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        left = self._and_expr()
        parts = [left]
        while self.accept_word("or"):
            parts.append(self._and_expr())
        return parts[0] if len(parts) == 1 else Or(*parts)

    def _and_expr(self) -> Expr:
        left = self._not_expr()
        parts = [left]
        while self.accept_word("and"):
            parts.append(self._not_expr())
        return parts[0] if len(parts) == 1 else And(*parts)

    def _not_expr(self) -> Expr:
        if self.accept_word("not"):
            return Not(self._not_expr())
        return self._atom_expr()

    def _atom_expr(self) -> Expr:
        if self.accept_op("("):
            inner = self.predicate()
            self.expect_op(")")
            return inner
        column = Col(self.column_ref())
        if self.accept_word("is"):
            negated = self.accept_word("not") is not None
            self.expect_word("null")
            return IsNull(column, negated=negated)
        if self.accept_word("not"):
            # the negated atom forms: col NOT IN / NOT BETWEEN / NOT LIKE
            if self.accept_word("in"):
                return Not(self._in_list(column))
            if self.accept_word("between"):
                return Not(self._between(column))
            if self.accept_word("like"):
                return Not(self._like(column))
            raise SQLError(f"expected IN, BETWEEN, or LIKE near {self._context()}")
        if self.accept_word("in"):
            return self._in_list(column)
        if self.accept_word("between"):
            return self._between(column)
        if self.accept_word("like"):
            return self._like(column)
        token = self.next()
        if token.kind != "op" or token.text not in ("=", "!=", "<>", "<", "<=", ">", ">="):
            raise SQLError(f"expected comparison operator, got {token.text!r}")
        op = "!=" if token.text == "<>" else token.text
        # right side: literal or column
        right_token = self.peek()
        if right_token is not None and right_token.kind == "word" and (
            right_token.text.lower() not in _KEYWORDS
        ):
            return Cmp(op, column, Col(self.column_ref()))
        return Cmp(op, column, Const(self.literal()))

    def _in_list(self, column: Col) -> Expr:
        self.expect_op("(")
        options = [self.literal()]
        while self.accept_op(","):
            options.append(self.literal())
        self.expect_op(")")
        return InList(column, tuple(options))

    def _between(self, column: Col) -> Expr:
        # desugar to the BETWEEN-shaped conjunct pair the planner's
        # interval analysis merges back into one index range
        low = self.literal()
        self.expect_word("and")
        high = self.literal()
        return And(Cmp(">=", column, Const(low)), Cmp("<=", column, Const(high)))

    def _like(self, column: Col) -> Expr:
        pattern = self.literal()
        if isinstance(pattern, _Param):
            # pattern shape can only be validated once a value is bound
            return PrefixMatch(column, pattern)  # type: ignore[arg-type]
        return PrefixMatch(column, _like_prefix(pattern))


def _like_prefix(pattern: Any) -> str:
    if not isinstance(pattern, str) or not pattern.endswith("%") or "%" in pattern[:-1]:
        raise SQLError("LIKE supports only 'prefix%' patterns")
    return pattern[:-1]


# ----------------------------------------------------------------------
# Statement objects
# ----------------------------------------------------------------------


@dataclass
class CreateTableStmt:
    schema: TableSchema


@dataclass
class CreateIndexStmt:
    table: str
    spec: IndexSpec


@dataclass
class DropTableStmt:
    table: str


@dataclass
class InsertStmt:
    table: str
    columns: Optional[List[str]]
    rows: List[List[Any]]


@dataclass
class SelectStmt:
    query: Query


@dataclass
class DeleteStmt:
    table: str
    where: Optional[Expr]


@dataclass
class UpdateStmt:
    table: str
    changes: Dict[str, Any]
    where: Optional[Expr]


Statement = Any


def parse_statement(sql: str) -> Statement:
    return _parse_with(_Parser(_tokenize(sql)))


def _parse_with(parser: _Parser) -> Statement:
    word = parser.accept_word("create", "drop", "insert", "select", "delete", "update")
    if word == "create":
        return _parse_create(parser)
    if word == "drop":
        parser.expect_word("table")
        name = parser.identifier()
        return DropTableStmt(name)
    if word == "insert":
        return _parse_insert(parser)
    if word == "select":
        return SelectStmt(_parse_select(parser))
    if word == "delete":
        parser.expect_word("from")
        table = parser.identifier()
        where = parser.predicate() if parser.accept_word("where") else None
        return DeleteStmt(table, where)
    if word == "update":
        return _parse_update(parser)
    raise SQLError(f"unsupported statement near {parser._context()}")


def _parse_create(parser: _Parser) -> Statement:
    unique = parser.accept_word("unique") is not None
    ordered = parser.accept_word("ordered") is not None
    if parser.accept_word("table"):
        if unique or ordered:
            raise SQLError("UNIQUE/ORDERED apply to indexes, not tables")
        return _parse_create_table(parser)
    parser.expect_word("index")
    name = parser.identifier()
    parser.expect_word("on")
    table = parser.identifier()
    parser.expect_op("(")
    columns = [parser.identifier()]
    while parser.accept_op(","):
        columns.append(parser.identifier())
    parser.expect_op(")")
    return CreateIndexStmt(table, IndexSpec(name, tuple(columns), unique=unique, ordered=ordered))


def _parse_create_table(parser: _Parser) -> CreateTableStmt:
    name = parser.identifier()
    parser.expect_op("(")
    columns: List[Column] = []
    primary_key: Tuple[str, ...] = ()
    while True:
        if parser.accept_word("primary"):
            parser.expect_word("key")
            parser.expect_op("(")
            keys = [parser.identifier()]
            while parser.accept_op(","):
                keys.append(parser.identifier())
            parser.expect_op(")")
            primary_key = tuple(keys)
        else:
            column_name = parser.identifier()
            type_word = parser.next()
            if type_word.kind != "word":
                raise SQLError(f"expected a type after column {column_name!r}")
            column_type = ColumnType.parse(type_word.text)
            nullable = True
            default = None
            while True:
                if parser.accept_word("not"):
                    parser.expect_word("null")
                    nullable = False
                elif parser.accept_word("null"):
                    nullable = True
                elif parser.accept_word("default"):
                    default = parser.literal()
                    if isinstance(default, _Param):
                        raise SQLError("placeholders are not allowed in DDL statements")
                else:
                    break
            columns.append(Column(column_name, column_type, nullable=nullable, default=default))
        if parser.accept_op(")"):
            break
        parser.expect_op(",")
    return CreateTableStmt(TableSchema(name, columns, primary_key=primary_key))


def _parse_insert(parser: _Parser) -> InsertStmt:
    parser.expect_word("into")
    table = parser.identifier()
    columns: Optional[List[str]] = None
    if parser.accept_op("("):
        columns = [parser.identifier()]
        while parser.accept_op(","):
            columns.append(parser.identifier())
        parser.expect_op(")")
    parser.expect_word("values")
    rows: List[List[Any]] = []
    while True:
        parser.expect_op("(")
        row = [parser.literal()]
        while parser.accept_op(","):
            row.append(parser.literal())
        parser.expect_op(")")
        rows.append(row)
        if not parser.accept_op(","):
            break
    return InsertStmt(table, columns, rows)


_AGG_WORDS = ("count", "sum", "avg", "min", "max")


def _parse_select(parser: _Parser) -> Query:
    distinct = parser.accept_word("distinct") is not None
    outputs: Optional[List[Tuple[str, Expr]]] = None
    aggregates: List[Tuple[str, str, Optional[Expr]]] = []
    star = False
    if parser.accept_op("*"):
        star = True
    else:
        outputs = []
        while True:
            agg = parser.accept_word(*_AGG_WORDS)
            if agg is not None:
                parser.expect_op("(")
                inner: Optional[Expr]
                if parser.accept_op("*"):
                    inner = None
                else:
                    inner = Col(parser.column_ref())
                parser.expect_op(")")
                out_name = f"{agg}"
                if parser.accept_word("as"):
                    out_name = parser.identifier()
                aggregates.append((out_name, agg, inner))
            else:
                ref = parser.column_ref()
                out_name = ref.split(".")[-1]
                if parser.accept_word("as"):
                    out_name = parser.identifier()
                outputs.append((out_name, Col(ref)))
            if not parser.accept_op(","):
                break
    parser.expect_word("from")
    table = TableRef(parser.identifier(), _maybe_alias(parser))
    joins: List[JoinSpec] = []
    while parser.accept_word("join"):
        join_table = TableRef(parser.identifier(), _maybe_alias(parser))
        parser.expect_word("on")
        joins.append(_parse_join_on(parser, join_table))
    where = parser.predicate() if parser.accept_word("where") else None
    group_by: List[Tuple[str, Expr]] = []
    if parser.accept_word("group"):
        parser.expect_word("by")
        while True:
            ref = parser.column_ref()
            group_by.append((ref.split(".")[-1], Col(ref)))
            if not parser.accept_op(","):
                break
    having: Optional[Expr] = None
    if parser.accept_word("having"):
        # HAVING predicates reference aggregate *output* names (e.g. the
        # alias given with AS); they run over the grouped rows
        having = parser.predicate()
    order_by: List[Tuple[Expr, bool]] = []
    if parser.accept_word("order"):
        parser.expect_word("by")
        while True:
            expr = Col(parser.column_ref())
            descending = False
            if parser.accept_word("desc"):
                descending = True
            else:
                parser.accept_word("asc")
            order_by.append((expr, descending))
            if not parser.accept_op(","):
                break
    limit: Optional[int] = None
    offset = 0
    if parser.accept_word("limit"):
        value = parser.literal()
        if not isinstance(value, int):
            raise SQLError("LIMIT requires an integer")
        limit = value
    if parser.accept_word("offset"):
        value = parser.literal()
        if not isinstance(value, int):
            raise SQLError("OFFSET requires an integer")
        offset = value
    if not parser.at_end():
        raise SQLError(f"trailing tokens near {parser._context()}")
    if star:
        outputs = None
    if aggregates and outputs:
        # plain columns alongside aggregates become GROUP BY keys if listed
        group_by = group_by or outputs
        outputs = None
    return Query(
        table=table,
        joins=joins,
        where=where,
        outputs=outputs,
        group_by=group_by,
        aggregates=aggregates,
        order_by=order_by,
        limit=limit,
        offset=offset,
        having=having,
        distinct=distinct,
    )


_ON_OPS = ("=", "!=", "<>", "<", "<=", ">", ">=")


def _parse_join_on(parser: _Parser, join_table: TableRef) -> JoinSpec:
    """The ON clause: AND-ed comparison conjuncts.

    Column-equality conjuncts (``a.x = b.x``, in either operand order —
    the planner normalizes sides by binding) become the join's equality
    pairs; any other comparison (non-equi operators, or a literal
    operand) stays a join residual evaluated over the joined row.  At
    least one conjunct is required.
    """
    pairs: List[Tuple[Col, Col]] = []
    residuals: List[Expr] = []
    while True:
        left = Col(parser.column_ref())
        token = parser.next()
        if token.kind != "op" or token.text not in _ON_OPS:
            raise SQLError(f"expected a comparison in ON, got {token.text!r}")
        op = "!=" if token.text == "<>" else token.text
        right_token = parser.peek()
        right: Expr
        if (
            right_token is not None
            and right_token.kind == "word"
            and right_token.text.lower() not in _KEYWORDS
        ):
            right = Col(parser.column_ref())
        else:
            right = Const(parser.literal())
        if op == "=" and isinstance(right, Col):
            pairs.append((left, right))
        else:
            residuals.append(Cmp(op, left, right))
        if not parser.accept_word("and"):
            break
    residual: Optional[Expr]
    if not residuals:
        residual = None
    elif len(residuals) == 1:
        residual = residuals[0]
    else:
        residual = And(*residuals)
    if pairs:
        return JoinSpec(
            join_table, pairs[0][0], pairs[0][1], tuple(pairs[1:]), residual
        )
    return JoinSpec(join_table, None, None, (), residual)


def _maybe_alias(parser: _Parser) -> Optional[str]:
    token = parser.peek()
    if (
        token is not None
        and token.kind == "word"
        and token.text.lower() not in _KEYWORDS
    ):
        parser._position += 1
        return token.text
    return None


def _parse_update(parser: _Parser) -> UpdateStmt:
    table = parser.identifier()
    parser.expect_word("set")
    changes: Dict[str, Any] = {}
    while True:
        column = parser.identifier()
        parser.expect_op("=")
        changes[column] = parser.literal()
        if not parser.accept_op(","):
            break
    where = parser.predicate() if parser.accept_word("where") else None
    return UpdateStmt(table, changes, where)


# ----------------------------------------------------------------------
# Prepared statements
# ----------------------------------------------------------------------


def _bind_value(value: Any, params: Tuple[Any, ...]) -> Any:
    if isinstance(value, _Param):
        return params[value.index]
    return value


def _bind_expr(expr: Expr, params: Tuple[Any, ...]) -> Expr:
    """Rebuild an expression with ``?`` placeholders replaced by values."""
    if isinstance(expr, Const):
        if isinstance(expr.value, _Param):
            return Const(params[expr.value.index])
        return expr
    if isinstance(expr, Cmp):
        return Cmp(expr.op, _bind_expr(expr.left, params), _bind_expr(expr.right, params))
    if isinstance(expr, And):
        return And(*(_bind_expr(part, params) for part in expr.parts))
    if isinstance(expr, Or):
        return Or(*(_bind_expr(part, params) for part in expr.parts))
    if isinstance(expr, Not):
        return Not(_bind_expr(expr.inner, params))
    if isinstance(expr, IsNull):
        return IsNull(_bind_expr(expr.inner, params), negated=expr.negated)
    if isinstance(expr, InList):
        return InList(
            _bind_expr(expr.inner, params),
            tuple(_bind_value(option, params) for option in expr.options),
        )
    if isinstance(expr, PrefixMatch):
        if isinstance(expr.prefix, _Param):
            # the parser deferred pattern validation to bind time
            return PrefixMatch(expr.column, _like_prefix(params[expr.prefix.index]))
        return expr
    return expr


def _bind_opt(expr: Optional[Expr], params: Tuple[Any, ...]) -> Optional[Expr]:
    return None if expr is None else _bind_expr(expr, params)


def _bind_statement(statement: Statement, params: Tuple[Any, ...]) -> Statement:
    if isinstance(statement, SelectStmt):
        query = statement.query
        joins = [
            replace(join, residual=_bind_opt(join.residual, params))
            for join in query.joins
        ]
        return SelectStmt(
            replace(
                query,
                joins=joins,
                where=_bind_opt(query.where, params),
                having=_bind_opt(query.having, params),
            )
        )
    if isinstance(statement, InsertStmt):
        rows = [[_bind_value(value, params) for value in row] for row in statement.rows]
        return InsertStmt(statement.table, statement.columns, rows)
    if isinstance(statement, DeleteStmt):
        return DeleteStmt(statement.table, _bind_opt(statement.where, params))
    if isinstance(statement, UpdateStmt):
        changes = {
            column: _bind_value(value, params)
            for column, value in statement.changes.items()
        }
        return UpdateStmt(statement.table, changes, _bind_opt(statement.where, params))
    return statement


class PreparedStatement:
    """A statement parsed once and executed many times with bound values.

    ``?`` placeholders mark literal positions (predicates, IN lists,
    BETWEEN bounds, LIKE patterns, INSERT values, UPDATE assignments).
    Each :meth:`execute` substitutes the bound values and runs through
    the database's plan cache: the query *shape* is stable across
    executions, so repeated runs reuse the cached planner-statistics
    snapshot (or the whole plan, when values repeat) instead of
    re-parsing and re-sampling.
    """

    def __init__(self, db: Database, sql: str) -> None:
        parser = _Parser(_tokenize(sql), allow_params=True)
        statement = _parse_with(parser)
        if isinstance(statement, (CreateTableStmt, CreateIndexStmt, DropTableStmt)):
            if parser.param_count:
                raise SQLError("placeholders are not allowed in DDL statements")
        self._db = db
        self._statement = statement
        self.sql = sql
        self.param_count = parser.param_count

    def execute(self, params: Sequence[Any] = ()) -> List[Dict[str, Any]]:
        if len(params) != self.param_count:
            raise SQLError(
                f"statement takes {self.param_count} parameter(s), got {len(params)}"
            )
        bound = _bind_statement(self._statement, tuple(params))
        return _run_statement(self._db, bound)


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def execute_sql(db: Database, sql: str) -> List[Dict[str, Any]]:
    """Parse and execute one statement.  SELECT returns rows as dicts;
    DML returns ``[{"affected": n}]``; DDL returns ``[]``."""
    return _run_statement(db, parse_statement(sql))


def _run_statement(db: Database, statement: Statement) -> List[Dict[str, Any]]:
    if isinstance(statement, CreateTableStmt):
        db.create_table(statement.schema)
        return []
    if isinstance(statement, CreateIndexStmt):
        db.table(statement.table).create_index(statement.spec)
        return []
    if isinstance(statement, DropTableStmt):
        db.drop_table(statement.table)
        return []
    if isinstance(statement, InsertStmt):
        count = 0
        for row in statement.rows:
            if statement.columns is not None:
                db.insert(statement.table, dict(zip(statement.columns, row)))
            else:
                db.insert(statement.table, row)
            count += 1
        return [{"affected": count}]
    if isinstance(statement, SelectStmt):
        return db.execute(statement.query)
    if isinstance(statement, DeleteStmt):
        return [{"affected": db.delete_where(statement.table, statement.where)}]
    if isinstance(statement, UpdateStmt):
        return [{"affected": db.update_where(statement.table, statement.changes, statement.where)}]
    raise SQLError(f"unhandled statement type {type(statement).__name__}")
