"""Heap table with primary-key enforcement and secondary index maintenance."""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Set, Tuple, Union

from .errors import ConstraintError, DuplicateKeyError, SchemaError
from .index import HashIndex, OrderedIndex
from .schema import IndexSpec, TableSchema

__all__ = ["Table"]

Row = Tuple[Any, ...]


class Table:
    """Rows stored in an in-memory heap keyed by monotonically increasing
    row ids, with automatic primary-key and secondary-index maintenance.

    Byte accounting (``byte_size``) tracks the encoded size of the live
    rows, which is what the paper reports for provenance store sizes.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: Dict[int, Row] = {}
        self._next_rowid = 1
        self._byte_size = 0
        self._pk_index: Optional[HashIndex] = None
        if schema.primary_key:
            self._pk_index = HashIndex(f"{schema.name}_pk", unique=True)
        self._indexes: Dict[str, Union[HashIndex, OrderedIndex]] = {}
        self._index_specs: Dict[str, IndexSpec] = {}
        for spec in schema.indexes:
            self.create_index(spec)

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------
    def create_index(self, spec: IndexSpec) -> None:
        if spec.name in self._indexes:
            raise SchemaError(f"index {spec.name!r} already exists")
        index: Union[HashIndex, OrderedIndex]
        if spec.ordered:
            index = OrderedIndex(spec.name, unique=spec.unique)
        else:
            index = HashIndex(spec.name, unique=spec.unique)
        for rowid, row in self._rows.items():
            index.insert(self.schema.project(row, spec.columns), rowid)
        self._indexes[spec.name] = index
        self._index_specs[spec.name] = spec

    def index_on(self, columns: Sequence[str], ordered: Optional[bool] = None):
        """Find an index covering exactly ``columns`` (order-sensitive)."""
        wanted = tuple(columns)
        for name, spec in self._index_specs.items():
            if spec.columns != wanted:
                continue
            if ordered is not None and spec.ordered != ordered:
                continue
            return self._indexes[name]
        return None

    @property
    def index_specs(self) -> Dict[str, IndexSpec]:
        return dict(self._index_specs)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def insert(self, row: "Sequence[Any] | Dict[str, Any]") -> int:
        """Insert a row; returns its row id."""
        normalized = self.schema.normalize_row(row)
        rowid = self._next_rowid
        if self._pk_index is not None:
            key = self.schema.key_of(normalized)
            if any(part is None for part in key):
                raise ConstraintError(
                    f"primary key of {self.schema.name!r} may not contain NULL"
                )
            self._pk_index.insert(key, rowid)
        try:
            for name, index in self._indexes.items():
                spec = self._index_specs[name]
                index.insert(self.schema.project(normalized, spec.columns), rowid)
        except DuplicateKeyError:
            # roll back the partial index insertions
            self._unindex(rowid, normalized, stop_at=name)
            if self._pk_index is not None:
                self._pk_index.delete(self.schema.key_of(normalized), rowid)
            raise
        self._rows[rowid] = normalized
        self._next_rowid += 1
        self._byte_size += self.schema.row_bytes(normalized)
        return rowid

    def _unindex(self, rowid: int, row: Row, stop_at: Optional[str] = None) -> None:
        for name, index in self._indexes.items():
            if name == stop_at:
                break
            spec = self._index_specs[name]
            index.delete(self.schema.project(row, spec.columns), rowid)

    def delete_row(self, rowid: int) -> Row:
        """Delete by row id; returns the removed row."""
        try:
            row = self._rows.pop(rowid)
        except KeyError:
            raise ConstraintError(f"no row with id {rowid} in {self.schema.name!r}") from None
        if self._pk_index is not None:
            self._pk_index.delete(self.schema.key_of(row), rowid)
        for name, index in self._indexes.items():
            spec = self._index_specs[name]
            index.delete(self.schema.project(row, spec.columns), rowid)
        self._byte_size -= self.schema.row_bytes(row)
        return row

    def update_row(self, rowid: int, changes: Dict[str, Any]) -> Tuple[Row, Row]:
        """Apply column changes to one row; returns ``(old, new)``."""
        if rowid not in self._rows:
            raise ConstraintError(f"no row with id {rowid} in {self.schema.name!r}")
        old = self._rows[rowid]
        merged = dict(zip(self.schema.column_names, old))
        merged.update(changes)
        new = self.schema.normalize_row(merged)
        self.delete_row(rowid)
        # reuse the same rowid to keep external references stable
        saved_next = self._next_rowid
        self._next_rowid = rowid
        try:
            self.insert(new)
        finally:
            self._next_rowid = max(saved_next, rowid + 1)
        return old, new

    def clear(self) -> None:
        self._rows.clear()
        self._byte_size = 0
        if self._pk_index is not None:
            self._pk_index.clear()
        for index in self._indexes.values():
            index.clear()

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[Tuple[int, Row]]:
        """Full scan in row-id (insertion) order."""
        for rowid in sorted(self._rows):
            yield rowid, self._rows[rowid]

    def get(self, rowid: int) -> Row:
        return self._rows[rowid]

    def lookup_pk(self, key: Tuple[Any, ...]) -> Optional[Tuple[int, Row]]:
        if self._pk_index is None:
            raise ConstraintError(f"table {self.schema.name!r} has no primary key")
        rowids = self._pk_index.lookup(key)
        if not rowids:
            return None
        rowid = next(iter(rowids))
        return rowid, self._rows[rowid]

    def lookup_index(self, index_name: str, key: Tuple[Any, ...]) -> Iterator[Tuple[int, Row]]:
        index = self._indexes[index_name]
        for rowid in sorted(index.lookup(key)):
            yield rowid, self._rows[rowid]

    def prefix_scan(self, index_name: str, prefix: str) -> Iterator[Tuple[int, Row]]:
        index = self._indexes[index_name]
        if not isinstance(index, OrderedIndex):
            raise ConstraintError(f"index {index_name!r} does not support prefix scans")
        for rowid in index.prefix_scan(prefix):
            yield rowid, self._rows[rowid]

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    @property
    def row_count(self) -> int:
        return len(self._rows)

    @property
    def byte_size(self) -> int:
        """Encoded size in bytes of all live rows."""
        return self._byte_size

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return f"Table({self.schema.name!r}, rows={len(self._rows)})"
