"""Heap table with primary-key enforcement and secondary index maintenance."""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from heapq import merge
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Sequence,
    Set,
    Tuple,
    Union,
)

from .errors import ConstraintError, DuplicateKeyError, SchemaError
from .index import HashIndex, KeyRange, OrderedIndex
from .schema import IndexSpec, TableSchema
from .types import ColumnType

__all__ = ["Table", "IndexStats", "Histogram"]

Row = Tuple[Any, ...]


class IndexStats(NamedTuple):
    """Planner-facing statistics for one index (see ``Table.index_stats``)."""

    ordered: bool
    unique: bool
    entries: int
    #: distinct keys — exact for hash indexes, a bounded-sample estimate
    #: for ordered ones (see ``OrderedIndex.key_count``)
    keys: int


#: Histogram sampling knobs: a histogram is built from at most
#: ``HISTOGRAM_SAMPLE`` values (an even stride over an ordered index's
#: entries, or over the heap) sliced into at most ``HISTOGRAM_BINS``
#: equi-depth bins.  Both bound the *planning-time* cost of statistics:
#: one build touches ≤ 512 values however large the table, and the
#: result is cached until the table's mutation counter moves.
HISTOGRAM_SAMPLE = 512
HISTOGRAM_BINS = 32

#: column type families whose values sort, i.e. can carry a histogram
_HISTOGRAM_TYPES = (
    ColumnType.INT,
    ColumnType.REAL,
    ColumnType.TEXT,
    ColumnType.CHAR,
)


class Histogram:
    """Equi-depth histogram over one column's non-NULL values.

    ``bounds`` holds ``bins + 1`` sorted bin edges taken at quantiles of
    a bounded sample, so every bin covers (approximately) the same
    number of rows — equi-depth rather than equi-width, which keeps the
    estimate honest under skew and works for TEXT as well as numbers.
    The planner reads two things from it:

    * :meth:`range_fraction` — the fraction of rows inside an interval,
      feeding the range-bound tightness factors of the access-path cost
      model (replacing the fixed 0.4/0.15 guesses when a histogram
      exists);
    * :attr:`distinct` — the extrapolated distinct-value count, feeding
      equi-join selectivity (``1 / max(distinct(left), distinct(right))``).

    A statistic, not an oracle: it only has to *rank* plans.
    """

    __slots__ = ("rows", "nulls", "distinct", "bounds")

    def __init__(self, rows: int, nulls: int, distinct: int, bounds: List[Any]) -> None:
        self.rows = rows          # non-NULL row count the sample represents
        self.nulls = nulls
        self.distinct = max(1, distinct)
        self.bounds = bounds      # len == bins + 1, sorted

    @classmethod
    def from_sample(
        cls, sample: List[Any], rows: int, nulls: int = 0
    ) -> "Optional[Histogram]":
        """Build from an already *sorted* non-NULL sample representing
        ``rows`` non-NULL rows; ``None`` when the sample is empty."""
        if not sample or rows <= 0:
            return None
        sample_distinct = 1 + sum(
            1 for a, b in zip(sample, sample[1:]) if a != b
        )
        distinct = max(1, round(rows * sample_distinct / len(sample)))
        bins = max(1, min(HISTOGRAM_BINS, sample_distinct))
        last = len(sample) - 1
        bounds = [sample[min(last, (i * len(sample)) // bins)] for i in range(bins)]
        bounds.append(sample[last])
        return cls(rows, nulls, distinct, bounds)

    @property
    def bins(self) -> int:
        return len(self.bounds) - 1

    def _position(self, value: Any) -> float:
        """The value's bin-granularity position in ``[0, bins]``."""
        left = bisect_left(self.bounds, value)
        right = bisect_right(self.bounds, value)
        return min(float(self.bins), max(0.0, (left + right) / 2.0 - 0.5))

    def range_fraction(
        self,
        low: Optional[Tuple[Any, bool]],
        high: Optional[Tuple[Any, bool]],
    ) -> Optional[float]:
        """Estimated fraction of non-NULL rows with value in the
        interval; ``low``/``high`` are ``(value, inclusive)`` or ``None``
        (open), as in the planner's interval analysis.  Resolution is
        one bin (inclusivity is below it); incomparable bound types
        return ``None`` and the caller falls back to fixed factors."""
        try:
            low_pos = 0.0 if low is None else self._position(low[0])
            high_pos = float(self.bins) if high is None else self._position(high[0])
        except TypeError:
            return None
        width = (high_pos - low_pos) / self.bins
        # floor at half a bin: a sampled histogram saying "empty" must
        # not zero-cost a plan over a range that may well hold rows
        return min(1.0, max(width, 0.5 / self.bins))


#: ``bulk_insert`` rebuilds a populated ordered index by sorted merge
#: once ``batch >= ratio * index``; below it, incremental inserts win.
#: Measured, not guessed: ``tools/sweep_bulk_crossover.py`` times both
#: arms over batch/index ratios (curve in ``BENCH_micro.json`` under
#: ``bulk_insert_crossover``) — merge-rebuild wins from ~0.2–0.35
#: across 20k–200k-entry indexes, so 0.35 is the conservative edge of
#: the measured band (the previous ``batch >= index`` guess forfeited
#: up to ~2x for batches between 0.35x and 1x of the index).
_MERGE_REBUILD_RATIO = 0.35


class _MaxStat:
    """Incrementally maintained MAX over one column's live values.

    Keeps a value -> multiplicity map; deleting the current maximum only
    marks the cached answer dirty, and the next read recomputes it over
    the distinct values (not the rows).  NULLs are ignored, as in SQL.
    """

    __slots__ = ("_counts", "_max", "_dirty")

    def __init__(self) -> None:
        self._counts: Dict[Any, int] = {}
        self._max: Any = None
        self._dirty = False

    def add(self, value: Any) -> None:
        if value is None:
            return
        self._counts[value] = self._counts.get(value, 0) + 1
        if not self._dirty and (self._max is None or value > self._max):
            self._max = value

    def remove(self, value: Any) -> None:
        if value is None:
            return
        remaining = self._counts.get(value, 0) - 1
        if remaining > 0:
            self._counts[value] = remaining
            return
        self._counts.pop(value, None)
        if value == self._max:
            self._dirty = True

    def value(self) -> Any:
        if self._dirty:
            self._max = max(self._counts) if self._counts else None
            self._dirty = False
        return self._max

    def clear(self) -> None:
        self._counts.clear()
        self._max = None
        self._dirty = False


class Table:
    """Rows stored in an in-memory heap keyed by monotonically increasing
    row ids, with automatic primary-key and secondary-index maintenance.

    Byte accounting (``byte_size``) tracks the encoded size of the live
    rows, which is what the paper reports for provenance store sizes.

    ``scan`` relies on the row dict's insertion order matching ascending
    row ids; the rare paths that re-insert an old row id (rollback,
    recovery) set a flag and the next scan re-orders the dict once,
    instead of every scan paying a sort.
    """

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema
        self._rows: Dict[int, Row] = {}
        self._next_rowid = 1
        self._byte_size = 0
        self._rows_ordered = True
        self._max_seen_rowid = 0
        self._pk_index: Optional[HashIndex] = None
        if schema.primary_key:
            self._pk_index = HashIndex(f"{schema.name}_pk", unique=True)
        self._indexes: Dict[str, Union[HashIndex, OrderedIndex]] = {}
        self._index_specs: Dict[str, IndexSpec] = {}
        self._max_stats: Dict[str, Tuple[int, _MaxStat]] = {}
        #: monotone mutation counter — cache key for planner statistics
        #: (histograms) that must notice updates-in-place, which leave
        #: ``row_count`` unchanged
        self._version = 0
        #: seqlock for statistics readers: odd while a structural
        #: mutation is in flight, bumped again when it finishes.
        #: :meth:`stats_snapshot` retries until it reads an even,
        #: unchanged sequence, so a concurrent reader can never observe
        #: a torn (rows, bytes) pair mid-mutation.
        self._stats_seq = 0
        #: test seam: called between the two reads of
        #: :meth:`stats_snapshot` so the torn-read retry is
        #: deterministically exercisable (None in production)
        self._torn_read_hook = None
        self._histograms: Dict[str, Tuple[int, Optional[Histogram]]] = {}
        #: per-access-path call counters (one increment per *scan*, not
        #: per row) — instrumentation for tests asserting e.g. that a
        #: batched probe really issues one index pass, and for the
        #: charged-cost vs wall-time split in the provenance harness.
        #: ``inlj_probe`` counts physical probe batches issued by
        #: ``IndexNestedLoopJoin`` against this table (one per chunk),
        #: extending the one-pass assertions to join probes.
        self.access_counts: Dict[str, int] = {
            "scan": 0,
            "eq_lookup": 0,
            "prefix_scan": 0,
            "range_scan": 0,
            "multi_range_scan": 0,
            "inlj_probe": 0,
        }
        #: planner-statistics consultation counters — ``index_stats`` and
        #: ``histogram_probe`` count calls, ``histogram_build`` counts
        #: actual (cache-missing) sample builds.  The plan cache's
        #: "second execution samples nothing" contract is asserted
        #: against these.
        self.stats_counts: Dict[str, int] = {
            "index_stats": 0,
            "histogram_probe": 0,
            "histogram_build": 0,
        }
        for spec in schema.indexes:
            self.create_index(spec)

    # ------------------------------------------------------------------
    # Index management
    # ------------------------------------------------------------------
    def create_index(self, spec: IndexSpec) -> None:
        """Register a secondary index and backfill it from the live rows.

        The backfill is a bulk build — one sort over the projected
        entries for an ordered index — rather than a per-row insert
        loop, so creating an index on a populated table is O(n log n)
        with small constants.
        """
        if spec.name in self._indexes:
            raise SchemaError(f"index {spec.name!r} already exists")
        project = self.schema.project
        entries = (
            (project(row, spec.columns), rowid) for rowid, row in self._rows.items()
        )
        index: Union[HashIndex, OrderedIndex]
        if spec.ordered:
            checked = (
                (self._reject_unordered_key(spec.name, key), rowid)
                for key, rowid in entries
            )
            try:
                index = OrderedIndex.bulk_build(spec.name, checked, unique=spec.unique)
            except TypeError as exc:
                raise ConstraintError(
                    f"NULL/incomparable key not allowed in ordered index "
                    f"{spec.name!r}"
                ) from exc
        else:
            index = HashIndex.bulk_build(spec.name, entries, unique=spec.unique)
        self._indexes[spec.name] = index
        self._index_specs[spec.name] = spec
        # index DDL changes the viable access paths *and* the statistics
        # surface (ordered indexes feed histogram sampling), so it must
        # move the stats epoch or cached histograms/plans survive stale
        self._version += 1

    def _reject_unordered_key(self, name: str, key: Tuple[Any, ...]) -> Tuple[Any, ...]:
        """Validate a key headed for an ordered index and return it.

        NULL components do not compare, so admitting one would either
        corrupt the sort invariant silently (all-NULL keys compare equal
        to each other) or surface later as a raw ``TypeError`` halfway
        through a mutation.  Rejecting up front keeps failures typed and
        keeps every mutation all-or-nothing.
        """
        if any(part is None for part in key):
            raise ConstraintError(
                f"NULL/incomparable key not allowed in ordered index "
                f"{name!r}: {key!r}"
            )
        return key

    def index_on(self, columns: Sequence[str], ordered: Optional[bool] = None):
        """Find an index covering exactly ``columns`` (order-sensitive)."""
        wanted = tuple(columns)
        for name, spec in self._index_specs.items():
            if spec.columns != wanted:
                continue
            if ordered is not None and spec.ordered != ordered:
                continue
            return self._indexes[name]
        return None

    @property
    def index_specs(self) -> Dict[str, IndexSpec]:
        return dict(self._index_specs)

    def index_stats(self, name: str) -> IndexStats:
        """Statistics for the planner's cost model, without exposing the
        index object itself: kind, uniqueness, entry count, and a
        distinct-key figure (exact for hash indexes, a bounded-sample
        estimate for ordered ones)."""
        self.stats_counts["index_stats"] += 1
        index = self._indexes[name]
        spec = self._index_specs[name]
        return IndexStats(
            ordered=spec.ordered,
            unique=index.unique,
            entries=len(index),
            keys=index.key_count(),
        )

    # ------------------------------------------------------------------
    # Incremental statistics
    # ------------------------------------------------------------------
    def track_max(self, column: str) -> None:
        """Maintain MAX(column) incrementally across all mutation paths.

        Idempotent; backfills from the current rows on registration.
        """
        if column in self._max_stats:
            return
        position = self.schema.column_index(column)
        stat = _MaxStat()
        for row in self._rows.values():
            stat.add(row[position])
        self._max_stats[column] = (position, stat)

    def max_value(self, column: str) -> Any:
        """Current MAX(column) (``None`` on empty / all-NULL); O(1) reads
        unless the previous maximum was just deleted."""
        try:
            position, stat = self._max_stats[column]
        except KeyError:
            raise ConstraintError(
                f"column {column!r} of {self.schema.name!r} is not max-tracked"
            ) from None
        return stat.value()

    def _stats_add(self, row: Row) -> None:
        self._version += 1
        for position, stat in self._max_stats.values():
            stat.add(row[position])

    def _stats_remove(self, row: Row) -> None:
        self._version += 1
        for position, stat in self._max_stats.values():
            stat.remove(row[position])

    def column_histogram(self, column: str) -> Optional[Histogram]:
        """A lazily built, cached equi-depth :class:`Histogram` for one
        column; ``None`` for non-orderable types, unknown columns, or
        empty tables.

        Built on first request and cached against the table's mutation
        counter, so a read-mostly table samples once however often the
        planner asks.  The sample comes from an ordered index whose
        *leading* column matches (already sorted — see
        :meth:`OrderedIndex.sample_keys`) when one exists, else from an
        even stride over the heap.  Sampling knobs:
        ``HISTOGRAM_SAMPLE`` values, ``HISTOGRAM_BINS`` bins.
        """
        self.stats_counts["histogram_probe"] += 1
        cached = self._histograms.get(column)
        if cached is not None and cached[0] == self._version:
            return cached[1]
        histogram = self._build_histogram(column)
        self._histograms[column] = (self._version, histogram)
        return histogram

    def _build_histogram(self, column: str) -> Optional[Histogram]:
        self.stats_counts["histogram_build"] += 1
        if not self.schema.has_column(column):
            return None
        if self.schema.column(column).type not in _HISTOGRAM_TYPES:
            return None
        total = len(self._rows)
        if total == 0:
            return None
        for name, spec in self._index_specs.items():
            index = self._indexes[name]
            if spec.ordered and spec.columns[0] == column and isinstance(index, OrderedIndex):
                # entries already sorted by this column; NULLs cannot
                # live in an ordered index (they do not compare)
                sample = index.sample_keys(HISTOGRAM_SAMPLE)
                return Histogram.from_sample(sample, total)
        position = self.schema.column_index(column)
        step = max(1, -(-total // HISTOGRAM_SAMPLE))  # ceil: ≤ SAMPLE rows
        sample = [
            row[position]
            for offset, row in enumerate(self._rows.values())
            if offset % step == 0
        ]
        picked = len(sample)
        sample = [value for value in sample if value is not None]
        if picked == 0 or not sample:
            return None
        null_fraction = 1.0 - len(sample) / picked
        nulls = round(total * null_fraction)
        sample.sort()
        return Histogram.from_sample(sample, max(1, total - nulls), nulls)

    # ------------------------------------------------------------------
    # Mutations
    # ------------------------------------------------------------------
    def insert(self, row: "Sequence[Any] | Dict[str, Any]") -> int:
        """Insert a row; returns its row id."""
        normalized = self.schema.normalize_row(row)
        rowid = self._next_rowid
        if self._pk_index is not None:
            pk_key = self.schema.key_of(normalized)
            if any(part is None for part in pk_key):
                raise ConstraintError(
                    f"primary key of {self.schema.name!r} may not contain NULL"
                )
        self._stats_seq += 1
        try:
            if self._pk_index is not None:
                self._pk_index.insert(pk_key, rowid)
            try:
                for name, index in self._indexes.items():
                    spec = self._index_specs[name]
                    key = self.schema.project(normalized, spec.columns)
                    if spec.ordered:
                        self._reject_unordered_key(name, key)
                    index.insert(key, rowid)
            except Exception as exc:
                # roll back the partial index insertions — on *any* failure,
                # not just duplicate keys: an escape here after the pk index
                # was updated would leave a phantom pk entry that blocks the
                # key forever (no heap row to delete it through)
                self._unindex(rowid, normalized, stop_at=name)
                if self._pk_index is not None:
                    self._pk_index.delete(self.schema.key_of(normalized), rowid)
                if isinstance(exc, TypeError):
                    # backstop for incomparable non-NULL components
                    raise ConstraintError(
                        f"NULL/incomparable key not allowed in ordered index {name!r}"
                    ) from exc
                raise
            self._rows[rowid] = normalized
            if rowid <= self._max_seen_rowid:
                self._rows_ordered = False  # re-inserted old id lands at dict end
            else:
                self._max_seen_rowid = rowid
            self._next_rowid += 1
            self._byte_size += self.schema.row_bytes(normalized)
            self._stats_add(normalized)
        finally:
            self._stats_seq += 1
        return rowid

    def bulk_insert(self, rows: Sequence["Sequence[Any] | Dict[str, Any]"]) -> List[int]:
        """Append a batch of rows with one index pass instead of per-row
        index maintenance; returns the new row ids.

        Validate-then-apply: primary-key and unique-index violations
        (against existing rows *and* within the batch) are detected
        before any structure is touched, so a failing batch leaves the
        table unchanged.  Index maintenance then takes the cheapest
        lifecycle path per index — an empty index is bulk-built from the
        sorted batch, a batch at least ``_MERGE_REBUILD_RATIO`` times an
        ordered index's size is merged with its sorted entries into a
        rebuilt index (both O(n log n) overall), and a smaller batch
        falls back to incremental inserts (the measured crossover — see
        the constant's note).
        """
        normalized = [self.schema.normalize_row(row) for row in rows]
        if not normalized:
            return []
        first = self._next_rowid
        rowids = list(range(first, first + len(normalized)))

        # -- validate ---------------------------------------------------
        if self._pk_index is not None:
            seen: Set[Tuple[Any, ...]] = set()
            for row in normalized:
                key = self.schema.key_of(row)
                if any(part is None for part in key):
                    raise ConstraintError(
                        f"primary key of {self.schema.name!r} may not contain NULL"
                    )
                if key in seen or self._pk_index.contains(key):
                    raise DuplicateKeyError(
                        f"duplicate key {key!r} in unique index "
                        f"{self._pk_index.name!r}"
                    )
                seen.add(key)
        batch_entries: Dict[str, List[Tuple[Tuple[Any, ...], int]]] = {}
        for name, index in self._indexes.items():
            spec = self._index_specs[name]
            columns = spec.columns
            entries = [
                (self.schema.project(row, columns), rowid)
                for row, rowid in zip(normalized, rowids)
            ]
            if spec.ordered:
                # same validate-then-apply hole as ``insert``: an ordered
                # index rejecting a NULL key mid-apply (after the heap,
                # pk, and stats were mutated) would strand phantoms —
                # reject in the validate phase instead
                for key, _rowid in entries:
                    self._reject_unordered_key(name, key)
            if index.unique:
                seen = set()
                for key, _rowid in entries:
                    if key in seen or index.contains(key):
                        raise DuplicateKeyError(
                            f"duplicate key {key!r} in unique index {name!r}"
                        )
                    seen.add(key)
            batch_entries[name] = entries

        # -- apply ------------------------------------------------------
        self._stats_seq += 1
        try:
            for row, rowid in zip(normalized, rowids):
                self._rows[rowid] = row
                self._byte_size += self.schema.row_bytes(row)
                self._stats_add(row)
            self._next_rowid = rowids[-1] + 1
            self._max_seen_rowid = rowids[-1]  # fresh ids: dict stays ordered
            if self._pk_index is not None:
                for row, rowid in zip(normalized, rowids):
                    self._pk_index.insert(self.schema.key_of(row), rowid)
            for name, entries in batch_entries.items():
                index = self._indexes[name]
                spec = self._index_specs[name]
                if isinstance(index, OrderedIndex):
                    if len(index) == 0:
                        self._indexes[name] = OrderedIndex.bulk_build(
                            spec.name, entries, unique=spec.unique
                        )
                    elif len(entries) >= _MERGE_REBUILD_RATIO * len(index):
                        entries.sort()
                        merged = merge(index.items(), entries)
                        self._indexes[name] = OrderedIndex.bulk_build(
                            spec.name, merged, unique=spec.unique, presorted=True
                        )
                    else:
                        for key, rowid in entries:
                            index.insert(key, rowid)
                else:
                    # hash buckets are O(1) per entry either way
                    for key, rowid in entries:
                        index.insert(key, rowid)
        finally:
            self._stats_seq += 1
        return rowids

    def _unindex(self, rowid: int, row: Row, stop_at: Optional[str] = None) -> None:
        for name, index in self._indexes.items():
            if name == stop_at:
                break
            spec = self._index_specs[name]
            index.delete(self.schema.project(row, spec.columns), rowid)

    def delete_row(self, rowid: int) -> Row:
        """Delete by row id; returns the removed row."""
        if rowid not in self._rows:
            raise ConstraintError(f"no row with id {rowid} in {self.schema.name!r}")
        self._stats_seq += 1
        try:
            row = self._rows.pop(rowid)
            if self._pk_index is not None:
                self._pk_index.delete(self.schema.key_of(row), rowid)
            for name, index in self._indexes.items():
                spec = self._index_specs[name]
                index.delete(self.schema.project(row, spec.columns), rowid)
            self._byte_size -= self.schema.row_bytes(row)
            self._stats_remove(row)
        finally:
            self._stats_seq += 1
        return row

    def update_row(self, rowid: int, changes: Dict[str, Any]) -> Tuple[Row, Row]:
        """Apply column changes to one row; returns ``(old, new)``.

        Validate-then-swap: every constraint the new row could violate is
        checked *before* any index or heap mutation, so a failing update
        leaves the old row fully intact.  Only indexes whose key columns
        actually changed are touched, and the row is replaced in place
        (same dict slot), preserving scan order.
        """
        old = self._rows.get(rowid)
        if old is None:
            raise ConstraintError(f"no row with id {rowid} in {self.schema.name!r}")
        merged = dict(zip(self.schema.column_names, old))
        merged.update(changes)
        new = self.schema.normalize_row(merged)
        if new == old:
            return old, new

        # -- validate ---------------------------------------------------
        pk_change: Optional[Tuple[Tuple[Any, ...], Tuple[Any, ...]]] = None
        if self._pk_index is not None:
            old_key = self.schema.key_of(old)
            new_key = self.schema.key_of(new)
            if new_key != old_key:
                if any(part is None for part in new_key):
                    raise ConstraintError(
                        f"primary key of {self.schema.name!r} may not contain NULL"
                    )
                if self._pk_index.contains(new_key):
                    raise DuplicateKeyError(
                        f"duplicate key {new_key!r} in unique index "
                        f"{self._pk_index.name!r}"
                    )
                pk_change = (old_key, new_key)
        changed: List[Tuple[Union[HashIndex, OrderedIndex], Tuple[Any, ...], Tuple[Any, ...]]] = []
        for name, index in self._indexes.items():
            spec = self._index_specs[name]
            columns = spec.columns
            old_proj = self.schema.project(old, columns)
            new_proj = self.schema.project(new, columns)
            if new_proj == old_proj:
                continue
            if spec.ordered:
                # must fail in the validate phase: a TypeError during the
                # swap would leave the pk index already moved
                self._reject_unordered_key(name, new_proj)
            if index.unique and index.lookup(new_proj):
                raise DuplicateKeyError(
                    f"duplicate key {new_proj!r} in unique index {name!r}"
                )
            changed.append((index, old_proj, new_proj))

        # -- swap -------------------------------------------------------
        self._stats_seq += 1
        try:
            if pk_change is not None:
                self._pk_index.delete(pk_change[0], rowid)
                self._pk_index.insert(pk_change[1], rowid)
            for index, old_proj, new_proj in changed:
                index.delete(old_proj, rowid)
                index.insert(new_proj, rowid)
            self._rows[rowid] = new
            self._byte_size += self.schema.row_bytes(new) - self.schema.row_bytes(old)
            self._stats_remove(old)
            self._stats_add(new)
        finally:
            self._stats_seq += 1
        return old, new

    def clear(self) -> None:
        self._stats_seq += 1
        try:
            self._rows.clear()
            self._version += 1
            self._byte_size = 0
            self._rows_ordered = True
            self._max_seen_rowid = 0
            if self._pk_index is not None:
                self._pk_index.clear()
            for index in self._indexes.values():
                index.clear()
            for _position, stat in self._max_stats.values():
                stat.clear()
        finally:
            self._stats_seq += 1

    # ------------------------------------------------------------------
    # Access paths
    # ------------------------------------------------------------------
    def scan(self) -> Iterator[Tuple[int, Row]]:
        """Full scan in row-id (insertion) order.

        No per-call sort: the row dict is kept in row-id order and only
        re-ordered (once) after a rollback/recovery re-inserted an old id.
        The returned iterator reads the dict directly — callers that
        mutate mid-scan must snapshot (``list(table.scan())``) first,
        which is also what the seed's sorted-key scan required in
        practice (its lazy row lookups raised on deleted ids).
        """
        if not self._rows_ordered:
            self._rows = dict(sorted(self._rows.items()))
            self._rows_ordered = True
        self.access_counts["scan"] += 1
        return iter(self._rows.items())

    def get(self, rowid: int) -> Row:
        return self._rows[rowid]

    def lookup_pk(self, key: Tuple[Any, ...]) -> Optional[Tuple[int, Row]]:
        if self._pk_index is None:
            raise ConstraintError(f"table {self.schema.name!r} has no primary key")
        for rowid in self._pk_index.lookup_iter(key):
            return rowid, self._rows[rowid]
        return None

    def lookup_index(self, index_name: str, key: Tuple[Any, ...]) -> Iterator[Tuple[int, Row]]:
        index = self._indexes[index_name]
        self.access_counts["eq_lookup"] += 1
        rows = self._rows
        return ((rowid, rows[rowid]) for rowid in index.lookup_iter(key))

    def prefix_scan(self, index_name: str, prefix: str) -> Iterator[Tuple[int, Row]]:
        index = self._indexes[index_name]
        if not isinstance(index, OrderedIndex):
            raise ConstraintError(f"index {index_name!r} does not support prefix scans")
        self.access_counts["prefix_scan"] += 1
        rows = self._rows
        return ((rowid, rows[rowid]) for rowid in index.prefix_scan(prefix))

    def range_scan(
        self,
        index_name: str,
        low: Optional[Tuple[Any, ...]] = None,
        high: Optional[Tuple[Any, ...]] = None,
        include_low: bool = True,
        include_high: bool = True,
        reverse: bool = False,
    ) -> Iterator[Tuple[int, Row]]:
        """Rows with index key in ``[low, high]`` via an ordered index,
        streamed in ascending (or, with ``reverse``, descending) key
        order.

        ``low``/``high`` are key tuples; ``None`` leaves that side open.
        Partial keys over a multi-column index are padded by the caller
        with :data:`~repro.storage.index.MIN_KEY` /
        :data:`~repro.storage.index.MAX_KEY` (e.g. ``high=("T/a",
        MAX_KEY)`` for "every entry whose first column is T/a").
        ``include_low``/``include_high`` select closed vs open bounds.
        This is the access path behind the planner's ``IndexRangeScan``
        and the store's time-travel reads.
        """
        index = self._indexes[index_name]
        if not isinstance(index, OrderedIndex):
            raise ConstraintError(f"index {index_name!r} does not support range scans")
        self.access_counts["range_scan"] += 1
        rows = self._rows
        return (
            (rowid, rows[rowid])
            for rowid in index.range(low, high, include_low, include_high, reverse)
        )

    def multi_range_scan(
        self,
        index_name: str,
        ranges: Sequence[KeyRange],
        reverse: bool = False,
        presorted: bool = False,
    ) -> Iterator[Tuple[int, Row]]:
        """Rows in the *union* of several index-key ranges, streamed in
        global ``(key, rowid)`` order (descending with ``reverse``) in
        one index pass.

        ``ranges`` holds ``(low, high, include_low, include_high)``
        tuples with :meth:`range_scan` semantics; overlapping or
        duplicate ranges yield each row once.  ``presorted=True``
        promises ascending-low-bound range order and skips the union's
        sort.  This is the access path behind the planner's
        ``IndexMultiRangeScan`` (``IN`` lists and OR-of-ranges) and the
        provenance store's batched ``loc IN (...)`` probes — N probed
        locations charge one ``multi_range_scan`` in
        :attr:`access_counts`, not N range scans.
        """
        index = self._indexes[index_name]
        if not isinstance(index, OrderedIndex):
            raise ConstraintError(f"index {index_name!r} does not support range scans")
        self.access_counts["multi_range_scan"] += 1
        rows = self._rows
        return (
            (rowid, rows[rowid])
            for rowid in index.multi_range(ranges, reverse, presorted)
        )

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def stats_snapshot(self) -> Dict[str, int]:
        """A consistent point-in-time ``{"rows": ..., "bytes": ...}`` pair.

        ``row_count`` and ``byte_size`` are two separate reads; a writer
        interleaved between them (cooperative concurrency — a
        generator-driven scheduler, an asyncio server switching
        connections mid-handler) would hand back a pair describing a
        state the table never occupied.  Seqlock discipline fixes it:
        every structural mutation holds ``_stats_seq`` odd for its
        duration, and this reader retries until the sequence is even and
        unchanged across both reads.
        """
        while True:
            seq = self._stats_seq
            rows = len(self._rows)
            if self._torn_read_hook is not None:
                # test seam: a one-shot hook mutates the table *between*
                # the two reads, forcing the retry path
                hook, self._torn_read_hook = self._torn_read_hook, None
                hook()
            size = self._byte_size
            if seq == self._stats_seq and seq % 2 == 0:
                return {"rows": rows, "bytes": size}

    def counters_snapshot(self) -> Dict[str, Dict[str, int]]:
        """Point-in-time *copies* of the access-path and planner-stats
        counters — safe to iterate, diff, or serialize while the live
        dicts keep moving under a concurrent writer (iterating the
        shared dicts directly raises ``RuntimeError: dictionary changed
        size`` the day a counter key is added mid-iteration, and yields
        torn mixes of before/after values every day)."""
        return {
            "access": dict(self.access_counts),
            "stats": dict(self.stats_counts),
        }

    @classmethod
    def _from_snapshot(
        cls,
        schema: TableSchema,
        rows: Dict[int, Row],
        index_specs: Sequence[IndexSpec],
        byte_size: Optional[int] = None,
    ) -> "Table":
        """Materialize a table holding exactly ``rows`` (rowid -> row),
        *preserving row ids*, with ``index_specs`` rebuilt over them.

        This is the MVCC layer's shadow-table constructor: snapshot
        views and transaction workspaces reconstruct historical row
        states and must keep the base table's row ids so rowid-level
        conflict bookkeeping and commit replay line up across versions.
        Indexes take the bulk-build path (one sort each), not per-row
        inserts; ``byte_size`` may be supplied when the caller already
        maintains it incrementally (skipping an O(n) re-encode).
        """
        table = cls(schema)
        table._indexes.clear()
        table._index_specs.clear()
        ordered = dict(sorted(rows.items()))
        table._rows = ordered
        if ordered:
            table._max_seen_rowid = max(ordered)
            table._next_rowid = table._max_seen_rowid + 1
        table._byte_size = (
            byte_size
            if byte_size is not None
            else sum(schema.row_bytes(row) for row in ordered.values())
        )
        if table._pk_index is not None:
            key_of = schema.key_of
            for rowid, row in ordered.items():
                table._pk_index.insert(key_of(row), rowid)
        for spec in index_specs:
            table.create_index(spec)
        return table

    @property
    def row_count(self) -> int:
        return len(self._rows)

    @property
    def byte_size(self) -> int:
        """Encoded size in bytes of all live rows."""
        return self._byte_size

    def __len__(self) -> int:
        return len(self._rows)

    def __repr__(self) -> str:
        return f"Table({self.schema.name!r}, rows={len(self._rows)})"
