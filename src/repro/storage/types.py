"""Column types for the embedded relational engine.

The engine supports the handful of scalar types the reproduction needs
(the paper's provenance table is ``Prov(Tid INT, Op CHAR(1), Loc TEXT,
Src TEXT NULL)``).  Values are plain Python objects; each type knows how
to validate and coerce values and how large they are on disk.
"""

from __future__ import annotations

import enum
from typing import Any, Optional

from .errors import SchemaError

__all__ = ["ColumnType", "validate_value", "coerce_value", "value_bytes"]


class ColumnType(enum.Enum):
    """Supported scalar column types."""

    INT = "INT"
    REAL = "REAL"
    TEXT = "TEXT"
    CHAR = "CHAR"  # single-character codes such as the provenance Op column
    BOOL = "BOOL"

    @classmethod
    def parse(cls, name: str) -> "ColumnType":
        normalized = name.strip().upper()
        aliases = {
            "INTEGER": "INT",
            "BIGINT": "INT",
            "FLOAT": "REAL",
            "DOUBLE": "REAL",
            "VARCHAR": "TEXT",
            "STRING": "TEXT",
            "BOOLEAN": "BOOL",
        }
        normalized = aliases.get(normalized, normalized)
        try:
            return cls(normalized)
        except ValueError:
            raise SchemaError(f"unknown column type: {name!r}") from None


def validate_value(column_type: ColumnType, value: Any) -> None:
    """Raise :class:`SchemaError` unless ``value`` fits ``column_type``.

    ``None`` is always accepted here; nullability is checked by the schema.
    """
    if value is None:
        return
    if column_type is ColumnType.INT:
        if isinstance(value, bool) or not isinstance(value, int):
            raise SchemaError(f"expected INT, got {value!r}")
    elif column_type is ColumnType.REAL:
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise SchemaError(f"expected REAL, got {value!r}")
    elif column_type is ColumnType.TEXT:
        if not isinstance(value, str):
            raise SchemaError(f"expected TEXT, got {value!r}")
    elif column_type is ColumnType.CHAR:
        if not isinstance(value, str) or len(value) != 1:
            raise SchemaError(f"expected CHAR (length-1 string), got {value!r}")
    elif column_type is ColumnType.BOOL:
        if not isinstance(value, bool):
            raise SchemaError(f"expected BOOL, got {value!r}")
    else:  # pragma: no cover - exhaustive over enum
        raise SchemaError(f"unhandled column type {column_type}")


def coerce_value(column_type: ColumnType, value: Any) -> Any:
    """Best-effort coercion used by the SQL layer (e.g. int literal → REAL)."""
    if value is None:
        return None
    if column_type is ColumnType.REAL and isinstance(value, int) and not isinstance(value, bool):
        return float(value)
    validate_value(column_type, value)
    return value


def value_bytes(column_type: ColumnType, value: Optional[Any]) -> int:
    """On-disk size of a value, matching :mod:`repro.storage.codec`."""
    if value is None:
        return 1  # null marker
    if column_type is ColumnType.INT:
        return 9
    if column_type is ColumnType.REAL:
        return 9
    if column_type is ColumnType.BOOL:
        return 2
    if column_type is ColumnType.CHAR:
        return 2
    return 1 + 4 + len(str(value).encode("utf-8"))
