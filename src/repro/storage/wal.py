"""Write-ahead logging and crash recovery.

The paper (Section 5, "Logging") contrasts provenance with transaction
logs: logs exist for crash recovery and do not capture cross-database
copy/paste semantics.  We implement a real WAL for the embedded engine so
the distinction can be demonstrated and tested: after a crash, REDO
recovery reconstructs committed table contents — but nothing in the log
relates the recovered rows to their *sources*, which is exactly the gap
provenance records fill.

Log format: a sequence of length-prefixed JSON-free binary records::

    record := <u32 length> <u8 kind> payload
    kind   := BEGIN(0) | COMMIT(1) | ABORT(2) | INSERT(3) | DELETE(4)
              | CHECKPOINT(5)

INSERT/DELETE payloads carry the transaction id, a table name, and the
encoded row.  Recovery replays committed transactions in order.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass
from typing import Any, BinaryIO, Dict, Iterator, List, Optional, Tuple

from .codec import decode_values, encode_values
from .errors import WALError
from .schema import TableSchema

__all__ = ["WalRecord", "WriteAheadLog", "replay_committed", "coalesce_replay"]

KIND_BEGIN = 0
KIND_COMMIT = 1
KIND_ABORT = 2
KIND_INSERT = 3
KIND_DELETE = 4
KIND_CHECKPOINT = 5

_KIND_NAMES = {
    KIND_BEGIN: "BEGIN",
    KIND_COMMIT: "COMMIT",
    KIND_ABORT: "ABORT",
    KIND_INSERT: "INSERT",
    KIND_DELETE: "DELETE",
    KIND_CHECKPOINT: "CHECKPOINT",
}


@dataclass(frozen=True)
class WalRecord:
    kind: int
    txn_id: int
    table: Optional[str] = None
    row: Optional[Tuple[Any, ...]] = None

    @property
    def kind_name(self) -> str:
        return _KIND_NAMES.get(self.kind, f"?{self.kind}")


def _encode_record(record: WalRecord, schemas: Dict[str, TableSchema]) -> bytes:
    parts = [struct.pack("<Bq", record.kind, record.txn_id)]
    if record.kind in (KIND_INSERT, KIND_DELETE):
        if record.table is None or record.row is None:
            raise WALError("INSERT/DELETE records require table and row")
        table_bytes = record.table.encode("utf-8")
        parts.append(struct.pack("<H", len(table_bytes)))
        parts.append(table_bytes)
        schema = schemas[record.table]
        body = encode_values(schema, record.row)
        parts.append(struct.pack("<I", len(body)))
        parts.append(body)
    payload = b"".join(parts)
    return struct.pack("<I", len(payload)) + payload


def _decode_record(
    payload: bytes, schemas: Dict[str, TableSchema]
) -> WalRecord:
    kind, txn_id = struct.unpack_from("<Bq", payload, 0)
    offset = 9
    if kind in (KIND_INSERT, KIND_DELETE):
        (table_len,) = struct.unpack_from("<H", payload, offset)
        offset += 2
        table = payload[offset : offset + table_len].decode("utf-8")
        offset += table_len
        (body_len,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        body = payload[offset : offset + body_len]
        if table not in schemas:
            raise WALError(f"WAL references unknown table {table!r}")
        row = decode_values(schemas[table], body)
        return WalRecord(kind, txn_id, table, row)
    return WalRecord(kind, txn_id)


class WriteAheadLog:
    """An append-only log file.

    The log is opened lazily and kept open for appends.  ``crash()``
    simulates an abrupt failure by closing the handle without any
    bookkeeping; tests then reopen the file and run recovery.
    """

    def __init__(self, path: str, schemas: Dict[str, TableSchema]) -> None:
        self.path = path
        self._schemas = schemas
        self._file: Optional[BinaryIO] = None

    def _handle(self) -> BinaryIO:
        if self._file is None:
            self._file = open(self.path, "ab")
        return self._file

    def append(self, record: WalRecord) -> None:
        self._handle().write(_encode_record(record, self._schemas))

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()
            os.fsync(self._file.fileno())

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def crash(self) -> None:
        """Abandon the handle without flushing bookkeeping (simulated crash)."""
        self.close()

    # ------------------------------------------------------------------
    def records(self) -> Iterator[WalRecord]:
        """Read all complete records; a truncated tail (torn write) is
        tolerated and ends the iteration, as real recovery would."""
        self.close()
        if not os.path.exists(self.path):
            return
        with open(self.path, "rb") as handle:
            data = handle.read()
        offset = 0
        while offset + 4 <= len(data):
            (length,) = struct.unpack_from("<I", data, offset)
            if offset + 4 + length > len(data):
                return  # torn tail
            payload = data[offset + 4 : offset + 4 + length]
            yield _decode_record(payload, self._schemas)
            offset += 4 + length

    def truncate(self) -> None:
        self.close()
        with open(self.path, "wb"):
            pass


def coalesce_replay(
    records: "Iterator[WalRecord] | List[WalRecord]",
) -> Iterator[Tuple[str, str, Any]]:
    """Collapse a committed-record stream into per-table bulk operations.

    Recovery used to push every logged insert through the row-at-a-time
    constraint-checking path; this generator instead groups consecutive
    committed inserts per table (across transaction boundaries) so the
    caller can bulk-load each run and bulk-build indexes once.  Yields
    ``("bulk_insert", table, rows)`` and ``("delete", table, row)``.

    Per-table operation order is preserved exactly: a delete flushes the
    pending insert run *of its own table* first, so an insert → delete →
    re-insert sequence on one primary key replays correctly, while runs
    on unrelated tables keep accumulating.
    """
    pending: Dict[str, List[Tuple[Any, ...]]] = {}
    for record in records:
        if record.kind == KIND_INSERT:
            pending.setdefault(record.table, []).append(record.row)
        elif record.kind == KIND_DELETE:
            rows = pending.pop(record.table, None)
            if rows:
                yield "bulk_insert", record.table, rows
            yield "delete", record.table, record.row
        else:  # pragma: no cover - replay_committed only yields DML
            raise WALError(f"unexpected {record.kind_name} record in replay")
    for table, rows in pending.items():
        yield "bulk_insert", table, rows


def replay_committed(
    log: WriteAheadLog,
) -> Iterator[Tuple[int, List[WalRecord]]]:
    """Group log records by transaction and yield only committed ones,
    in commit order.  Uncommitted and aborted transactions are skipped."""
    pending: Dict[int, List[WalRecord]] = {}
    for record in log.records():
        if record.kind == KIND_BEGIN:
            pending[record.txn_id] = []
        elif record.kind in (KIND_INSERT, KIND_DELETE):
            pending.setdefault(record.txn_id, []).append(record)
        elif record.kind == KIND_COMMIT:
            yield record.txn_id, pending.pop(record.txn_id, [])
        elif record.kind == KIND_ABORT:
            pending.pop(record.txn_id, None)
        elif record.kind == KIND_CHECKPOINT:
            continue
        else:  # pragma: no cover - defensive
            raise WALError(f"unknown WAL record kind {record.kind}")
