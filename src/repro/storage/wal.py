"""Write-ahead logging and crash recovery.

The paper (Section 5, "Logging") contrasts provenance with transaction
logs: logs exist for crash recovery and do not capture cross-database
copy/paste semantics.  We implement a real WAL for the embedded engine so
the distinction can be demonstrated and tested: after a crash, REDO
recovery reconstructs committed table contents — but nothing in the log
relates the recovered rows to their *sources*, which is exactly the gap
provenance records fill.

Log format (v2, checksummed and segmented)
------------------------------------------

The log is a sequence of segment files ``<base>.000001``,
``<base>.000002``, ... each starting with a 16-byte header::

    segment  := magic "WAL2" u8 version u8 checksum_alg u16 reserved
                u64 base_lsn record*
    record   := u32 payload_len  u32 crc  u64 lsn  payload
    payload  := u8 kind u64 txn_id [u16 table_len table u32 body_len body]
    kind     := BEGIN(0) | COMMIT(1) | ABORT(2) | INSERT(3) | DELETE(4)
                | CHECKPOINT(5)

``crc`` covers ``lsn`` + payload under the header's checksum algorithm
(see :mod:`repro.common.checksum`); ``lsn`` is a log sequence number
that increases by one per record across the whole log's lifetime —
including across :meth:`WriteAheadLog.truncate`, so a snapshot can
record an LSN watermark and recovery can skip records the snapshot
already contains.  Segments rotate at :data:`DEFAULT_SEGMENT_BYTES`.

A bare ``<base>`` file in the v1 format (length-prefixed payloads, no
header, no checksums) is still readable: the scanner version-sniffs it
and assigns implicit LSNs, so pre-v2 logs recover unchanged.

Recovery scans in one of two modes:

* ``strict`` (the default) — any record that fails verification
  (checksum mismatch, bad framing, LSN discontinuity, undecodable
  payload) raises :class:`~repro.storage.errors.WALCorruptionError`
  naming the segment, byte offset, and LSN.  A *torn tail* — a
  truncated final record in the final segment — is not corruption: it
  is the expected signature of a crash during an append, and ends the
  scan cleanly in both modes.
* ``tolerant`` — scanning stops at the first bad record; everything
  from it on (including later segments) is counted as quarantined
  bytes in the :class:`RecoveryReport` rather than raised.

Recovery replays committed transactions in order; what it did and what
it dropped is returned as a structured :class:`RecoveryReport`.
"""

from __future__ import annotations

import os
import struct
from dataclasses import dataclass, fields
from typing import Any, BinaryIO, Dict, Iterator, List, Optional, Tuple

from ..common.checksum import ALG_NAMES, PREFERRED_ALG, checksum, checksum_fn
from ..common.faults import NO_FAULTS, durable_fsync
from .codec import decode_values, encode_values
from .errors import WALCorruptionError, WALError
from .schema import TableSchema

__all__ = [
    "WalRecord",
    "WriteAheadLog",
    "ScanStats",
    "RecoveryReport",
    "replay_committed",
    "coalesce_replay",
]

KIND_BEGIN = 0
KIND_COMMIT = 1
KIND_ABORT = 2
KIND_INSERT = 3
KIND_DELETE = 4
KIND_CHECKPOINT = 5

_KIND_NAMES = {
    KIND_BEGIN: "BEGIN",
    KIND_COMMIT: "COMMIT",
    KIND_ABORT: "ABORT",
    KIND_INSERT: "INSERT",
    KIND_DELETE: "DELETE",
    KIND_CHECKPOINT: "CHECKPOINT",
}

_SEGMENT_MAGIC = b"WAL2"
_SEGMENT_VERSION = 2
#: segment header: magic, u8 version, u8 checksum alg, u16 reserved, u64 base LSN
_SEGMENT_HEADER = struct.Struct("<4sBBHQ")
#: record header: u32 payload length, u32 crc, u64 lsn
_RECORD_HEADER = struct.Struct("<IIQ")
#: rotate to a fresh segment once the current one reaches this size
DEFAULT_SEGMENT_BYTES = 1 << 20


@dataclass(frozen=True)
class WalRecord:
    kind: int
    txn_id: int
    table: Optional[str] = None
    row: Optional[Tuple[Any, ...]] = None
    #: log sequence number, filled in by the scanner (None on records
    #: built for appending — append() assigns and returns the LSN)
    lsn: Optional[int] = None

    @property
    def kind_name(self) -> str:
        return _KIND_NAMES.get(self.kind, f"?{self.kind}")


def _encode_payload(record: WalRecord, schemas: Dict[str, TableSchema]) -> bytes:
    parts = [struct.pack("<Bq", record.kind, record.txn_id)]
    if record.kind in (KIND_INSERT, KIND_DELETE):
        if record.table is None or record.row is None:
            raise WALError("INSERT/DELETE records require table and row")
        table_bytes = record.table.encode("utf-8")
        parts.append(struct.pack("<H", len(table_bytes)))
        parts.append(table_bytes)
        schema = schemas[record.table]
        body = encode_values(schema, record.row)
        parts.append(struct.pack("<I", len(body)))
        parts.append(body)
    return b"".join(parts)


def _decode_payload(
    payload: bytes, schemas: Dict[str, TableSchema], lsn: Optional[int] = None
) -> WalRecord:
    kind, txn_id = struct.unpack_from("<Bq", payload, 0)
    offset = 9
    if kind in (KIND_INSERT, KIND_DELETE):
        (table_len,) = struct.unpack_from("<H", payload, offset)
        offset += 2
        table = payload[offset : offset + table_len].decode("utf-8")
        offset += table_len
        (body_len,) = struct.unpack_from("<I", payload, offset)
        offset += 4
        body = payload[offset : offset + body_len]
        if table not in schemas:
            raise WALError(f"WAL references unknown table {table!r}")
        row = decode_values(schemas[table], body)
        return WalRecord(kind, txn_id, table, row, lsn=lsn)
    return WalRecord(kind, txn_id, lsn=lsn)


@dataclass
class ScanStats:
    """What a log scan saw — filled in as the scanner advances, final
    once the scan's iterator is exhausted (or has raised)."""

    segments_scanned: int = 0
    records_scanned: int = 0
    #: bytes of a truncated final record in the final segment (a torn
    #: write at crash time; expected, not corruption)
    torn_tail_bytes: int = 0
    #: bytes dropped without being replayed: the torn tail plus — after
    #: a corrupt record — the rest of its segment and all later segments
    bytes_quarantined: int = 0
    #: human-readable site of the first bad record, None if the log is
    #: clean (tolerant mode; strict mode raises instead)
    corruption: Optional[str] = None


class WriteAheadLog:
    """An append-only, checksummed, segmented log.

    ``path`` is the *base* path: v2 segments live at
    ``<path>.000001``..., while a bare ``<path>`` file is read as a
    legacy v1 log (and never appended to).  The append handle is opened
    lazily and kept open; ``crash()`` abandons it without any
    bookkeeping, and tests then reopen the log and run recovery.

    ``faults`` threads a :class:`~repro.common.faults.FaultPlan`
    through every file write and the named truncation crash points.
    """

    def __init__(
        self,
        path: str,
        schemas: Dict[str, TableSchema],
        *,
        segment_bytes: int = DEFAULT_SEGMENT_BYTES,
        checksum_alg: Optional[int] = None,
        faults=None,
    ) -> None:
        self.path = path
        self._schemas = schemas
        self._segment_bytes = segment_bytes
        self._alg = PREFERRED_ALG if checksum_alg is None else checksum_alg
        if self._alg not in ALG_NAMES:
            raise WALError(f"unknown checksum algorithm id {self._alg}")
        self._crc = checksum_fn(self._alg)
        self._faults = faults if faults is not None else NO_FAULTS
        self._file: Optional[BinaryIO] = None
        self._file_size = 0
        self._next_lsn: Optional[int] = None

    # ------------------------------------------------------------------
    # Segment bookkeeping
    # ------------------------------------------------------------------
    def segment_paths(self) -> List[str]:
        """Existing v2 segment files, in sequence order."""
        directory = os.path.dirname(self.path) or "."
        prefix = os.path.basename(self.path) + "."
        try:
            names = os.listdir(directory)
        except FileNotFoundError:
            return []
        segments = []
        for name in names:
            suffix = name[len(prefix):]
            if name.startswith(prefix) and suffix.isdigit():
                segments.append(os.path.join(directory, name))
        return sorted(segments)

    def _v1_record_count(self) -> int:
        count = 0
        for _record in _scan_v1(self.path, self._schemas, "tolerant", ScanStats(), True):
            count += 1
        return count

    def _last_lsn_on_disk(self) -> int:
        """The highest LSN currently persisted (0 for an empty log)."""
        for segment in reversed(self.segment_paths()):
            _end, lsn, _state = _verified_end(segment, self._schemas)
            if lsn is not None:
                return lsn
            # header unreadable: fall back to the previous segment
        if os.path.exists(self.path):
            return self._v1_record_count()
        return 0

    def last_lsn(self) -> int:
        """The LSN of the most recent append (persisted or buffered)."""
        if self._next_lsn is None:
            self._next_lsn = self._last_lsn_on_disk() + 1
        return self._next_lsn - 1

    def _open_segment(self, seq: int, base_lsn: int) -> None:
        segment = f"{self.path}.{seq:06d}"
        handle = open(segment, "ab")
        if handle.tell() == 0:
            handle.write(
                _SEGMENT_HEADER.pack(
                    _SEGMENT_MAGIC, _SEGMENT_VERSION, self._alg, 0, base_lsn
                )
            )
        self._file = self._faults.wrap(handle, os.path.basename(segment))
        self._file_size = handle.tell()

    def _handle(self) -> BinaryIO:
        if self._file is None:
            if self._next_lsn is None:
                self._next_lsn = self._last_lsn_on_disk() + 1
            segments = self.segment_paths()
            if segments:
                last = segments[-1]
                seq = int(last.rsplit(".", 1)[1])
                end, _lsn, state = _verified_end(last, self._schemas)
                if state == "corrupt":
                    # Appending after a checksum-failed record would
                    # bury possibly-committed bytes behind new ones;
                    # silent truncation would destroy them.  Refuse:
                    # the operator runs tolerant recovery + checkpoint
                    # (which rebuilds the log) first.
                    raise WALCorruptionError(
                        "cannot append to a corrupt WAL segment "
                        "(recover in tolerant mode and checkpoint first)",
                        segment=last,
                        offset=end,
                    )
                if state == "torn":
                    # a torn tail is the crash contract: drop the
                    # un-committed partial record before appending
                    with open(last, "r+b") as handle:
                        handle.truncate(end)
            else:
                seq = 1
            self._open_segment(seq, self._next_lsn)
        return self._file

    def _rotate_if_needed(self) -> None:
        if self._file is None or self._file_size < self._segment_bytes:
            return
        seq = int(self.segment_paths()[-1].rsplit(".", 1)[1]) + 1
        durable_fsync(self._file)
        self._file.close()
        self._file = None
        self._open_segment(seq, self._next_lsn)

    # ------------------------------------------------------------------
    # Appending
    # ------------------------------------------------------------------
    def append(self, record: WalRecord) -> int:
        """Append ``record``; returns its assigned LSN."""
        handle = self._handle()
        self._rotate_if_needed()
        handle = self._file
        lsn = self._next_lsn
        payload = _encode_payload(record, self._schemas)
        # crc chaining: crc(lsn_bytes + payload) == the scanner's
        # crc(payload, seed=crc(lsn_bytes)) — one C call instead of two
        crc = self._crc(struct.pack("<Q", lsn) + payload, 0)
        framed = _RECORD_HEADER.pack(len(payload), crc, lsn) + payload
        handle.write(framed)
        self._file_size += len(framed)
        self._next_lsn = lsn + 1
        return lsn

    def flush(self) -> None:
        if self._file is not None:
            durable_fsync(self._file)

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None

    def crash(self) -> None:
        """Abandon the handle without flushing bookkeeping (simulated crash)."""
        self.close()

    # ------------------------------------------------------------------
    # Scanning
    # ------------------------------------------------------------------
    def records(self) -> Iterator[WalRecord]:
        """All verifiable records, tolerantly (stop at the first bad
        one), *without* disturbing the live append handle — reads go
        through independent handles, so appending, reading, and
        appending again in one session works."""
        return self.scan(mode="tolerant")

    def scan(
        self, mode: str = "strict", stats: Optional[ScanStats] = None
    ) -> Iterator[WalRecord]:
        """Iterate verified records in log order.

        ``mode="strict"`` raises :class:`WALCorruptionError` at the
        first bad record; ``mode="tolerant"`` ends the iteration there
        and reports it in ``stats``.  A torn tail (truncated final
        record of the final segment) ends the scan cleanly in both
        modes.  ``stats`` is filled in as the scan advances.
        """
        if mode not in ("strict", "tolerant"):
            raise ValueError(f"unknown scan mode {mode!r}")
        if stats is None:
            stats = ScanStats()
        # read-your-writes without closing the appender: push buffered
        # appends to the OS so the independent read handles see them
        if self._file is not None:
            self._file.flush()
        return self._scan(mode, stats)

    def _scan(self, mode: str, stats: ScanStats) -> Iterator[WalRecord]:
        segments = self.segment_paths()
        if os.path.exists(self.path):
            # legacy v1 file: no checksums, implicit LSNs, torn tails
            # tolerated mid-chain (its own format's contract)
            stats.segments_scanned += 1
            yield from _scan_v1(
                self.path, self._schemas, mode, stats, not segments
            )
            if stats.corruption is not None:
                _quarantine_rest(stats, segments)
                return
        expected_lsn: Optional[int] = None
        for position, segment in enumerate(segments):
            final = position == len(segments) - 1
            stats.segments_scanned += 1
            base_lsn, alg, data = _read_segment_header(segment, mode, stats, final)
            if data is None:  # unreadable header: reported/raised already
                _quarantine_rest(stats, segments[position + 1 :])
                return
            if expected_lsn is not None and base_lsn != expected_lsn:
                _bad_record(
                    mode,
                    stats,
                    segment,
                    0,
                    expected_lsn,
                    f"segment base LSN {base_lsn} breaks sequence",
                    len(data) + _SEGMENT_HEADER.size,
                )
                _quarantine_rest(stats, segments[position + 1 :])
                return
            expected_lsn = base_lsn
            for record in _scan_v2_records(
                segment, data, base_lsn, alg, self._schemas, mode, stats, final
            ):
                expected_lsn = record.lsn + 1
                yield record
            if stats.corruption is not None:
                _quarantine_rest(stats, segments[position + 1 :])
                return

    # ------------------------------------------------------------------
    def truncate(self) -> None:
        """Discard every persisted record (the checkpoint contract).

        LSNs are *not* reset: the next append continues the sequence,
        so a snapshot's LSN watermark stays meaningful against records
        appended after the checkpoint.  Segments are removed oldest
        first; a crash mid-truncate therefore leaves a contiguous
        suffix whose records are all at-or-below the watermark, which
        recovery skips.
        """
        next_lsn = self.last_lsn() + 1
        self.close()
        self._faults.reached("wal.truncate.begin")
        doomed = []
        if os.path.exists(self.path):
            doomed.append(self.path)
        doomed.extend(self.segment_paths())
        for index, path in enumerate(doomed):
            os.remove(path)
            if index < len(doomed) - 1:
                self._faults.reached("wal.truncate.mid")
        self._faults.reached("wal.truncate.end")
        self._next_lsn = next_lsn


# ----------------------------------------------------------------------
# Scanner internals
# ----------------------------------------------------------------------

def _verified_end(
    path: str, schemas: Dict[str, TableSchema]
) -> Tuple[int, Optional[int], str]:
    """Where a segment's verifiable content ends.

    Returns ``(end_offset, last_lsn, state)`` where ``state`` is
    ``"clean"`` (every byte verifies), ``"torn"`` (the tail is an
    incomplete record or incomplete header — the expected shape of a
    crash mid-append), or ``"corrupt"`` (a *complete* record or header
    failed verification: checksum, LSN, decode, or magic).  ``last_lsn``
    is ``None`` when the header itself was unreadable.
    """
    with open(path, "rb") as handle:
        data = handle.read()
    if len(data) < _SEGMENT_HEADER.size:
        return 0, None, "torn"
    magic, version, alg, _reserved, base_lsn = _SEGMENT_HEADER.unpack_from(data, 0)
    if magic != _SEGMENT_MAGIC or version != _SEGMENT_VERSION or alg not in ALG_NAMES:
        return 0, None, "corrupt"
    header = _RECORD_HEADER
    body = data[_SEGMENT_HEADER.size :]
    offset = 0
    lsn = base_lsn - 1
    while offset < len(body):
        if len(body) - offset < header.size:
            return _SEGMENT_HEADER.size + offset, lsn, "torn"
        length, crc, record_lsn = header.unpack_from(body, offset)
        end = offset + header.size + length
        if end > len(body):
            return _SEGMENT_HEADER.size + offset, lsn, "torn"
        payload = body[offset + header.size : end]
        expected = checksum(alg, payload, checksum(alg, body[offset + 8 : offset + 16]))
        if crc != expected or record_lsn != lsn + 1:
            return _SEGMENT_HEADER.size + offset, lsn, "corrupt"
        try:
            _decode_payload(payload, schemas, lsn=record_lsn)
        except Exception:
            return _SEGMENT_HEADER.size + offset, lsn, "corrupt"
        lsn = record_lsn
        offset = end
    return _SEGMENT_HEADER.size + offset, lsn, "clean"

def _quarantine_rest(stats: ScanStats, later_segments: List[str]) -> None:
    for segment in later_segments:
        try:
            stats.bytes_quarantined += os.path.getsize(segment)
        except OSError:  # pragma: no cover - raced unlink
            pass


def _bad_record(
    mode: str,
    stats: ScanStats,
    segment: str,
    offset: int,
    lsn: Optional[int],
    reason: str,
    remaining: int,
) -> None:
    """Record (tolerant) or raise (strict) a corruption site."""
    at_lsn = f", lsn {lsn}" if lsn is not None else ""
    stats.corruption = f"{reason} in {segment!r} at byte {offset}{at_lsn}"
    stats.bytes_quarantined += remaining
    if mode == "strict":
        raise WALCorruptionError(reason, segment=segment, offset=offset, lsn=lsn)


def _torn_tail(stats: ScanStats, remaining: int) -> None:
    stats.torn_tail_bytes += remaining
    stats.bytes_quarantined += remaining


def _read_segment_header(
    segment: str, mode: str, stats: ScanStats, final: bool = True
) -> Tuple[int, int, Optional[bytes]]:
    """Parse a segment's header; returns ``(base_lsn, alg, records_bytes)``
    with ``records_bytes=None`` when the header was bad (already
    reported/raised)."""
    with open(segment, "rb") as handle:
        data = handle.read()
    if len(data) < _SEGMENT_HEADER.size:
        if final:
            _torn_tail(stats, len(data))
        else:
            _bad_record(
                mode, stats, segment, 0, None,
                f"segment header truncated ({len(data)} bytes)", len(data),
            )
        return 0, 0, None
    magic, version, alg, _reserved, base_lsn = _SEGMENT_HEADER.unpack_from(data, 0)
    if magic != _SEGMENT_MAGIC:
        _bad_record(
            mode, stats, segment, 0, None,
            f"bad segment magic {magic!r}", len(data),
        )
        return 0, 0, None
    if version != _SEGMENT_VERSION:
        _bad_record(
            mode, stats, segment, 4, None,
            f"unsupported WAL segment version {version}", len(data),
        )
        return 0, 0, None
    if alg not in ALG_NAMES:
        _bad_record(
            mode, stats, segment, 5, None,
            f"unknown checksum algorithm id {alg}", len(data),
        )
        return 0, 0, None
    return base_lsn, alg, data[_SEGMENT_HEADER.size :]


def _scan_v2_records(
    segment: str,
    data: bytes,
    base_lsn: int,
    alg: int,
    schemas: Dict[str, TableSchema],
    mode: str,
    stats: ScanStats,
    final: bool,
) -> Iterator[WalRecord]:
    offset = 0
    expected_lsn = base_lsn
    header = _RECORD_HEADER
    file_offset = _SEGMENT_HEADER.size  # for error reporting
    while offset < len(data):
        remaining = len(data) - offset
        if remaining < header.size:
            if final:
                _torn_tail(stats, remaining)
            else:
                _bad_record(
                    mode, stats, segment, file_offset + offset, expected_lsn,
                    f"truncated record header ({remaining} bytes)", remaining,
                )
            return
        length, crc, lsn = header.unpack_from(data, offset)
        end = offset + header.size + length
        if end > len(data):
            if final:
                _torn_tail(stats, remaining)
            else:
                _bad_record(
                    mode, stats, segment, file_offset + offset, expected_lsn,
                    f"truncated record body (want {length} bytes)", remaining,
                )
            return
        payload = data[offset + header.size : end]
        expected_crc = checksum(alg, payload, checksum(alg, data[offset + 8 : offset + 16]))
        if crc != expected_crc:
            _bad_record(
                mode, stats, segment, file_offset + offset, expected_lsn,
                f"checksum mismatch ({ALG_NAMES[alg]} {crc:#010x} != {expected_crc:#010x})",
                remaining,
            )
            return
        if lsn != expected_lsn:
            _bad_record(
                mode, stats, segment, file_offset + offset, expected_lsn,
                f"LSN discontinuity (found {lsn})", remaining,
            )
            return
        try:
            record = _decode_payload(payload, schemas, lsn=lsn)
        except Exception as exc:
            _bad_record(
                mode, stats, segment, file_offset + offset, lsn,
                f"undecodable record ({exc})", remaining,
            )
            return
        stats.records_scanned += 1
        expected_lsn = lsn + 1
        yield record
        offset = end


def _scan_v1(
    path: str,
    schemas: Dict[str, TableSchema],
    mode: str,
    stats: ScanStats,
    final: bool,
) -> Iterator[WalRecord]:
    """The v1 format: length-prefixed payloads, no checksums.  Implicit
    LSNs count from 1.  A malformed tail ends this file's scan in both
    modes — v1 never promised more (and the seed's recovery tests rely
    on exactly that tolerance)."""
    with open(path, "rb") as handle:
        data = handle.read()
    offset = 0
    lsn = 0
    while offset + 4 <= len(data):
        (length,) = struct.unpack_from("<I", data, offset)
        if offset + 4 + length > len(data):
            _torn_tail(stats, len(data) - offset)
            return
        payload = data[offset + 4 : offset + 4 + length]
        try:
            record = _decode_payload(payload, schemas, lsn=lsn + 1)
        except Exception as exc:
            if final:
                _bad_record(
                    mode, stats, path, offset, lsn + 1,
                    f"undecodable v1 record ({exc})", len(data) - offset,
                )
            else:
                _torn_tail(stats, len(data) - offset)
            return
        lsn += 1
        stats.records_scanned += 1
        yield record
        offset += 4 + length
    if offset < len(data):
        _torn_tail(stats, len(data) - offset)


# ----------------------------------------------------------------------
# Recovery reporting
# ----------------------------------------------------------------------

@dataclass(eq=False)
class RecoveryReport:
    """What :meth:`Database.recover` did, structurally.

    Compares equal to an ``int`` as its transaction-replay count (the
    pre-v2 return type of ``recover()``), so existing callers written
    against ``db.recover() == n`` keep working.
    """

    mode: str = "strict"
    segments_scanned: int = 0
    records_scanned: int = 0
    txns_replayed: int = 0
    #: transactions whose ABORT record was found (never replayed)
    txns_aborted: int = 0
    #: transactions with no COMMIT in the readable log — open at the
    #: crash, or committed beyond the first corrupt/torn byte
    txns_dropped: int = 0
    #: records below the snapshot's LSN watermark (already in the
    #: snapshot; skipping them is what makes checkpoints idempotent)
    records_skipped: int = 0
    torn_tail_bytes: int = 0
    bytes_quarantined: int = 0
    corruption: Optional[str] = None

    def __eq__(self, other: Any) -> bool:
        if isinstance(other, int):
            return self.txns_replayed == other
        if isinstance(other, RecoveryReport):
            return all(
                getattr(self, f.name) == getattr(other, f.name)
                for f in fields(self)
            )
        return NotImplemented

    def __int__(self) -> int:
        return self.txns_replayed

    def as_dict(self) -> Dict[str, Any]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def summary(self) -> str:
        lines = [
            f"recovery ({self.mode}): {self.txns_replayed} txn(s) replayed, "
            f"{self.txns_aborted} aborted, {self.txns_dropped} dropped",
            f"  scanned {self.records_scanned} record(s) in "
            f"{self.segments_scanned} segment(s), "
            f"skipped {self.records_skipped} below the snapshot watermark",
        ]
        if self.torn_tail_bytes:
            lines.append(f"  torn tail: {self.torn_tail_bytes} byte(s)")
        if self.bytes_quarantined:
            lines.append(f"  quarantined: {self.bytes_quarantined} byte(s)")
        if self.corruption:
            lines.append(f"  corruption: {self.corruption}")
        return "\n".join(lines)


def coalesce_replay(
    records: "Iterator[WalRecord] | List[WalRecord]",
) -> Iterator[Tuple[str, str, Any]]:
    """Collapse a committed-record stream into per-table bulk operations.

    Recovery used to push every logged insert through the row-at-a-time
    constraint-checking path; this generator instead groups consecutive
    committed inserts per table (across transaction boundaries) so the
    caller can bulk-load each run and bulk-build indexes once.  Yields
    ``("bulk_insert", table, rows)`` and ``("delete", table, row)``.

    Per-table operation order is preserved exactly: a delete flushes the
    pending insert run *of its own table* first, so an insert → delete →
    re-insert sequence on one primary key replays correctly, while runs
    on unrelated tables keep accumulating.
    """
    pending: Dict[str, List[Tuple[Any, ...]]] = {}
    for record in records:
        if record.kind == KIND_INSERT:
            pending.setdefault(record.table, []).append(record.row)
        elif record.kind == KIND_DELETE:
            rows = pending.pop(record.table, None)
            if rows:
                yield "bulk_insert", record.table, rows
            yield "delete", record.table, record.row
        else:  # pragma: no cover - replay_committed only yields DML
            raise WALError(f"unexpected {record.kind_name} record in replay")
    for table, rows in pending.items():
        yield "bulk_insert", table, rows


def replay_committed(
    log: WriteAheadLog,
    mode: str = "tolerant",
    stats: Optional[ScanStats] = None,
) -> Iterator[Tuple[int, List[WalRecord]]]:
    """Group log records by transaction and yield only committed ones,
    in commit order.  Uncommitted and aborted transactions are skipped."""
    pending: Dict[int, List[WalRecord]] = {}
    for record in log.scan(mode=mode, stats=stats):
        if record.kind == KIND_BEGIN:
            pending[record.txn_id] = []
        elif record.kind in (KIND_INSERT, KIND_DELETE):
            pending.setdefault(record.txn_id, []).append(record)
        elif record.kind == KIND_COMMIT:
            yield record.txn_id, pending.pop(record.txn_id, [])
        elif record.kind == KIND_ABORT:
            pending.pop(record.txn_id, None)
        elif record.kind == KIND_CHECKPOINT:
            continue
        else:  # pragma: no cover - defensive
            raise WALError(f"unknown WAL record kind {record.kind}")
