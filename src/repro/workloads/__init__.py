"""Workloads: synthetic curated databases and the paper's update patterns.

The paper evaluated CPDB with random update sequences over a 27.3 MB copy
of MiMI (protein interactions, in Timber) fed from 6 MB of OrganelleDB
(protein localization, in MySQL).  We cannot redistribute those datasets,
so :mod:`repro.workloads.synth` generates seeded synthetic stand-ins with
the same hierarchical shape; :mod:`repro.workloads.patterns` implements
the update patterns of Table 2 and the deletion patterns of Table 3; and
:mod:`repro.workloads.runner` drives an editor through a pattern while
collecting the measurements the figures report.
"""

from .concurrent import (
    History,
    TxnRecord,
    assert_snapshot_isolation,
    check_snapshot_isolation,
    curator_batches,
    run_kv_schedule,
    run_server_schedule,
)
from .patterns import DELETION_POLICIES, UPDATE_PATTERNS, PatternGenerator, generate_pattern
from .runner import RunResult, build_curation_setup, generate_script, run_pattern, run_updates
from .synth import mimi_like_tree, organelledb_like

__all__ = [
    "History",
    "TxnRecord",
    "check_snapshot_isolation",
    "assert_snapshot_isolation",
    "run_kv_schedule",
    "run_server_schedule",
    "curator_batches",
    "organelledb_like",
    "mimi_like_tree",
    "PatternGenerator",
    "generate_pattern",
    "UPDATE_PATTERNS",
    "DELETION_POLICIES",
    "RunResult",
    "run_pattern",
    "run_updates",
    "generate_script",
    "build_curation_setup",
]
