"""Concurrent workload driver and snapshot-isolation history checker.

"Structure and Complexity of Bag Consistency" treats isolation anomalies
as *checkable consistency conditions over histories* — this module takes
the same stance toward the MVCC engine: instead of trusting the
implementation, every concurrent run records a per-client operation
history and :func:`check_snapshot_isolation` certifies it after the
fact.  The invariants checked:

* **Snapshot reads** — every read inside a transaction returns exactly
  the value produced by the newest commit at or before the
  transaction's snapshot timestamp, overlaid with the transaction's own
  earlier writes.  This simultaneously rules out dirty reads (an
  uncommitted peer value could never match), non-repeatable reads (the
  expected value is a function of the fixed snapshot, so re-reads must
  agree), and lost read-your-own-writes.
* **First-committer-wins** — no two *committed* transactions with
  temporally overlapping executions (each one's snapshot predates the
  other's commit) may have intersecting write sets.
* **Commit-timestamp sanity** — committed writers carry distinct
  timestamps, and aborted transactions' writes never appear in any
  read.

Write skew — overlapping *read* sets, disjoint write sets — is
deliberately NOT flagged: snapshot isolation permits it, and the
anomaly regression suite pins that down as documented behavior.

The module also maps :mod:`repro.workloads.patterns` update scripts onto
the wire protocol of :mod:`repro.storage.server` (``curator_batches``),
so N simulated curators can drive a real server concurrently — each
transaction packed into ONE length-prefixed message, matching
``StoreClient``'s one-message-one-round-trip charging model.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..core.updates import Copy, Delete, Insert
from ..storage.db import Database
from ..storage.errors import WriteConflictError
from ..storage.expr import Cmp, Col, Const
from ..storage.mvcc import MVCCManager
from ..storage.schema import Column, TableSchema
from ..storage.types import ColumnType

__all__ = [
    "TxnRecord",
    "History",
    "check_snapshot_isolation",
    "assert_snapshot_isolation",
    "kv_schema",
    "run_kv_schedule",
    "run_server_schedule",
    "prov_schema",
    "curator_batches",
]

#: a history key: (table name, primary-key tuple)
Key = Tuple[str, Tuple[Any, ...]]


@dataclass
class TxnRecord:
    """One transaction's observed history, as its client experienced it."""

    client: Any
    snapshot_ts: int
    #: ordered ("read"|"write", table, key, value) events; a write value
    #: of ``None`` is a delete, a read value of ``None`` is "absent"
    events: List[Tuple[str, str, Tuple[Any, ...], Any]] = field(default_factory=list)
    commit_ts: Optional[int] = None
    status: str = "active"  # -> "committed" | "aborted"

    def read(self, table: str, key: Sequence[Any], value: Any) -> None:
        self.events.append(("read", table, tuple(key), value))

    def write(self, table: str, key: Sequence[Any], value: Any) -> None:
        self.events.append(("write", table, tuple(key), value))

    def committed(self, ts: int) -> None:
        self.status = "committed"
        self.commit_ts = ts

    def aborted(self) -> None:
        self.status = "aborted"

    def write_set(self) -> Dict[Key, Any]:
        """Final value per written key (last write wins)."""
        out: Dict[Key, Any] = {}
        for kind, table, key, value in self.events:
            if kind == "write":
                out[(table, key)] = value
        return out


class History:
    """All transactions of one concurrent run, plus the initial state."""

    def __init__(self, initial: Optional[Dict[Key, Any]] = None) -> None:
        self.initial: Dict[Key, Any] = dict(initial or {})
        self.transactions: List[TxnRecord] = []

    def begin(self, client: Any, snapshot_ts: int) -> TxnRecord:
        record = TxnRecord(client, snapshot_ts)
        self.transactions.append(record)
        return record


def check_snapshot_isolation(history: History) -> List[str]:
    """Verify the SI invariants over a recorded history; returns the
    list of violations (empty = the history is snapshot-isolated)."""
    violations: List[str] = []
    committed = [t for t in history.transactions if t.status == "committed"]
    writers = [t for t in committed if t.write_set()]

    # -- commit-timestamp sanity ---------------------------------------
    by_ts: Dict[int, TxnRecord] = {}
    for txn in writers:
        if txn.commit_ts is None:
            violations.append(f"committed writer {txn.client!r} has no commit ts")
            continue
        if txn.commit_ts <= txn.snapshot_ts:
            violations.append(
                f"txn {txn.client!r} committed at {txn.commit_ts} "
                f"<= its snapshot {txn.snapshot_ts}"
            )
        clash = by_ts.get(txn.commit_ts)
        if clash is not None:
            violations.append(
                f"commit ts {txn.commit_ts} shared by {clash.client!r} "
                f"and {txn.client!r}"
            )
        by_ts[txn.commit_ts] = txn
    writers = sorted(
        (t for t in writers if t.commit_ts is not None), key=lambda t: t.commit_ts
    )

    # committed-value timeline per key: (commit_ts ascending, value)
    timeline: Dict[Key, Tuple[List[int], List[Any]]] = {}
    for key, value in history.initial.items():
        timeline[key] = ([0], [value])
    for txn in writers:
        for key, value in txn.write_set().items():
            ts_list, values = timeline.setdefault(key, ([], []))
            ts_list.append(txn.commit_ts)
            values.append(value)

    def snapshot_value(key: Key, snapshot_ts: int) -> Any:
        entry = timeline.get(key)
        if entry is None:
            return None
        ts_list, values = entry
        position = bisect_right(ts_list, snapshot_ts)
        return values[position - 1] if position else None

    # -- first-committer-wins ------------------------------------------
    # The conflict unit is the row *version*, not the key: a written key
    # is in a transaction's conflict footprint when it either modified a
    # row that pre-existed its snapshot, or net-inserted a surviving row
    # (two surviving inserts of one primary key cannot both commit).  A
    # row created and deleted entirely inside one transaction never
    # existed for anyone else and conflicts with nothing.
    def footprint(txn: TxnRecord) -> set:
        keys = set()
        for key, net_value in txn.write_set().items():
            pre_exists = snapshot_value(key, txn.snapshot_ts) is not None
            if pre_exists or net_value is not None:
                keys.add(key)
        return keys

    for i, first in enumerate(writers):
        first_keys = footprint(first)
        for second in writers[i + 1 :]:
            if second.snapshot_ts >= first.commit_ts:
                continue  # second saw first's commit: no overlap
            overlap = first_keys & footprint(second)
            if overlap:
                violations.append(
                    "first-committer-wins violated: "
                    f"{first.client!r} (snap {first.snapshot_ts}, "
                    f"commit {first.commit_ts}) and {second.client!r} "
                    f"(snap {second.snapshot_ts}, commit {second.commit_ts}) "
                    f"both committed writes to {sorted(overlap)!r}"
                )

    # -- snapshot reads -------------------------------------------------
    for txn in history.transactions:
        own: Dict[Key, Any] = {}
        for kind, table, key, value in txn.events:
            full_key = (table, key)
            if kind == "write":
                own[full_key] = value
                continue
            if full_key in own:
                expected = own[full_key]
                rule = "read-your-own-writes"
            else:
                expected = snapshot_value(full_key, txn.snapshot_ts)
                rule = "snapshot read"
            if value != expected:
                violations.append(
                    f"{rule} violated: txn {txn.client!r} (snap "
                    f"{txn.snapshot_ts}) read {value!r} from {full_key!r}, "
                    f"expected {expected!r}"
                )
    return violations


def assert_snapshot_isolation(history: History) -> None:
    """Raise ``AssertionError`` listing every violation, if any."""
    violations = check_snapshot_isolation(history)
    if violations:
        raise AssertionError(
            "history is not snapshot-isolated:\n  " + "\n  ".join(violations)
        )


# ----------------------------------------------------------------------
# Schedule runners (the test harness side)
# ----------------------------------------------------------------------
def kv_schema() -> TableSchema:
    """The two-column table concurrent schedules run against."""
    return TableSchema(
        "kv",
        (Column("k", ColumnType.INT), Column("v", ColumnType.INT)),
        primary_key=("k",),
    )


def _eq(column: str, value: Any) -> Cmp:
    return Cmp("=", Col(column), Const(value))


def run_kv_schedule(
    steps: Sequence[Tuple[Any, ...]],
    initial: Optional[Dict[int, int]] = None,
    *,
    db: Optional[Database] = None,
) -> Tuple[History, MVCCManager]:
    """Interpret an interleaved schedule against an embedded MVCC engine,
    recording the history the clients observed.

    Steps (``c`` is any hashable client id)::

        ("begin", c)          open a transaction (no-op if one is open)
        ("read", c, k)        point-read key k
        ("write", c, k, v)    upsert k := v
        ("delete", c, k)      delete k (no-op when invisible)
        ("commit", c)         commit; a lost first-committer-wins race
                              records an abort, not a failure
        ("rollback", c)       roll back

    Any transaction still open at the end is committed.  Returns the
    recorded :class:`History` and the manager (for counter assertions).
    """
    if db is None:
        db = Database("mvcc_schedule")
        db.create_table(kv_schema())
    seed = dict(initial or {})
    for k, v in sorted(seed.items()):
        db.insert("kv", (k, v))
    manager = MVCCManager(db)
    history = History({("kv", (k,)): v for k, v in seed.items()})
    open_txns: Dict[Any, Any] = {}
    records: Dict[Any, TxnRecord] = {}

    def ensure(client: Any):
        txn = open_txns.get(client)
        if txn is None:
            txn = manager.begin()
            open_txns[client] = txn
            records[client] = history.begin(client, txn.snapshot_ts)
        return txn, records[client]

    def finish(client: Any, commit: bool) -> None:
        txn = open_txns.pop(client, None)
        if txn is None:
            return
        record = records.pop(client)
        if not commit:
            txn.rollback()
            record.aborted()
            return
        try:
            record.committed(txn.commit())
        except WriteConflictError:
            record.aborted()

    for step in steps:
        action, client = step[0], step[1]
        if action == "begin":
            ensure(client)
        elif action == "read":
            txn, record = ensure(client)
            row = txn.get("kv", (step[2],))
            record.read("kv", (step[2],), None if row is None else row["v"])
        elif action == "write":
            txn, record = ensure(client)
            k, v = step[2], step[3]
            if txn.get("kv", (k,)) is None:
                txn.insert("kv", (k, v))
            else:
                txn.update_where("kv", {"v": v}, _eq("k", k))
            record.write("kv", (k,), v)
        elif action == "delete":
            txn, record = ensure(client)
            if txn.delete_where("kv", _eq("k", step[2])):
                record.write("kv", (step[2],), None)
        elif action == "commit":
            finish(client, True)
        elif action == "rollback":
            finish(client, False)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown schedule action {action!r}")
    for client in list(open_txns):
        finish(client, True)
    return history, manager


def run_server_schedule(
    steps: Sequence[Tuple[Any, ...]],
    clients: Dict[Any, Any],
    initial: Optional[Dict[int, int]] = None,
) -> History:
    """The same schedule language as :func:`run_kv_schedule`, driven over
    live server connections (``clients`` maps client id ->
    :class:`~repro.storage.server.ServerClient`).  The server's ``kv``
    table must already hold exactly ``initial``."""
    history = History({("kv", (k,)): v for k, v in (initial or {}).items()})
    records: Dict[Any, TxnRecord] = {}

    def ensure(client: Any) -> TxnRecord:
        record = records.get(client)
        if record is None:
            opened = clients[client].begin()
            record = history.begin(client, opened["snapshot"])
            records[client] = record
        return record

    def finish(client: Any, commit: bool) -> None:
        record = records.pop(client, None)
        if record is None:
            return
        if not commit:
            clients[client].rollback()
            record.aborted()
            return
        try:
            record.committed(clients[client].commit())
        except WriteConflictError:
            record.aborted()

    for step in steps:
        action, client = step[0], step[1]
        if action == "begin":
            ensure(client)
        elif action == "read":
            record = ensure(client)
            row = clients[client].get("kv", [step[2]])
            record.read("kv", (step[2],), None if row is None else row["v"])
        elif action == "write":
            record = ensure(client)
            k, v = step[2], step[3]
            if clients[client].get("kv", [k]) is None:
                clients[client].insert("kv", [k, v])
            else:
                clients[client].sql(f"UPDATE kv SET v = {v} WHERE k = {k}")
            record.write("kv", (k,), v)
        elif action == "delete":
            record = ensure(client)
            affected = clients[client].sql(f"DELETE FROM kv WHERE k = {step[2]}")
            if affected and affected[0].get("affected"):
                record.write("kv", (step[2],), None)
        elif action == "commit":
            finish(client, True)
        elif action == "rollback":
            finish(client, False)
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown schedule action {action!r}")
    for client in list(records):
        finish(client, True)
    return history


# ----------------------------------------------------------------------
# Curator workloads (the benchmark side)
# ----------------------------------------------------------------------
#: nodes per copied subtree — the paper's copies are size-four subtrees
COPY_SUBTREE_NODES = 4


def prov_schema() -> TableSchema:
    """Provenance-shaped table the simulated curators write: one row per
    recorded operation, keyed like the store's (tid, op, path) axis."""
    return TableSchema(
        "prov",
        (
            Column("id", ColumnType.TEXT),
            Column("tid", ColumnType.INT),
            Column("op", ColumnType.TEXT),
            Column("path", ColumnType.TEXT),
        ),
        primary_key=("id",),
    )


def curator_batches(
    updates: Sequence[Any],
    curator: int,
    txn_length: int = 5,
) -> List[List[Dict[str, Any]]]:
    """Map an update script (from :func:`~repro.workloads.patterns.
    generate_pattern` / ``generate_script``) onto wire-op batches.

    Each batch is one transaction — ``begin``, the provenance writes of
    ``txn_length`` updates, ``commit`` — intended to be sent as ONE
    protocol message (one round trip), mirroring how the transaction-
    grouped store amortizes commits.  Inserts and deletes record one
    provenance row; a copy records its :data:`COPY_SUBTREE_NODES` node
    rows through a single ``insert_many`` op.
    """
    batches: List[List[Dict[str, Any]]] = []
    ops: List[Dict[str, Any]] = [{"op": "begin"}]
    pending = 0
    seq = 0

    def row(op_code: str, path: str) -> List[Any]:
        nonlocal seq
        seq += 1
        return [f"{curator}:{seq}", curator, op_code, path]

    def flush() -> None:
        nonlocal ops, pending
        if pending:
            ops.append({"op": "commit"})
            batches.append(ops)
        ops = [{"op": "begin"}]
        pending = 0

    for update in updates:
        if isinstance(update, Insert):
            ops.append(
                {
                    "op": "insert",
                    "table": "prov",
                    "row": row("I", f"{update.path}/{update.label}"),
                }
            )
        elif isinstance(update, Delete):
            ops.append(
                {
                    "op": "insert",
                    "table": "prov",
                    "row": row("D", f"{update.path}/{update.label}"),
                }
            )
        elif isinstance(update, Copy):
            ops.append(
                {
                    "op": "insert_many",
                    "table": "prov",
                    "rows": [
                        row("C", f"{update.dst}#{i}")
                        for i in range(COPY_SUBTREE_NODES)
                    ],
                }
            )
        else:  # pragma: no cover - defensive
            raise TypeError(f"unknown update {update!r}")
        pending += 1
        if pending >= txn_length:
            flush()
    flush()
    return batches
