"""The update patterns of Table 2 and deletion patterns of Table 3.

Patterns are generated *offline* into concrete update scripts (sequences
of :class:`~repro.core.updates.Update`), deterministically from a seed.
Offline generation matters for comparability: the same script is replayed
against all four storage methods, exactly as the paper ran each pattern
once per method.

Table 2::

    add      all random adds
    delete   all random deletes
    copy     all random copies
    ac-mix   equal mix of random adds and copies
    mix      equal mix of random adds, deletes, copies
    real     copy one subtree, add 3 nodes, delete 3 nodes (repeating)

All copies are of subtrees of size four (a parent with three children)
from the source into the target.

Table 3 (deletion policies — which nodes deletes target, applied to the
``mix`` pattern)::

    del-random   paths deleted at random
    del-add      all added paths deleted
    del-copy     only copies deleted
    del-mix      50-50 mix of adds and copies deleted
    del-real     3 nodes from copied subtree deleted
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.paths import Path
from ..core.tree import Tree
from ..core.updates import Copy, Delete, Insert, Update

__all__ = [
    "PatternGenerator",
    "generate_pattern",
    "UPDATE_PATTERNS",
    "DELETION_POLICIES",
]

UPDATE_PATTERNS = ("add", "delete", "copy", "ac-mix", "mix", "real")
DELETION_POLICIES = ("del-random", "del-add", "del-copy", "del-mix", "del-real")


class PatternGenerator:
    """Generates valid update scripts against a shadow of the target.

    The generator maintains its own shadow tree, applying each generated
    operation to it, so every emitted operation is valid by construction
    (no dangling deletes, no duplicate inserts) without consulting the
    live editor.
    """

    def __init__(
        self,
        initial_target: Tree,
        source_subtrees: Sequence[Path],
        source_name: str = "S",
        target_name: str = "T",
        seed: int = 0,
        deletion_policy: str = "del-random",
        paste_area: "Path | str" = "imports",
        subtree_child_labels: Sequence[str] = ("name", "organism", "localization"),
    ) -> None:
        if deletion_policy not in DELETION_POLICIES:
            raise ValueError(f"unknown deletion policy {deletion_policy!r}")
        self.shadow = initial_target.deep_copy()
        self.source_subtrees = list(source_subtrees)
        if not self.source_subtrees:
            raise ValueError("need at least one copyable source subtree")
        self.source_name = source_name
        self.target_name = target_name
        self.rng = random.Random(seed)
        self.deletion_policy = deletion_policy
        self.paste_area = Path.of(paste_area)
        if not self.shadow.contains_path(self.paste_area):
            raise ValueError(f"target has no paste area at {self.paste_area}")
        #: the child labels every copied size-4 subtree carries (the synth
        #: source's rows all share one schema, so this is a constant)
        self.subtree_child_labels = tuple(subtree_child_labels)
        self._fresh = 0
        # victim pools (target-relative paths; lazily validated for liveness)
        self._added: List[Path] = []
        self._copied: List[Path] = []
        # random deletes target pre-existing data too: random *paths*,
        # i.e. small subtrees deep in the tree — never the paste area or
        # a whole top-level section
        self._initial: List[Path] = [
            path
            for path, node in initial_target.nodes()
            if len(path) >= 2
            and not self.paste_area.is_prefix_of(path)
            and node.node_count() <= 4
        ]
        self._last_copy_children: List[Path] = []

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _abs(self, rel: Path) -> Path:
        return Path([self.target_name]).join(rel)

    def _fresh_label(self, prefix: str) -> str:
        self._fresh += 1
        return f"{prefix}{self._fresh:06d}"

    def _alive(self, rel: Path) -> bool:
        return self.shadow.contains_path(rel)

    def _sample_live(self, pool: List[Path]) -> Optional[Path]:
        """Pop random entries until a live one is found (lazy liveness)."""
        while pool:
            index = self.rng.randrange(len(pool))
            pool[index], pool[-1] = pool[-1], pool[index]
            candidate = pool.pop()
            if self._alive(candidate):
                return candidate
        return None

    # ------------------------------------------------------------------
    # Atomic generators
    # ------------------------------------------------------------------
    def gen_add(self) -> Update:
        """Insert a fresh node under the paste area (a leaf value half of
        the time)."""
        label = self._fresh_label("n")
        value = self.rng.randint(0, 9999) if self.rng.random() < 0.5 else None
        parent_rel = self.paste_area
        update = Insert(label, value, self._abs(parent_rel))
        parent = self.shadow.resolve(parent_rel)
        parent.add_child(label, Tree.empty() if value is None else Tree.leaf(value))
        rel = parent_rel.child(label)
        self._added.append(rel)
        return update

    def gen_copy(self) -> Update:
        """Copy a random size-4 source subtree to a fresh target label."""
        src_rel = self.rng.choice(self.source_subtrees)
        label = self._fresh_label("c")
        dst_rel = self.paste_area.child(label)
        update = Copy(
            Path([self.source_name]).join(src_rel), self._abs(dst_rel)
        )
        # mirror the pasted subtree in the shadow: a parent carrying the
        # source schema's three field children (values are irrelevant for
        # victim selection, the labels must match the real paste)
        pasted = Tree.empty()
        children = []
        for child_label in self.subtree_child_labels:
            pasted.add_child(child_label, Tree.leaf(0))
            children.append(dst_rel.child(child_label))
        self.shadow.resolve(dst_rel.parent).add_child(label, pasted)
        self._copied.append(dst_rel)
        self._copied.extend(children)
        self._last_copy_children = children
        return update

    def gen_delete(self) -> Optional[Update]:
        """Delete a node chosen per the deletion policy; ``None`` when no
        eligible victim remains (caller falls back)."""
        victim = self._pick_victim()
        if victim is None:
            return None
        update = Delete(victim.last, self._abs(victim.parent))
        parent = self.shadow.resolve(victim.parent)
        parent.remove_child(victim.last)
        return update

    def _pick_victim(self) -> Optional[Path]:
        policy = self.deletion_policy
        if policy == "del-add":
            return self._sample_live(self._added)
        if policy == "del-copy":
            return self._sample_live(self._copied)
        if policy == "del-mix":
            pools = [self._added, self._copied]
            self.rng.shuffle(pools)
            return self._sample_live(pools[0]) or self._sample_live(pools[1])
        if policy == "del-real":
            while self._last_copy_children:
                candidate = self._last_copy_children.pop()
                if self._alive(candidate):
                    return candidate
            return self._sample_live(self._copied)
        # del-random: anything live — created nodes or initial data
        pools = [self._added, self._copied, self._initial]
        self.rng.shuffle(pools)
        for pool in pools:
            victim = self._sample_live(pool)
            if victim is not None:
                return victim
        return None

    # ------------------------------------------------------------------
    # Pattern drivers (Table 2)
    # ------------------------------------------------------------------
    def generate(self, pattern: str, steps: int) -> List[Update]:
        if pattern not in UPDATE_PATTERNS:
            raise ValueError(f"unknown update pattern {pattern!r}")
        ops: List[Update] = []
        while len(ops) < steps:
            if pattern == "add":
                ops.append(self.gen_add())
            elif pattern == "copy":
                ops.append(self.gen_copy())
            elif pattern == "delete":
                ops.append(self.gen_delete() or self.gen_add())
            elif pattern == "ac-mix":
                choice = self.rng.random()
                ops.append(self.gen_add() if choice < 0.5 else self.gen_copy())
            elif pattern == "mix":
                choice = self.rng.random()
                if choice < 1 / 3:
                    ops.append(self.gen_add())
                elif choice < 2 / 3:
                    ops.append(self.gen_copy())
                else:
                    ops.append(self.gen_delete() or self.gen_add())
            else:  # real: copy 1 subtree, add 3 nodes, delete 3 nodes
                ops.append(self.gen_copy())
                for _ in range(3):
                    if len(ops) < steps:
                        ops.append(self._add_under_last_copy())
                for _ in range(3):
                    if len(ops) < steps:
                        ops.append(self.gen_delete() or self.gen_add())
        return ops[:steps]

    def _add_under_last_copy(self) -> Update:
        """The real pattern inserts elements under the copied subtree root."""
        if self._copied and self._alive(self._copied[-4 if len(self._copied) >= 4 else -1]):
            # the most recent copy root is 4 entries back (root + 3 children)
            root = None
            for candidate in reversed(self._copied):
                if len(candidate) == len(self.paste_area) + 1 and self._alive(candidate):
                    root = candidate
                    break
            if root is not None:
                label = self._fresh_label("n")
                update = Insert(label, None, self._abs(root))
                self.shadow.resolve(root).add_child(label, Tree.empty())
                self._added.append(root.child(label))
                return update
        return self.gen_add()


def generate_pattern(
    pattern: str,
    steps: int,
    initial_target: Tree,
    source_subtrees: Sequence[Path],
    seed: int = 0,
    deletion_policy: str = "del-random",
    source_name: str = "S",
    target_name: str = "T",
) -> List[Update]:
    """Generate one of the paper's update patterns as a concrete script.

    For the ``real`` pattern the paper's deletes target the copied
    subtree (``del-real``); the random patterns default to ``del-random``
    unless a Table 3 policy is given.
    """
    if pattern == "real" and deletion_policy == "del-random":
        deletion_policy = "del-real"
    generator = PatternGenerator(
        initial_target,
        source_subtrees,
        source_name=source_name,
        target_name=target_name,
        seed=seed,
        deletion_policy=deletion_policy,
    )
    return generator.generate(pattern, steps)
