"""Drive a provenance-aware editor through an update pattern, measuring
everything the paper's figures report.

The standard setup mirrors Section 3: the target is the XML store
(MiMI-on-Timber), the source is the relational engine (OrganelleDB-on-
MySQL), and the provenance store is a relation in the relational engine,
reached through round-trip-accounted calls.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..common.clock import CostModel, VirtualClock
from ..core.editor import CurationEditor
from ..core.provenance import ProvTable, ProvenanceStore
from ..core.stores import make_store
from ..core.updates import Copy, Delete, Insert, Update
from ..storage.db import Database
from ..wrappers.relational import RelationalSourceDB
from ..wrappers.xml import XMLTargetDB
from ..xmldb.store import XMLDatabase
from .patterns import generate_pattern
from .synth import mimi_like_tree, organelledb_like, source_subtree_paths

__all__ = ["RunResult", "CurationSetup", "build_curation_setup", "run_pattern"]


@dataclass
class CurationSetup:
    """Everything needed to run one experiment configuration."""

    editor: CurationEditor
    store: ProvenanceStore
    table: ProvTable
    clock: VirtualClock
    source_db: Database
    xml_db: XMLDatabase


@dataclass
class RunResult:
    """Measurements from one (pattern, method) run.

    ``avg_ms`` holds virtual-clock averages per category — the paper's
    Figure 9 bars (``prov.add``, ``prov.delete``, ``prov.paste``,
    ``prov.commit``, ``target.update``); ``op_counts`` the number of
    operations per kind; storage is reported both in rows and bytes
    (Figures 7, 8, 11).
    """

    method: str
    pattern: str
    steps: int
    txn_length: Optional[int]
    prov_rows: int
    prov_bytes: int
    target_nodes: int
    avg_ms: Dict[str, float]
    total_ms: Dict[str, float]
    counts: Dict[str, int]
    op_counts: Dict[str, int]
    wall_seconds: float

    def overhead_percent(self, op: str) -> float:
        """Provenance overhead for one operation kind as a percentage of
        the base dataset-interaction time (the paper's Figure 10)."""
        base = self.avg_ms.get("target.update", 0.0)
        if base == 0:
            return 0.0
        return 100.0 * self.avg_ms.get(f"prov.{op}", 0.0) / base

    def amortized_ms_per_op(self) -> float:
        """Average provenance time per update operation, commit time
        amortized over all operations (Figure 12's 'amortized' series)."""
        prov_total = sum(
            ms for category, ms in self.total_ms.items() if category.startswith("prov.")
        )
        return prov_total / self.steps if self.steps else 0.0


def build_curation_setup(
    method: str,
    n_proteins: int = 2000,
    n_molecules: int = 500,
    seed: int = 7,
    cost_model: Optional[CostModel] = None,
    use_indexes: bool = True,
    first_tid: int = 1,
    **store_kwargs,
) -> CurationSetup:
    """The paper's system configuration with synthetic data."""
    clock = VirtualClock()
    cost_model = cost_model if cost_model is not None else CostModel()
    source_db = organelledb_like(n_proteins=n_proteins, seed=seed)
    xml_db = XMLDatabase("mimi")
    xml_db.load_tree(mimi_like_tree(n_molecules=n_molecules, seed=seed + 1))
    prov_db = Database("provstore")
    table = ProvTable(
        db=prov_db, clock=clock, cost_model=cost_model, use_indexes=use_indexes
    )
    store = make_store(method, table, first_tid=first_tid, **store_kwargs)
    editor = CurationEditor(
        target=XMLTargetDB("T", xml_db),
        sources=[RelationalSourceDB("S", source_db)],
        store=store,
    )
    return CurationSetup(editor, store, table, clock, source_db, xml_db)


def run_updates(
    setup: CurationSetup,
    updates: Sequence[Update],
    txn_length: Optional[int] = 5,
) -> RunResult:
    """Replay an update script with periodic commits and collect results."""
    op_counts = {"add": 0, "delete": 0, "copy": 0}
    started = time.perf_counter()
    pending = 0
    for update in updates:
        setup.editor.apply(update)
        if isinstance(update, Insert):
            op_counts["add"] += 1
        elif isinstance(update, Delete):
            op_counts["delete"] += 1
        else:
            op_counts["copy"] += 1
        pending += 1
        if txn_length is not None and pending >= txn_length:
            setup.editor.commit()
            pending = 0
    if pending and txn_length is not None:
        setup.editor.commit()
    wall = time.perf_counter() - started

    clock = setup.clock
    categories = clock.categories()
    # Averages are per *operation*, not per clock charge (one hierarchical
    # insert, say, issues two charged round trips under prov.add).
    per_op_divisors = {
        "prov.add": op_counts["add"],
        "prov.delete": op_counts["delete"],
        "prov.paste": op_counts["copy"],
        "target.update": len(updates),
    }
    avg_ms = {}
    for category, total in categories.items():
        divisor = per_op_divisors.get(category, clock.count(category))
        avg_ms[category] = total / divisor if divisor else 0.0
    return RunResult(
        method=setup.store.method,
        pattern="",
        steps=len(updates),
        txn_length=txn_length,
        prov_rows=setup.table.row_count,
        prov_bytes=setup.table.byte_size,
        target_nodes=setup.xml_db.node_count(),
        avg_ms=avg_ms,
        total_ms=dict(categories),
        counts={category: clock.count(category) for category in categories},
        op_counts=op_counts,
        wall_seconds=wall,
    )


def run_pattern(
    method: str,
    pattern: str,
    steps: int,
    txn_length: Optional[int] = 5,
    seed: int = 7,
    deletion_policy: str = "del-random",
    n_proteins: int = 2000,
    n_molecules: int = 500,
    cost_model: Optional[CostModel] = None,
    use_indexes: bool = True,
    updates: Optional[Sequence[Update]] = None,
    **store_kwargs,
) -> RunResult:
    """Run one (pattern, method) cell of the paper's experiment matrix.

    Passing ``updates`` replays a pre-generated script (so several
    methods see the identical operation sequence).
    """
    setup = build_curation_setup(
        method,
        n_proteins=n_proteins,
        n_molecules=n_molecules,
        seed=seed,
        cost_model=cost_model,
        use_indexes=use_indexes,
        **store_kwargs,
    )
    if updates is None:
        updates = generate_script(
            pattern, steps, seed=seed, deletion_policy=deletion_policy,
            n_proteins=n_proteins, n_molecules=n_molecules,
        )
    result = run_updates(setup, updates, txn_length=txn_length)
    result.pattern = pattern
    return result


def generate_script(
    pattern: str,
    steps: int,
    seed: int = 7,
    deletion_policy: str = "del-random",
    n_proteins: int = 2000,
    n_molecules: int = 500,
) -> List[Update]:
    """Generate the update script for a pattern against the synthetic
    databases (deterministic in ``seed``)."""
    source_db = organelledb_like(n_proteins=n_proteins, seed=seed)
    initial = mimi_like_tree(n_molecules=n_molecules, seed=seed + 1)
    return generate_pattern(
        pattern,
        steps,
        initial,
        source_subtree_paths(source_db),
        seed=seed + 2,
        deletion_policy=deletion_policy,
    )
