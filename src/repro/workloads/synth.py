"""Seeded synthetic stand-ins for the paper's datasets.

* :func:`organelledb_like` — the source database: a relational protein
  localization catalog.  Each protein row exposes exactly three fields,
  so its tree view ``protein/<id>`` is a subtree of size four (a parent
  with three children) — the paper's unit of copying.
* :func:`mimi_like_tree` — the target database: a hierarchical protein
  interaction dataset (molecules with attributes and nested interaction
  lists) to pre-populate the XML store.

Both generators are deterministic in their ``seed``.
"""

from __future__ import annotations

import random
from typing import List

from ..core.paths import Path
from ..core.tree import Tree
from ..storage.db import Database
from ..storage.schema import Column, TableSchema
from ..storage.types import ColumnType
from ..xmldb.keys import key_label

__all__ = ["organelledb_like", "mimi_like_tree", "source_subtree_paths"]

_ORGANISMS = (
    "S.cerevisiae", "H.sapiens", "M.musculus", "D.melanogaster",
    "C.elegans", "A.thaliana", "R.norvegicus", "D.rerio",
)
_LOCALIZATIONS = (
    "nucleus", "cytoplasm", "mitochondrion", "membrane",
    "endoplasmic reticulum", "golgi", "peroxisome", "vacuole",
)
_NAME_SYLLABLES = ("abc", "crp", "tor", "ras", "myc", "src", "kin", "pol", "rad", "cdc")


def _protein_name(rng: random.Random) -> str:
    return (
        rng.choice(_NAME_SYLLABLES).upper()
        + rng.choice(_NAME_SYLLABLES).capitalize()
        + str(rng.randint(1, 99))
    )


def organelledb_like(
    n_proteins: int = 2000, seed: int = 7, name: str = "organelledb"
) -> Database:
    """A relational protein-localization source database.

    Schema: ``protein(id TEXT PRIMARY KEY, name, organism, localization)``
    — three non-key fields, so each row's tree view is a size-4 subtree.
    """
    rng = random.Random(seed)
    db = Database(name)
    db.create_table(
        TableSchema(
            "protein",
            [
                Column("id", ColumnType.TEXT, nullable=False),
                Column("name", ColumnType.TEXT, nullable=False),
                Column("organism", ColumnType.TEXT, nullable=False),
                Column("localization", ColumnType.TEXT, nullable=False),
            ],
            primary_key=("id",),
        )
    )
    rows = []
    for index in range(n_proteins):
        rows.append(
            (
                f"O{index:05d}",
                _protein_name(rng),
                rng.choice(_ORGANISMS),
                rng.choice(_LOCALIZATIONS),
            )
        )
    db.insert_many("protein", rows)
    return db


def source_subtree_paths(db: Database, table: str = "protein") -> List[Path]:
    """The copyable size-4 subtree roots of a source database's tree view
    (``table/<key>`` for every row), in insertion order."""
    schema = db.table(table).schema
    return [
        Path([table, "|".join(str(part) for part in schema.key_of(row))])
        for _rowid, row in db.table(table).scan()
    ]


def mimi_like_tree(n_molecules: int = 500, seed: int = 11) -> Tree:
    """A hierarchical protein-interaction target dataset.

    Shape (per molecule, keyed by accession)::

        molecule{M00042}/
            name: "TORKin7"
            organism: "H.sapiens"
            ptm: "phosphorylation"
            interactions/
                interaction{1}/ partner: "M00017"  evidence: "Y2H"
                ...
    """
    rng = random.Random(seed)
    root = Tree.empty()
    molecules = Tree.empty()
    for index in range(n_molecules):
        accession = f"M{index:05d}"
        molecule = Tree.empty()
        molecule.add_child("name", Tree.leaf(_protein_name(rng)))
        molecule.add_child("organism", Tree.leaf(rng.choice(_ORGANISMS)))
        if rng.random() < 0.5:
            molecule.add_child(
                "ptm",
                Tree.leaf(rng.choice(("phosphorylation", "acetylation", "ubiquitination"))),
            )
        interactions = Tree.empty()
        for number in range(1, rng.randint(1, 4) + 1):
            interaction = Tree.empty()
            partner = f"M{rng.randrange(max(n_molecules, 1)):05d}"
            interaction.add_child("partner", Tree.leaf(partner))
            interaction.add_child(
                "evidence", Tree.leaf(rng.choice(("Y2H", "coIP", "literature")))
            )
            interactions.add_child(key_label("interaction", number), interaction)
        molecule.add_child("interactions", interactions)
        molecules.add_child(key_label("molecule", accession), molecule)
    root.add_child("molecules", molecules)
    root.add_child("imports", Tree.empty())  # curation workspace area
    return root
