"""Database wrappers: the Figure 6 contracts mapping heterogeneous
databases (in-memory trees, relational, XML, filesystem) to keyed tree
views that the provenance-aware editor can browse and update."""

from .base import SourceDB, TargetDB, WrapperError
from .memory import MemorySourceDB, MemoryTargetDB
from .relational import RelationalSourceDB
from .filesystem import FileSystemSourceDB, FileSystemTargetDB
from .xml import XMLSourceDB, XMLTargetDB

__all__ = [
    "SourceDB",
    "TargetDB",
    "WrapperError",
    "MemorySourceDB",
    "MemoryTargetDB",
    "RelationalSourceDB",
    "FileSystemSourceDB",
    "FileSystemTargetDB",
    "XMLSourceDB",
    "XMLTargetDB",
]
