"""The wrapper contracts of Figure 6.

Every participating database is wrapped as a "fully-keyed" tree view:
paths of edge labels address at most one data element.  Source databases
need only be browsable and copyable; the target database must also
translate tree updates into its native update operations.

The underlying database need not store trees — the relational wrapper
maps tables to ``R/tid/F`` paths, the filesystem wrapper maps directories
and files — and need not expose all of its data (the wrapper decides what
is visible, Section 3.1).

All wrapper paths are *relative to the wrapped database's root*; the
editor composes absolute locations by prefixing the database name.
"""

from __future__ import annotations

import abc
from typing import Optional

from ..core.paths import Path
from ..core.tree import Tree, Value

__all__ = ["SourceDB", "TargetDB", "WrapperError"]


class WrapperError(Exception):
    """Raised when a wrapper operation fails (bad path, read-only, ...)."""


class SourceDB(abc.ABC):
    """A browsable, copyable database (the paper's ``SourceDB``).

    ``tree_from_db`` corresponds to the paper's ``treeFromDB()``:
    return a keyed tree view of (the exposed part of) the data.
    ``copy_node`` corresponds to ``copyNode()``: return the selected
    subtree — a single node for a leaf, otherwise every node under the
    selection, each addressable by its path.
    """

    def __init__(self, name: str) -> None:
        if not name:
            raise WrapperError("a wrapped database needs a nonempty name")
        self.name = name

    @abc.abstractmethod
    def tree_from_db(self) -> Tree:
        """A keyed tree view of the database (fresh copy; safe to hold)."""

    def copy_node(self, path: "Path | str") -> Tree:
        """Deep copy of the subtree at ``path`` (the user's clipboard)."""
        path = Path.of(path)
        tree = self.tree_from_db()
        if not tree.contains_path(path):
            raise WrapperError(f"{self.name}: no node at {path}")
        return tree.resolve(path).deep_copy()

    def contains(self, path: "Path | str") -> bool:
        return self.tree_from_db().contains_path(Path.of(path))


class TargetDB(SourceDB):
    """A database the editor may update (the paper's ``TargetDB``).

    The three update methods mirror Figure 6: ``add_node`` inserts a new
    node, ``delete_node`` removes one, ``paste_node`` installs a copied
    subtree as/at the given location (replacing any existing content —
    see the note on copy semantics in :mod:`repro.core.updates`).  Each
    implementation translates the tree update to the database's native
    format.
    """

    @abc.abstractmethod
    def add_node(self, path: "Path | str", name: str, value: Value = None) -> None:
        """Insert a new node labeled ``name`` (empty, or a leaf holding
        ``value``) under the node at ``path``."""

    @abc.abstractmethod
    def delete_node(self, path: "Path | str") -> Tree:
        """Delete the node at ``path``; returns the removed subtree (the
        provenance layer needs it to expand delete records)."""

    @abc.abstractmethod
    def paste_node(self, path: "Path | str", subtree: Tree) -> Optional[Tree]:
        """Install ``subtree`` at ``path`` (parent must exist), replacing
        any existing content; returns the overwritten subtree or ``None``."""
