"""Filesystem wrapper: view a directory tree as a database.

"Source and target databases can ... consist of files stored in
filesystems or Web sites" (Section 1.3).  Directories become interior
nodes, files become leaves holding their text content.  The target
variant translates tree updates back to filesystem operations, making a
plain directory a fully functional curated database with provenance.
"""

from __future__ import annotations

import os
import shutil
from typing import Optional

from ..core.paths import Path
from ..core.tree import Tree, Value
from .base import SourceDB, TargetDB, WrapperError

__all__ = ["FileSystemSourceDB", "FileSystemTargetDB"]

_MAX_FILE_BYTES = 1 << 20  # refuse to slurp silly files into leaves


def _tree_from_dir(directory: str) -> Tree:
    node = Tree.empty()
    for entry in sorted(os.listdir(directory)):
        full = os.path.join(directory, entry)
        if os.path.isdir(full):
            node.add_child(entry, _tree_from_dir(full))
        else:
            size = os.path.getsize(full)
            if size > _MAX_FILE_BYTES:
                raise WrapperError(f"file too large for a leaf value: {full}")
            with open(full, "r", encoding="utf-8") as handle:
                node.add_child(entry, Tree.leaf(handle.read()))
    return node


def _write_tree(directory: str, tree: Tree) -> None:
    os.makedirs(directory, exist_ok=True)
    for label, child in tree.children.items():
        full = os.path.join(directory, label)
        if child.is_leaf_value:
            with open(full, "w", encoding="utf-8") as handle:
                handle.write(str(child.value))
        else:
            _write_tree(full, child)


class FileSystemSourceDB(SourceDB):
    """A read-only directory tree presented as a source database."""

    def __init__(self, name: str, root_dir: str) -> None:
        super().__init__(name)
        if not os.path.isdir(root_dir):
            raise WrapperError(f"{name}: {root_dir!r} is not a directory")
        self.root_dir = root_dir

    def tree_from_db(self) -> Tree:
        return _tree_from_dir(self.root_dir)


class FileSystemTargetDB(FileSystemSourceDB, TargetDB):
    """A writable directory tree presented as a target database."""

    def _full_path(self, path: "Path | str") -> str:
        path = Path.of(path)
        for label in path:
            if label in (".", "..") or os.sep in label:
                raise WrapperError(f"{self.name}: unsafe path label {label!r}")
        return os.path.join(self.root_dir, *path.labels)

    def add_node(self, path: "Path | str", name: str, value: Value = None) -> None:
        parent = self._full_path(path)
        if not os.path.isdir(parent):
            raise WrapperError(f"{self.name}: no directory at {path}")
        full = os.path.join(parent, name)
        if os.path.exists(full):
            raise WrapperError(f"{self.name}: {Path.of(path).child(name)} already exists")
        if value is None:
            os.makedirs(full)
        else:
            with open(full, "w", encoding="utf-8") as handle:
                handle.write(str(value))

    def delete_node(self, path: "Path | str") -> Tree:
        path = Path.of(path)
        if path.is_root:
            raise WrapperError(f"{self.name}: cannot delete the root")
        full = self._full_path(path)
        if os.path.isdir(full):
            removed = _tree_from_dir(full)
            shutil.rmtree(full)
            return removed
        if os.path.isfile(full):
            with open(full, "r", encoding="utf-8") as handle:
                removed = Tree.leaf(handle.read())
            os.remove(full)
            return removed
        raise WrapperError(f"{self.name}: no node at {path}")

    def paste_node(self, path: "Path | str", subtree: Tree) -> Optional[Tree]:
        path = Path.of(path)
        if path.is_root:
            raise WrapperError(f"{self.name}: cannot paste over the root")
        parent = self._full_path(path.parent)
        if not os.path.isdir(parent):
            raise WrapperError(f"{self.name}: paste parent missing: {path.parent}")
        full = self._full_path(path)
        overwritten: Optional[Tree] = None
        if os.path.isdir(full):
            overwritten = _tree_from_dir(full)
            shutil.rmtree(full)
        elif os.path.isfile(full):
            with open(full, "r", encoding="utf-8") as handle:
                overwritten = Tree.leaf(handle.read())
            os.remove(full)
        if subtree.is_leaf_value:
            with open(full, "w", encoding="utf-8") as handle:
                handle.write(str(subtree.value))
        else:
            _write_tree(full, subtree)
        return overwritten
