"""Wrappers over plain in-memory trees.

These are the simplest wrapper implementations — the tree *is* the
database — used by unit tests and by the worked examples that replay the
paper's Figures 3-5.
"""

from __future__ import annotations

from typing import Optional

from ..core.paths import Path
from ..core.tree import Tree, TreeError, Value
from .base import SourceDB, TargetDB, WrapperError

__all__ = ["MemorySourceDB", "MemoryTargetDB"]


class MemorySourceDB(SourceDB):
    """A read-only tree presented as a source database."""

    def __init__(self, name: str, tree: Tree) -> None:
        super().__init__(name)
        self._tree = tree

    def tree_from_db(self) -> Tree:
        return self._tree.deep_copy()

    # Fast paths avoiding the deep copy in the base class.
    def copy_node(self, path: "Path | str") -> Tree:
        path = Path.of(path)
        if not self._tree.contains_path(path):
            raise WrapperError(f"{self.name}: no node at {path}")
        return self._tree.resolve(path).deep_copy()

    def contains(self, path: "Path | str") -> bool:
        return self._tree.contains_path(Path.of(path))


class MemoryTargetDB(MemorySourceDB, TargetDB):
    """A mutable tree presented as a target database."""

    def add_node(self, path: "Path | str", name: str, value: Value = None) -> None:
        path = Path.of(path)
        try:
            parent = self._tree.resolve(path)
            child = Tree.empty() if value is None else Tree.leaf(value)
            parent.add_child(name, child)
        except TreeError as exc:
            raise WrapperError(f"{self.name}: add_node failed: {exc}") from exc

    def delete_node(self, path: "Path | str") -> Tree:
        path = Path.of(path)
        if path.is_root:
            raise WrapperError(f"{self.name}: cannot delete the root")
        try:
            parent = self._tree.resolve(path.parent)
            return parent.remove_child(path.last)
        except TreeError as exc:
            raise WrapperError(f"{self.name}: delete_node failed: {exc}") from exc

    def paste_node(self, path: "Path | str", subtree: Tree) -> Optional[Tree]:
        path = Path.of(path)
        if path.is_root:
            raise WrapperError(f"{self.name}: cannot paste over the root")
        try:
            parent = self._tree.resolve(path.parent)
        except TreeError as exc:
            raise WrapperError(f"{self.name}: paste parent missing: {exc}") from exc
        if parent.is_leaf_value:
            raise WrapperError(f"{self.name}: paste parent is a leaf value")
        overwritten = parent.children.get(path.last)
        parent.children[path.last] = subtree.deep_copy()
        return overwritten
