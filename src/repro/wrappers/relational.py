"""Relational wrapper: view an embedded relational database as a tree.

The paper (Section 2): "the data values in a relational database can be
addressed using four-level paths where ``DB/R/tid/F`` addresses the field
value F in the tuple with identifier or key tid in table R of database
DB".  The wrapper implements exactly that mapping for
:class:`repro.storage.Database`:

* level 1 (inside the wrapper): table name;
* level 2: primary-key rendering of the tuple (components joined with
  ``|`` for composite keys);
* level 3: column name, a leaf holding the field value.

Only tables listed in ``exposed`` (default: all) are visible — wrappers
need not expose everything (Section 3.1).  The wrapper is read-only: in
the paper's experiments the relational database (OrganelleDB) is a
*source*.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..core.tree import Tree
from ..storage.db import Database
from .base import SourceDB, WrapperError

__all__ = ["RelationalSourceDB", "render_key"]


def render_key(key: Sequence) -> str:
    """Render a primary-key tuple as a single path label."""
    return "|".join(str(part) for part in key)


def _row_tree(schema, row) -> "Tree":
    """The tree view of one row: non-key columns as leaf children (the
    primary key already appears as the row's edge label; NULLs are simply
    absent edges)."""
    node = Tree.empty()
    pk = set(schema.primary_key)
    for column, value in zip(schema.columns, row):
        if value is None or column.name in pk:
            continue
        node.add_child(column.name, Tree.leaf(value))
    return node


def _parse_key(schema, key_parts: Sequence[str]):
    """Parse key labels back to typed primary-key values."""
    from ..storage.types import ColumnType

    if len(key_parts) != len(schema.primary_key):
        raise WrapperError(
            f"key {key_parts!r} does not match primary key {schema.primary_key}"
        )
    typed = []
    for column_name, part in zip(schema.primary_key, key_parts):
        column = schema.column(column_name)
        if column.type is ColumnType.INT:
            typed.append(int(part))
        elif column.type is ColumnType.REAL:
            typed.append(float(part))
        else:
            typed.append(part)
    return tuple(typed)


class RelationalSourceDB(SourceDB):
    """A read-only tree view of a relational database."""

    def __init__(
        self,
        name: str,
        db: Database,
        exposed: Optional[Sequence[str]] = None,
    ) -> None:
        super().__init__(name)
        self.db = db
        self.exposed = tuple(exposed) if exposed is not None else None

    def _visible_tables(self) -> Sequence[str]:
        if self.exposed is not None:
            return self.exposed
        return sorted(self.db.tables)

    def tree_from_db(self) -> Tree:
        root = Tree.empty()
        for table_name in self._visible_tables():
            table = self.db.table(table_name)
            schema = table.schema
            if not schema.primary_key:
                raise WrapperError(
                    f"{self.name}: table {table_name!r} has no primary key; "
                    "a fully-keyed view requires one"
                )
            table_node = Tree.empty()
            for _rowid, row in table.scan():
                table_node.add_child(render_key(schema.key_of(row)), _row_tree(schema, row))
            root.add_child(table_name, table_node)
        return root

    def copy_node(self, path: "Path | str") -> Tree:
        """Targeted fetch: resolve ``table/key[/field]`` paths against the
        table's primary-key index instead of materializing the full view
        (what a real wrapper's copyNode() would do)."""
        from ..core.paths import Path as _Path

        path = _Path.of(path)
        if path.is_root or len(path) > 3:
            return super().copy_node(path)
        table_name = path.head
        if table_name not in self._visible_tables():
            raise WrapperError(f"{self.name}: no table {table_name!r} exposed")
        table = self.db.table(table_name)
        schema = table.schema
        if len(path) == 1:
            return super().copy_node(path)  # whole-table copies stay generic
        key_parts = path[1].split("|")
        key = _parse_key(schema, key_parts)
        found = table.lookup_pk(key)
        if found is None:
            raise WrapperError(f"{self.name}: no node at {path}")
        row_tree = _row_tree(schema, found[1])
        if len(path) == 2:
            return row_tree
        field = path[2]
        if not row_tree.has_child(field):
            raise WrapperError(f"{self.name}: no node at {path}")
        return row_tree.child(field)
