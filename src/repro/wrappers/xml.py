"""Wrapper presenting an :class:`~repro.xmldb.XMLDatabase` as source/target.

This is the MiMI-on-Timber configuration of the paper's experiments: the
curated target database lives in the native XML store, and the editor's
tree updates are translated one-for-one to node-store updates.
"""

from __future__ import annotations

from typing import Optional

from ..core.paths import Path
from ..core.tree import Tree, Value
from ..xmldb.store import XMLDatabase, XMLDBError
from .base import SourceDB, TargetDB, WrapperError

__all__ = ["XMLSourceDB", "XMLTargetDB"]


class XMLSourceDB(SourceDB):
    """Read-only view of an XML database."""

    def __init__(self, name: str, db: XMLDatabase) -> None:
        super().__init__(name)
        self.db = db

    def tree_from_db(self) -> Tree:
        return self.db.subtree(Path())

    def copy_node(self, path: "Path | str") -> Tree:
        try:
            return self.db.subtree(path)
        except XMLDBError as exc:
            raise WrapperError(str(exc)) from exc

    def contains(self, path: "Path | str") -> bool:
        return self.db.contains(path)


class XMLTargetDB(XMLSourceDB, TargetDB):
    """Writable view of an XML database (the paper's target setup)."""

    def add_node(self, path: "Path | str", name: str, value: Value = None) -> None:
        try:
            self.db.add_node(path, name, value)
        except XMLDBError as exc:
            raise WrapperError(str(exc)) from exc

    def delete_node(self, path: "Path | str") -> Tree:
        try:
            return self.db.delete_node(path)
        except XMLDBError as exc:
            raise WrapperError(str(exc)) from exc

    def paste_node(self, path: "Path | str", subtree: Tree) -> Optional[Tree]:
        try:
            return self.db.paste_node(path, subtree)
        except XMLDBError as exc:
            raise WrapperError(str(exc)) from exc
