"""A native tree/XML store: the reproduction's Timber substitute.

The paper's target database (MiMI) ran on Timber, a native XML database;
CPDB required only that the target expose a *fully-keyed* tree view and
translate tree updates to native updates (Figure 6).  This package
provides exactly that:

* :class:`XMLDatabase` — a node store with stable node identifiers,
  parent/child links, keyed child addressing and byte accounting;
* :mod:`repro.xmldb.keys` — key specifications ("Keys for XML") that turn
  ordered, repeated XML elements into keyed tree edges;
* :mod:`repro.xmldb.xpath` — a small XPath-subset evaluator (child,
  wildcard, descendant, leaf-equality predicates) used by approximate
  provenance;
* :mod:`repro.xmldb.serialize` — parse/print an XML subset via the
  standard library, producing keyed views.
"""

from .store import NodeId, XMLDatabase, XMLDBError
from .keys import KeySpec, keyed_view
from .xpath import XPath, XPathError
from .serialize import tree_from_xml, tree_to_xml

__all__ = [
    "XMLDatabase",
    "XMLDBError",
    "NodeId",
    "KeySpec",
    "keyed_view",
    "XPath",
    "XPathError",
    "tree_from_xml",
    "tree_to_xml",
]
