"""XPath axes compiled onto the interval encoding.

Every axis of the accelerator design — child, descendant(-or-self),
ancestor(-or-self), parent, following/preceding(-sibling), following,
preceding — is an interval predicate over the store's ``(pre, post,
level)`` encoding (see :mod:`repro.xmldb.store`):

===================  ================================================
axis of ``v``        interval predicate
===================  ================================================
descendant           ``v.pre < u.pre < v.post``
child                descendant with ``u.level == v.level + 1``
ancestor             ``u.pre < v.pre`` and ``u.post > v.post``
parent               rank predecessor at ``v.level - 1``
following-sibling    ``v.post < u.pre < parent.post`` at ``v.level``
preceding-sibling    ``parent.pre < u.pre < v.pre`` at ``v.level``
following            ``u.pre > v.post``
preceding            ``u.post < v.pre``
===================  ================================================

Each predicate is evaluated as an :class:`~repro.storage.index.
OrderedIndex` ``range`` / ``multi_range`` scan over the store's
``(pre,)``, ``(base_label, pre)`` and ``(level, pre)`` indexes — never a
per-node tree walk (``XMLDatabase.access_counts`` counts the scans, the
EXPLAIN-style evidence the tests assert on).

:func:`evaluate_xpath` runs the whole XPath subset this way.  Batched
descendant steps apply *staircase pruning* first: context nodes nested
inside an earlier context node are dropped, because their descendant
windows are fully covered — the surviving windows are disjoint and
ascending, so the batch is a single ``presorted`` multi-range sweep.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..core.paths import Path
from .store import NodeId, XMLDatabase
from .xpath import XPath, _Step, _label_matches, base_label

__all__ = ["AXES", "axis_ids", "descendants_by_label", "evaluate_xpath", "evaluate_ids"]

#: Every axis :func:`axis_ids` answers, all via interval predicates.
AXES = (
    "child",
    "descendant",
    "descendant-or-self",
    "parent",
    "ancestor",
    "ancestor-or-self",
    "following-sibling",
    "preceding-sibling",
    "following",
    "preceding",
)


def axis_ids(
    db: XMLDatabase,
    node_id: NodeId,
    axis: str,
    label: Optional[str] = None,
) -> List[NodeId]:
    """Node ids on ``axis`` from ``node_id`` in document order,
    optionally restricted to a (base) label — each a range scan over the
    encoding indexes."""
    if axis == "child":
        out = db.child_ids(node_id)
    elif axis == "descendant":
        if label is not None:
            return descendants_by_label(db, [node_id], label)
        out = db.descendant_ids(node_id)
    elif axis == "descendant-or-self":
        out = db.descendant_ids(node_id, or_self=True)
    elif axis == "parent":
        parent = db.parent_id(node_id)
        out = [] if parent is None else [parent]
    elif axis == "ancestor":
        out = list(reversed(db.ancestor_ids(node_id)))
    elif axis == "ancestor-or-self":
        out = list(reversed(db.ancestor_ids(node_id, or_self=True)))
    elif axis == "following-sibling":
        out = db.following_sibling_ids(node_id)
    elif axis == "preceding-sibling":
        out = db.preceding_sibling_ids(node_id)
    elif axis == "following":
        out = db.following_ids(node_id)
    elif axis == "preceding":
        out = db.preceding_ids(node_id)
    else:
        raise ValueError(f"unknown axis {axis!r}")
    if label is not None:
        out = [
            nid
            for nid in out
            if db.label_of(nid) == label or base_label(db.label_of(nid)) == label
        ]
    return out


def _staircase(db: XMLDatabase, frontier: List[NodeId]) -> List[NodeId]:
    """Drop context nodes nested inside an earlier one (pre-ordered
    input): their descendant windows are subsumed, so the survivors'
    windows are pairwise disjoint and ascending — the staircase."""
    kept: List[NodeId] = []
    horizon = -1
    for nid in frontier:
        pre, post = db.interval(nid)
        if pre > horizon:
            kept.append(nid)
            horizon = post
    return kept


def descendants_by_label(
    db: XMLDatabase, roots: List[NodeId], label: str
) -> List[NodeId]:
    """All descendants of any root carrying (base) ``label``, in document
    order: one presorted multi-range sweep of the ``(label, pre)`` index
    over the staircase-pruned root windows."""
    ranges = []
    base = base_label(label)
    for nid in _staircase(db, roots):
        pre, post = db.interval(nid)
        ranges.append(((base, pre), (base, post), False, False))
    db.access_counts["multi_range_scan"] += 1
    out = list(db._label_index.multi_range(ranges, presorted=True))
    if base != label:
        out = [nid for nid in out if db.label_of(nid) == label]
    db.charge_axis(len(out))
    return out


def _descendant_step(
    db: XMLDatabase, frontier: List[NodeId], step: _Step
) -> List[NodeId]:
    roots = _staircase(db, frontier)
    ranges = []
    if step.label is not None:
        base = base_label(step.label)
        for nid in roots:
            pre, post = db.interval(nid)
            ranges.append(((base, pre), (base, post), False, False))
        db.access_counts["multi_range_scan"] += 1
        out = [
            nid
            for nid in db._label_index.multi_range(ranges, presorted=True)
            if _label_matches(step, db.label_of(nid))
        ]
    else:
        for nid in roots:
            pre, post = db.interval(nid)
            ranges.append((((pre,), (post,), False, False)))
        db.access_counts["multi_range_scan"] += 1
        out = list(db._pre_index.multi_range(ranges, presorted=True))
    db.charge_axis(len(out))
    return out


def _child_step(db: XMLDatabase, frontier: List[NodeId], step: _Step) -> List[NodeId]:
    by_level: Dict[int, List[NodeId]] = {}
    for nid in frontier:
        by_level.setdefault(db.level_of(nid), []).append(nid)
    hits: List[Tuple[int, NodeId]] = []
    for level, nids in sorted(by_level.items()):
        ranges = []
        for nid in nids:
            pre, post = db.interval(nid)
            ranges.append(((level + 1, pre), (level + 1, post), False, False))
        db.access_counts["multi_range_scan"] += 1
        for cid in db._level_index.multi_range(ranges, presorted=True):
            node = db._nodes[cid]
            if step.label is None or _label_matches(step, node.label):
                hits.append((node.pre, cid))
    hits.sort()
    db.charge_axis(len(hits))
    return [cid for _pre, cid in hits]


def _passes_predicate(db: XMLDatabase, node_id: NodeId, step: _Step) -> bool:
    child_label, wanted = step.predicate  # type: ignore[misc]
    child = db._child_node(db._node(node_id), child_label)
    return child is not None and child.value == wanted


def evaluate_ids(db: XMLDatabase, xpath: XPath) -> List[NodeId]:
    """Matching node ids in document order, every step an index scan."""
    frontier: List[NodeId] = [db.ROOT_ID]
    for step in xpath.steps:
        if not frontier:
            return []
        if step.descendant:
            frontier = _descendant_step(db, frontier, step)
        else:
            frontier = _child_step(db, frontier, step)
        if step.predicate is not None:
            frontier = [nid for nid in frontier if _passes_predicate(db, nid, step)]
    return frontier


def evaluate_xpath(db: XMLDatabase, xpath: XPath) -> List[Path]:
    """Matching locations, sorted — sibling rank order *is* sorted label
    order, so document (pre) order coincides with ``Path.sort_key``
    order and no final sort is needed."""
    return db.paths_of(evaluate_ids(db, xpath))
