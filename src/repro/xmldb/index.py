"""Element-label index for the XML store, built on the storage engine's
blocked :class:`~repro.storage.index.OrderedIndex`.

Native XML databases (Timber among them) keep element indexes so that
descendant queries (``//interaction``) need not walk the whole tree.
:class:`ElementIndex` maintains a ``(label,) → node id`` ordered index
incrementally as an observer of an :class:`~repro.xmldb.store.
XMLDatabase`, and :func:`evaluate_indexed` runs the XPath subset against
the store using the index for descendant steps.

Until PR 3 the index was a hand-rolled ``dict[str, set]``; it now reuses
the storage layer's index objects so all three layers (relational
tables, XML view, datalog facts) share one index implementation, one
maintenance path, and one bulk-build entry point (see
``docs/ARCHITECTURE.md``).  Lookups are blocked range scans, label
enumeration streams the index in order, and the initial build over an
already-populated store is a single sort-then-chunk
:meth:`~repro.storage.index.OrderedIndex.bulk_build`.

Keyed edge labels (``interaction{3}``) index under their *base* label
(``interaction``), so ``//interaction`` finds every keyed instance.
"""

from __future__ import annotations

from typing import Iterator, List, Set

from ..core.paths import Path
from ..storage.index import OrderedIndex
from .store import NodeId, XMLDatabase
from .xpath import XPath, base_label

__all__ = ["ElementIndex", "evaluate_indexed", "base_label"]


class ElementIndex:
    """``(label,) → node ids``, kept in sync with the store via its hooks.

    The entries live in a storage-layer :class:`OrderedIndex` keyed by
    the one-column tuple ``(base_label,)`` with the node id in the row-id
    slot — exactly the shape a relational secondary index has, so every
    lifecycle operation (bulk build, incremental maintenance, ordered
    streaming) is inherited rather than re-implemented.
    """

    def __init__(self, db: XMLDatabase) -> None:
        self.db = db
        self._index = OrderedIndex(f"{db.name}_labels")
        self._rebuild()
        db.add_observer(self)

    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        """Bulk-build the index from the store's current contents (one
        sort over all edges — the O(n log n) initial-population path)."""
        entries = []
        for path, _value in self.db.iter_paths():
            if path.is_root:
                continue
            entries.append(((base_label(path.last),), self.db.resolve(path)))
        self._index = OrderedIndex.bulk_build(self._index.name, entries)

    # observer hooks ----------------------------------------------------
    def node_added(self, node_id: NodeId, label: str) -> None:
        self._index.insert((base_label(label),), node_id)

    def node_removed(self, node_id: NodeId, label: str) -> None:
        self._index.delete((base_label(label),), node_id)

    # ------------------------------------------------------------------
    def lookup(self, label: str) -> Set[NodeId]:
        """Node ids whose (base) edge label is ``label``."""
        return self._index.lookup((label,))

    def lookup_iter(self, label: str) -> Iterator[NodeId]:
        """Node ids for ``label``, streamed in ascending id order
        without materializing the set."""
        return self._index.lookup_iter((label,))

    def labels(self) -> List[str]:
        """All distinct (base) labels, sorted — a streaming pass over
        the ordered index, not a dict-keys copy."""
        out: List[str] = []
        for (label,), _node_id in self._index.items():
            if not out or out[-1] != label:
                out.append(label)
        return out

    def count(self, label: str) -> int:
        """Number of live nodes under ``label`` (blocked range scan)."""
        return sum(1 for _ in self._index.lookup_iter((label,)))

    def __len__(self) -> int:
        return len(self._index)


def evaluate_indexed(
    db: XMLDatabase, index: ElementIndex, expression: str
) -> List[Path]:
    """Evaluate an XPath-subset expression against the store.

    Descendant steps (``//label``) resolve through the element index —
    candidate node ids come straight from the index (via
    :meth:`XPath.anchor_label`), then each candidate's unique path is
    matched against the full expression.  Expressions without a concrete
    descendant label fall back to the generic tree evaluation."""
    xpath = XPath(expression)
    anchor = xpath.anchor_label()
    if anchor is None:
        return xpath.evaluate(db.subtree(Path()))

    results: Set[Path] = set()
    tree = None
    for node_id in index.lookup_iter(anchor):
        path = db.path_of(node_id)
        # candidate paths that structurally match contribute; predicates
        # still need node content, so check against the exported subtree
        if not xpath.matches(path):
            # the anchor may be an inner step; try every extension of the
            # candidate path by evaluating below it only when the prefix
            # could still match (cheap reject)
            continue
        if any(step.predicate is not None for step in xpath.steps):
            if tree is None:
                tree = db.subtree(Path())
            if path not in set(xpath.evaluate(tree)):
                continue
        results.add(path)
    # anchored evaluation misses matches where the anchor step is not the
    # final step; fall back for those shapes
    if xpath.steps and (xpath.steps[-1].descendant is False or xpath.steps[-1].label != anchor):
        last = xpath.steps[-1]
        if last.label != anchor:
            tree = tree if tree is not None else db.subtree(Path())
            results.update(xpath.evaluate(tree))
    return sorted(results, key=Path.sort_key)
