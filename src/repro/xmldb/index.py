"""Element-label index for the XML store.

Native XML databases (Timber among them) keep element indexes so that
descendant queries (``//interaction``) need not walk the whole tree.
:class:`ElementIndex` maintains label → node-id sets incrementally as an
observer of an :class:`~repro.xmldb.store.XMLDatabase`, and
:func:`evaluate_indexed` runs the XPath subset against the store using
the index for descendant steps.

Keyed edge labels (``interaction{3}``) index under their *base* label
(``interaction``), so ``//interaction`` finds every keyed instance.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set

from ..core.paths import Path
from .store import NodeId, XMLDatabase
from .xpath import XPath, base_label

__all__ = ["ElementIndex", "evaluate_indexed", "base_label"]


class ElementIndex:
    """label -> node ids, kept in sync with the store via its hooks."""

    def __init__(self, db: XMLDatabase) -> None:
        self.db = db
        self._by_label: Dict[str, Set[NodeId]] = {}
        self._rebuild()
        db.add_observer(self)

    # ------------------------------------------------------------------
    def _rebuild(self) -> None:
        self._by_label.clear()
        for path, _value in self.db.iter_paths():
            if path.is_root:
                continue
            node_id = self.db.resolve(path)
            self._by_label.setdefault(base_label(path.last), set()).add(node_id)

    # observer hooks ----------------------------------------------------
    def node_added(self, node_id: NodeId, label: str) -> None:
        self._by_label.setdefault(base_label(label), set()).add(node_id)

    def node_removed(self, node_id: NodeId, label: str) -> None:
        bucket = self._by_label.get(base_label(label))
        if bucket is not None:
            bucket.discard(node_id)
            if not bucket:
                del self._by_label[base_label(label)]

    # ------------------------------------------------------------------
    def lookup(self, label: str) -> Set[NodeId]:
        """Node ids whose (base) edge label is ``label``."""
        return set(self._by_label.get(label, ()))

    def labels(self) -> List[str]:
        return sorted(self._by_label)

    def count(self, label: str) -> int:
        return len(self._by_label.get(label, ()))


def evaluate_indexed(
    db: XMLDatabase, index: ElementIndex, expression: str
) -> List[Path]:
    """Evaluate an XPath-subset expression against the store.

    Descendant steps (``//label``) resolve through the element index —
    candidate node ids come straight from the index, then each
    candidate's unique path is matched against the full expression.
    Expressions without a concrete descendant label fall back to the
    generic tree evaluation."""
    xpath = XPath(expression)
    anchor: Optional[str] = None
    for step in xpath.steps:
        if step.descendant and step.label is not None:
            anchor = step.label
            break
    if anchor is None:
        return xpath.evaluate(db.subtree(Path()))

    results: Set[Path] = set()
    tree = None
    for node_id in index.lookup(anchor):
        path = db.path_of(node_id)
        # candidate paths that structurally match contribute; predicates
        # still need node content, so check against the exported subtree
        if not xpath.matches(path):
            # the anchor may be an inner step; try every extension of the
            # candidate path by evaluating below it only when the prefix
            # could still match (cheap reject)
            continue
        if any(step.predicate is not None for step in xpath.steps):
            if tree is None:
                tree = db.subtree(Path())
            if path not in set(xpath.evaluate(tree)):
                continue
        results.add(path)
    # anchored evaluation misses matches where the anchor step is not the
    # final step; fall back for those shapes
    if xpath.steps and (xpath.steps[-1].descendant is False or xpath.steps[-1].label != anchor):
        last = xpath.steps[-1]
        if last.label != anchor:
            tree = tree if tree is not None else db.subtree(Path())
            results.update(xpath.evaluate(tree))
    return sorted(results, key=Path.sort_key)
