"""Element-label index for the XML store — a thin view over the store's
``(base_label, pre)`` interval-encoding index.

Native XML databases (Timber among them) keep element indexes so that
descendant queries (``//interaction``) need not walk the whole tree.
Until PR 9 :class:`ElementIndex` *maintained its own* ``(label,) → node
id`` ordered index as a store observer; the interval encoding
(:mod:`repro.xmldb.store`) now keeps a ``(base_label, pre)``
:class:`~repro.storage.index.OrderedIndex` as part of the store itself,
so the element index degenerates to a read-only view: no duplicate
maintenance path, no rebuild, nothing to desynchronize.  Lookups are
blocked range scans of the shared index, streamed in document (``pre``)
order.

Keyed edge labels (``interaction{3}``) index under their *base* label
(``interaction``), so ``//interaction`` finds every keyed instance.

:func:`evaluate_indexed` runs the XPath subset against the store by
compiling every step to interval range/multi-range scans
(:mod:`repro.xmldb.axes`) — descendant steps are staircase-pruned
multi-range sweeps rather than anchor-label candidate filtering.
"""

from __future__ import annotations

from typing import Iterator, List, Set

from ..core.paths import Path
from ..storage.index import MAX_KEY, MIN_KEY
from .store import NodeId, XMLDatabase
from .xpath import XPath, base_label

__all__ = ["ElementIndex", "evaluate_indexed", "base_label"]


class ElementIndex:
    """``(label,) → node ids``, answered straight off the store's
    ``(base_label, pre)`` encoding index.

    The class survives as the stable lookup API (and the shape a
    relational secondary index has); since the store now owns the index,
    every lifecycle event — bulk build, incremental maintenance,
    renumber rebuilds — is the store's, and this view can never lag it.
    """

    def __init__(self, db: XMLDatabase) -> None:
        self.db = db

    # ------------------------------------------------------------------
    def lookup(self, label: str) -> Set[NodeId]:
        """Node ids whose (base) edge label is ``label``."""
        return set(self.lookup_iter(label))

    def lookup_iter(self, label: str) -> Iterator[NodeId]:
        """Node ids for ``label``, streamed in document (pre) order
        without materializing the set."""
        self.db.access_counts["range_scan"] += 1
        return self.db._label_index.range((label, MIN_KEY), (label, MAX_KEY))

    def labels(self) -> List[str]:
        """All distinct (base) labels, sorted — a streaming pass over
        the ordered index, not a dict-keys copy."""
        out: List[str] = []
        for (label, _pre), _node_id in self.db._label_index.items():
            if not out or out[-1] != label:
                out.append(label)
        return out

    def count(self, label: str) -> int:
        """Number of live nodes under ``label`` (blocked range scan)."""
        return sum(1 for _ in self.lookup_iter(label))

    def __len__(self) -> int:
        return len(self.db._label_index)


def evaluate_indexed(
    db: XMLDatabase, index: ElementIndex, expression: str
) -> List[Path]:
    """Evaluate an XPath-subset expression against the store.

    Every step — child, descendant, wildcard, predicate — compiles to
    interval predicates over the encoding indexes
    (:meth:`XPath.evaluate_store`); there is no anchor-label special
    case and no full-tree fallback any more.  ``index`` is accepted for
    API compatibility (it views the same store index the evaluation
    scans)."""
    return XPath(expression).evaluate_store(db)
