"""Fully-keyed XML views ("Keys for XML", Buneman et al. 2002).

Raw XML identifies repeated elements by position, which is fragile under
updates; the paper instead assumes a *keyed* view in which a sequence of
edge labels identifies at most one node.  A :class:`KeySpec` declares,
for elements with a given label at a given depth pattern, which
attribute or child element provides the key; :func:`keyed_view` rewrites
an element tree into a keyed :class:`~repro.core.tree.Tree`:

* a keyed element ``<protein id="P1">`` becomes the edge
  ``protein{P1}``;
* an *unkeyed* repeated element falls back to a positional key
  ``label{3}`` (the paper's ``Citation{3}/Title`` example);
* attributes become leaf children prefixed with ``@``;
* text content of a leaf element becomes its value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple
from xml.etree import ElementTree

from ..core.paths import Path
from ..core.tree import Tree

__all__ = ["KeySpec", "keyed_view", "key_label"]


@dataclass(frozen=True)
class KeySpec:
    """Key declaration for elements labeled ``element``.

    ``field`` names the key source: ``"@attr"`` for an attribute,
    anything else for a child element whose text provides the key.
    ``path_prefix`` optionally restricts the spec to elements whose
    parent path matches (a plain label-sequence prefix).
    """

    element: str
    field: str
    path_prefix: Optional[Tuple[str, ...]] = None

    def applies_at(self, element: str, parents: Sequence[str]) -> bool:
        if element != self.element:
            return False
        if self.path_prefix is None:
            return True
        n = len(self.path_prefix)
        return tuple(parents[-n:]) == self.path_prefix if n <= len(parents) else False

    def key_of(self, node: ElementTree.Element) -> Optional[str]:
        if self.field.startswith("@"):
            return node.attrib.get(self.field[1:])
        child = node.find(self.field)
        if child is not None and child.text:
            return child.text.strip()
        return None


def key_label(label: str, key: "str | int") -> str:
    """Render a keyed edge label, e.g. ``protein{P1}`` or ``Citation{3}``."""
    return f"{label}{{{key}}}"


def _convert(
    node: ElementTree.Element,
    specs: Sequence[KeySpec],
    parents: List[str],
) -> Tree:
    children = list(node)
    text = (node.text or "").strip()
    if not children and not node.attrib:
        return Tree.leaf(_coerce(text)) if text else Tree.empty()

    out = Tree.empty()
    for attr, value in sorted(node.attrib.items()):
        out.add_child(f"@{attr}", Tree.leaf(_coerce(value)))
    if text:
        out.add_child("#text", Tree.leaf(_coerce(text)))

    # Group repeated child labels so positional fallback keys are stable.
    label_counts: Dict[str, int] = {}
    for child in children:
        label_counts[child.tag] = label_counts.get(child.tag, 0) + 1
    positions: Dict[str, int] = {}
    parents.append(node.tag)
    try:
        for child in children:
            label = child.tag
            key: Optional[str] = None
            for spec in specs:
                if spec.applies_at(label, parents):
                    key = spec.key_of(child)
                    break
            if key is not None:
                edge = key_label(label, key)
            elif label_counts[label] > 1:
                positions[label] = positions.get(label, 0) + 1
                edge = key_label(label, positions[label])
            else:
                edge = label
            out.add_child(edge, _convert(child, specs, parents))
    finally:
        parents.pop()
    return out


def _coerce(text: str):
    """Interpret numeric-looking text as numbers (field values in
    scientific databases are frequently numeric)."""
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


def keyed_view(xml_text: str, specs: Sequence[KeySpec] = ()) -> Tree:
    """Parse XML text and return its fully-keyed tree view.

    >>> tree = keyed_view(
    ...     '<db><protein id="P1"><name>ABC1</name></protein></db>',
    ...     [KeySpec("protein", "@id")],
    ... )
    >>> tree.resolve("protein{P1}/name").value
    'ABC1'
    """
    root = ElementTree.fromstring(xml_text)
    wrapper = Tree.empty()
    converted = _convert(root, list(specs), [])
    # the root element itself is the database root; its children hang
    # directly off the view root
    for label, child in converted.children.items():
        wrapper.children[label] = child
    if converted.is_leaf_value:
        wrapper.set_value(converted.value)
    return wrapper
