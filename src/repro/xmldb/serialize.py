"""Round-trip between keyed trees and an XML text form.

``tree_to_xml`` renders a keyed tree back to XML (keyed edges
``label{key}`` become elements with a ``key`` attribute; ``@attr`` leaves
become attributes), used for export and size reporting.  ``tree_from_xml``
is a convenience over :func:`repro.xmldb.keys.keyed_view`.
"""

from __future__ import annotations

import re
from typing import List, Sequence
from xml.sax.saxutils import escape, quoteattr

from ..core.tree import Tree
from .keys import KeySpec, keyed_view

__all__ = ["tree_from_xml", "tree_to_xml"]

_KEYED_RE = re.compile(r"^(?P<label>.+)\{(?P<key>[^{}]*)\}$")


def tree_from_xml(xml_text: str, specs: Sequence[KeySpec] = ()) -> Tree:
    """Parse XML text into its fully-keyed tree view."""
    return keyed_view(xml_text, specs)


def tree_to_xml(tree: Tree, root_tag: str = "db", indent: int = 0) -> str:
    """Render a keyed tree as XML text.

    Iterative (explicit work stack, closing tags pushed as sentinel
    frames) so arbitrarily deep trees — deep copy chains are routine in
    curated databases — cannot exhaust the Python recursion limit, the
    same treatment ``XMLDatabase.iter_paths``/``_export`` got."""
    lines: List[str] = []
    # frame: (tree, tag, depth) to open, or (None, closing_line, _) sentinel
    stack: List[tuple] = [(tree, root_tag, indent)]
    while stack:
        node, tag, depth = stack.pop()
        if node is None:
            lines.append(tag)
            continue
        _render_node(node, tag, depth, lines, stack)
    return "\n".join(lines)


def _render_node(
    tree: Tree, tag: str, depth: int, lines: List[str], stack: List[tuple]
) -> None:
    pad = "  " * depth
    match = _KEYED_RE.match(tag)
    attrs = ""
    if match:
        tag = match.group("label")
        attrs = f" key={quoteattr(match.group('key'))}"
    if not tag.isidentifier():
        tag = "node"

    attr_children = {
        label: child
        for label, child in tree.children.items()
        if label.startswith("@") and child.is_leaf_value
    }
    for label, child in sorted(attr_children.items()):
        attrs += f" {label[1:]}={quoteattr(str(child.value))}"

    plain_children = [
        (label, child)
        for label, child in sorted(tree.children.items())
        if label not in attr_children and label != "#text"
    ]
    text = None
    if tree.is_leaf_value:
        text = str(tree.value)
    elif tree.has_child("#text"):
        text = str(tree.child("#text").value)

    if not plain_children and text is None:
        lines.append(f"{pad}<{tag}{attrs}/>")
        return
    if not plain_children:
        lines.append(f"{pad}<{tag}{attrs}>{escape(text)}</{tag}>")
        return
    lines.append(f"{pad}<{tag}{attrs}>")
    if text is not None:
        lines.append(f"{pad}  {escape(text)}")
    stack.append((None, f"{pad}</{tag}>", depth))
    for label, child in reversed(plain_children):
        stack.append((child, label, depth + 1))
