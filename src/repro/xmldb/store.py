"""The node store at the heart of the XML database.

Unlike the plain :class:`~repro.core.tree.Tree` (a transient value), the
store keeps every node in a flat table keyed by a stable
:class:`NodeId`, with parent pointers and per-parent keyed child maps —
the shape of a native XML database's node storage.  Updates allocate and
free node ids; byte accounting mirrors a simple on-disk node record
layout (id, parent id, label, optional value).

The store's public update API (``add_node`` / ``delete_node`` /
``paste_node``) is intentionally the Figure 6 target-database contract,
so wrapping it for the editor is trivial.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..core.paths import Path
from ..core.tree import Tree, Value, value_size

__all__ = ["NodeId", "XMLDatabase", "XMLDBError"]

NodeId = int


class XMLDBError(Exception):
    """Raised for invalid node-store operations."""


class _Node:
    __slots__ = ("node_id", "parent", "label", "value", "children")

    def __init__(
        self,
        node_id: NodeId,
        parent: Optional[NodeId],
        label: str,
        value: Value = None,
    ) -> None:
        self.node_id = node_id
        self.parent = parent
        self.label = label
        self.value = value
        self.children: Dict[str, NodeId] = {}

    def record_bytes(self) -> int:
        # id (8) + parent (8) + label length header (2) + label + value
        return 18 + len(self.label.encode("utf-8")) + value_size(self.value)


class XMLDatabase:
    """A keyed node store with stable node identifiers."""

    ROOT_ID: NodeId = 0

    def __init__(self, name: str = "xmldb") -> None:
        self.name = name
        self._nodes: Dict[NodeId, _Node] = {
            self.ROOT_ID: _Node(self.ROOT_ID, None, "")
        }
        self._next_id: NodeId = 1
        self._byte_size = self._nodes[self.ROOT_ID].record_bytes()
        self._observers: List[object] = []

    # ------------------------------------------------------------------
    # Observers (secondary indexes subscribe to node churn)
    # ------------------------------------------------------------------
    def add_observer(self, observer: object) -> None:
        """Register an observer with ``node_added(id, label)`` /
        ``node_removed(id, label)`` hooks (e.g. an element index)."""
        self._observers.append(observer)

    def remove_observer(self, observer: object) -> None:
        self._observers.remove(observer)

    def _notify_added(self, node_id: NodeId, label: str) -> None:
        for observer in self._observers:
            observer.node_added(node_id, label)

    def _notify_removed(self, node_id: NodeId, label: str) -> None:
        for observer in self._observers:
            observer.node_removed(node_id, label)

    # ------------------------------------------------------------------
    # Node addressing
    # ------------------------------------------------------------------
    def resolve(self, path: "Path | str") -> NodeId:
        """The node id at ``path``; raises if absent."""
        node_id = self.lookup(path)
        if node_id is None:
            raise XMLDBError(f"{self.name}: no node at {Path.of(path)}")
        return node_id

    def lookup(self, path: "Path | str") -> Optional[NodeId]:
        node = self._nodes[self.ROOT_ID]
        for label in Path.of(path):
            child_id = node.children.get(label)
            if child_id is None:
                return None
            node = self._nodes[child_id]
        return node.node_id

    def path_of(self, node_id: NodeId) -> Path:
        """The (unique) path addressing a node."""
        labels: List[str] = []
        node = self._node(node_id)
        while node.parent is not None:
            labels.append(node.label)
            node = self._nodes[node.parent]
        return Path(reversed(labels))

    def _node(self, node_id: NodeId) -> _Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise XMLDBError(f"{self.name}: dangling node id {node_id}") from None

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def value_at(self, path: "Path | str") -> Value:
        return self._node(self.resolve(path)).value

    def children_of(self, node_id: NodeId) -> Dict[str, NodeId]:
        return dict(self._node(node_id).children)

    def contains(self, path: "Path | str") -> bool:
        return self.lookup(path) is not None

    def subtree(self, path: "Path | str") -> Tree:
        """Export the subtree at ``path`` as a value tree."""
        return self._export(self.resolve(path))

    def _export(self, node_id: NodeId) -> Tree:
        node = self._node(node_id)
        tree = Tree(node.value)
        for label in sorted(node.children):
            tree.children[label] = self._export(node.children[label])
        return tree

    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def byte_size(self) -> int:
        """Approximate on-disk size of the node table."""
        return self._byte_size

    def iter_paths(self) -> Iterator[Tuple[Path, Value]]:
        """All (path, value) pairs in deterministic order."""
        def walk(node_id: NodeId, prefix: Path) -> Iterator[Tuple[Path, Value]]:
            node = self._nodes[node_id]
            yield prefix, node.value
            for label in sorted(node.children):
                yield from walk(node.children[label], prefix.child(label))

        yield from walk(self.ROOT_ID, Path())

    # ------------------------------------------------------------------
    # Updates (the Figure 6 target contract)
    # ------------------------------------------------------------------
    def add_node(self, path: "Path | str", name: str, value: Value = None) -> NodeId:
        parent_id = self.resolve(path)
        parent = self._node(parent_id)
        if parent.value is not None:
            raise XMLDBError(f"{self.name}: cannot add a child under leaf {path}")
        if name in parent.children:
            raise XMLDBError(
                f"{self.name}: node {Path.of(path).child(name)} already exists"
            )
        node = _Node(self._next_id, parent_id, name, value)
        self._next_id += 1
        self._nodes[node.node_id] = node
        parent.children[name] = node.node_id
        self._byte_size += node.record_bytes()
        self._notify_added(node.node_id, name)
        return node.node_id

    def delete_node(self, path: "Path | str") -> Tree:
        path = Path.of(path)
        if path.is_root:
            raise XMLDBError(f"{self.name}: cannot delete the root")
        node_id = self.resolve(path)
        removed = self._export(node_id)
        parent = self._nodes[self._node_parent(node_id)]
        self._free(node_id)
        del parent.children[path.last]
        return removed

    def _node_parent(self, node_id: NodeId) -> NodeId:
        parent = self._node(node_id).parent
        if parent is None:
            raise XMLDBError(f"{self.name}: node {node_id} has no parent")
        return parent

    def _free(self, node_id: NodeId) -> None:
        node = self._node(node_id)
        for child_id in list(node.children.values()):
            self._free(child_id)
        self._byte_size -= node.record_bytes()
        del self._nodes[node_id]
        self._notify_removed(node_id, node.label)

    def paste_node(self, path: "Path | str", subtree: Tree) -> Optional[Tree]:
        """Install ``subtree`` at ``path`` (parent must exist), replacing
        existing content; returns the overwritten subtree, if any."""
        path = Path.of(path)
        if path.is_root:
            raise XMLDBError(f"{self.name}: cannot paste over the root")
        parent_id = self.resolve(path.parent)
        parent = self._node(parent_id)
        if parent.value is not None:
            raise XMLDBError(f"{self.name}: paste parent {path.parent} is a leaf")
        overwritten: Optional[Tree] = None
        existing = parent.children.get(path.last)
        if existing is not None:
            overwritten = self._export(existing)
            self._free(existing)
            del parent.children[path.last]
        self._import(parent_id, path.last, subtree)
        return overwritten

    def _import(self, parent_id: NodeId, label: str, subtree: Tree) -> NodeId:
        node = _Node(self._next_id, parent_id, label, subtree.value)
        self._next_id += 1
        self._nodes[node.node_id] = node
        self._nodes[parent_id].children[label] = node.node_id
        self._byte_size += node.record_bytes()
        self._notify_added(node.node_id, label)
        for child_label in sorted(subtree.children):
            self._import(node.node_id, child_label, subtree.children[child_label])
        return node.node_id

    # ------------------------------------------------------------------
    def load_tree(self, tree: Tree) -> None:
        """Bulk-load a value tree under the root (initial population)."""
        for label in sorted(tree.children):
            if self._nodes[self.ROOT_ID].children.get(label) is not None:
                raise XMLDBError(f"{self.name}: root already has child {label!r}")
            self._import(self.ROOT_ID, label, tree.children[label])
