"""The node store at the heart of the XML database.

Unlike the plain :class:`~repro.core.tree.Tree` (a transient value), the
store keeps every node in a flat table keyed by a stable
:class:`NodeId`, with parent pointers and per-parent keyed child maps —
the shape of a native XML database's node storage.  Updates allocate and
free node ids; byte accounting mirrors a simple on-disk node record
layout (id, parent id, label, optional value).

Since PR 9 every node additionally carries a maintained
``(pre, post, level)`` *interval encoding* — the XPath-accelerator
design: ``pre``/``post`` are ranks in one shared counter space such that

* a node's interval strictly nests inside its parent's
  (``parent.pre < node.pre`` and ``node.post < parent.post``),
* sibling intervals are disjoint and ordered by label
  (``left.post < right.pre`` whenever ``left.label < right.label``), and
* ``level`` is the node's depth (root = 0).

Document order (depth-first, children in sorted label order — the order
every export and :class:`~repro.xmldb.xpath.XPath` evaluation already
uses) is therefore exactly ascending ``pre`` order, and *descendant* is
interval containment: ``d`` is a descendant of ``a`` iff
``a.pre < d.pre < a.post``.  The encoding lives in three storage-layer
:class:`~repro.storage.index.OrderedIndex`es — keyed ``(pre,)``,
``(base_label, pre)`` and ``(level, pre)`` — so subtree export, path
reconstruction, containment checks and every XPath axis
(:mod:`repro.xmldb.axes`) are blocked index range / multi-range scans
instead of pointer-chasing tree walks.

Ranks are *gap-allocated*: fresh slots are spread through the gap
between the new node's interval neighbours (biased low on appends, high
on prepends, centered for interior inserts) so ``add_node`` /
``paste_node`` almost never disturb existing ranks.  When a gap is
exhausted the whole tree is renumbered with fresh gaps
(:meth:`XMLDatabase._renumber` — the one full-tree pass, analogous to
an index rebuild) and :attr:`XMLDatabase.structure_version` is bumped
so dependents holding cached ranks know to invalidate.

The store's public update API (``add_node`` / ``delete_node`` /
``paste_node``) is intentionally the Figure 6 target-database contract,
so wrapping it for the editor is trivial.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from ..core.paths import Path
from ..core.tree import Tree, Value, value_size
from ..storage.index import MIN_KEY, OrderedIndex
from .xpath import base_label

__all__ = ["NodeId", "XMLDatabase", "XMLDBError", "DEFAULT_SPACING"]

NodeId = int

#: Rank distance between consecutive slots after a renumber.  Gaps of
#: ``DEFAULT_SPACING - 1`` absorb that many interval endpoints before the
#: next renumber; Python ints are unbounded so generosity is free.
DEFAULT_SPACING = 1 << 16

#: Cap on the stride used when spreading fresh slots through a huge gap:
#: allocations hug their low/high neighbour at this pitch instead of
#: bisecting the whole gap, which keeps room for the (overwhelmingly
#: common) append-next-sibling pattern.
_APPEND_STRIDE = 1 << 8


class XMLDBError(Exception):
    """Raised for invalid node-store operations."""


class _Node:
    __slots__ = ("node_id", "parent", "label", "value", "children", "pre", "post", "level")

    def __init__(
        self,
        node_id: NodeId,
        parent: Optional[NodeId],
        label: str,
        value: Value = None,
    ) -> None:
        self.node_id = node_id
        self.parent = parent
        self.label = label
        self.value = value
        self.children: Dict[str, NodeId] = {}
        self.pre = 0
        self.post = 0
        self.level = 0

    def record_bytes(self) -> int:
        # id (8) + parent (8) + label length header (2) + label + value
        return 18 + len(self.label.encode("utf-8")) + value_size(self.value)


class XMLDatabase:
    """A keyed node store with stable node identifiers."""

    ROOT_ID: NodeId = 0

    def __init__(self, name: str = "xmldb", *, spacing: int = DEFAULT_SPACING) -> None:
        if spacing < 4:
            raise XMLDBError(f"{name}: spacing must be >= 4, got {spacing}")
        self.name = name
        self._spacing = spacing
        root = _Node(self.ROOT_ID, None, "")
        root.pre, root.post, root.level = 0, 2 * spacing, 0
        self._nodes: Dict[NodeId, _Node] = {self.ROOT_ID: root}
        self._next_id: NodeId = 1
        self._byte_size = root.record_bytes()
        self._observers: List[object] = []
        #: bumped whenever a renumber reassigns ranks; anything caching
        #: pre/post values must revalidate against this counter
        self.structure_version = 0
        #: encoding access accounting (the xmldb analogue of
        #: ``Table.access_counts``) — tests assert hot paths are index
        #: scans, not per-node tree walks
        self.access_counts: Dict[str, int] = {
            "range_scan": 0,
            "multi_range_scan": 0,
            "ancestor_probe": 0,
            "renumber": 0,
        }
        self._pre_index = OrderedIndex(f"{name}_pre")
        self._label_index = OrderedIndex(f"{name}_label")
        self._level_index = OrderedIndex(f"{name}_level")
        self._pre_index.insert((root.pre,), root.node_id)
        self._level_index.insert((root.level, root.pre), root.node_id)
        self._clock = None
        self._cost_model = None

    # ------------------------------------------------------------------
    # Virtual-clock accounting (axis scans are charged like any other
    # store query when the database participates in an experiment)
    # ------------------------------------------------------------------
    def attach_clock(self, clock, cost_model) -> None:
        """Charge axis scans to ``clock`` under the ``xml.axis_scan``
        category using ``cost_model.query_cost``."""
        self._clock = clock
        self._cost_model = cost_model

    def charge_axis(self, rows: int) -> None:
        if self._clock is not None:
            self._clock.charge("xml.axis_scan", self._cost_model.query_cost(rows))

    # ------------------------------------------------------------------
    # Observers (secondary structures subscribe to node churn)
    # ------------------------------------------------------------------
    def add_observer(self, observer: object) -> None:
        """Register an observer with ``node_added(id, label)`` /
        ``node_removed(id, label)`` hooks (e.g. an element index)."""
        self._observers.append(observer)

    def remove_observer(self, observer: object) -> None:
        self._observers.remove(observer)

    def _notify_added(self, node_id: NodeId, label: str) -> None:
        for observer in self._observers:
            observer.node_added(node_id, label)

    def _notify_removed(self, node_id: NodeId, label: str) -> None:
        for observer in self._observers:
            observer.node_removed(node_id, label)

    # ------------------------------------------------------------------
    # Node addressing
    # ------------------------------------------------------------------
    def resolve(self, path: "Path | str") -> NodeId:
        """The node id at ``path``; raises if absent."""
        node_id = self.lookup(path)
        if node_id is None:
            raise XMLDBError(f"{self.name}: no node at {Path.of(path)}")
        return node_id

    def lookup(self, path: "Path | str") -> Optional[NodeId]:
        """Resolve a path by successive interval narrowing: each step is
        a ``(base_label, pre)`` range scan clamped to the current node's
        interval, filtered to direct children (``level + 1``) with the
        exact edge label."""
        node = self._nodes[self.ROOT_ID]
        for label in Path.of(path):
            child = self._child_node(node, label)
            if child is None:
                return None
            node = child
        return node.node_id

    def _child_node(self, parent: _Node, label: str) -> Optional[_Node]:
        base = base_label(label)
        self.access_counts["range_scan"] += 1
        for nid in self._label_index.range(
            (base, parent.pre), (base, parent.post), include_low=False, include_high=False
        ):
            node = self._nodes[nid]
            if node.level == parent.level + 1 and node.label == label:
                return node
        return None

    def path_of(self, node_id: NodeId) -> Path:
        """The (unique) path addressing a node, reconstructed from the
        encoding: each ancestor is the rank-predecessor probe at the
        next-shallower level (the last node at depth ``d - 1`` before
        ``pre`` in document order is necessarily the parent)."""
        labels: List[str] = []
        node = self._node(node_id)
        while node.level > 0:
            labels.append(node.label)
            node = self._parent_node(node)
        return Path(reversed(labels))

    def _parent_node(self, node: _Node) -> _Node:
        self.access_counts["ancestor_probe"] += 1
        for nid in self._level_index.range(
            (node.level - 1, MIN_KEY),
            (node.level - 1, node.pre),
            include_high=False,
            reverse=True,
        ):
            return self._nodes[nid]
        raise XMLDBError(f"{self.name}: node {node.node_id} has no parent")

    def paths_of(self, node_ids: List[NodeId]) -> List[Path]:
        """Paths for a document-ordered id list, reconstructed from the
        encoding in one batch: dense result sets ride a single stacked
        prefix scan of the ``(pre,)`` index, sparse ones use
        ancestor-predecessor probes with a shared memo (each distinct
        ancestor is probed once across the whole batch)."""
        if not node_ids:
            return []
        if len(node_ids) * 8 >= len(self._nodes):
            return self._paths_scan(node_ids)
        return self._paths_probe(node_ids)

    def _paths_scan(self, node_ids: List[NodeId]) -> List[Path]:
        want = set(node_ids)
        found: Dict[NodeId, Path] = {}
        prefixes: List[Path] = [Path()]
        hi_pre = self._node(node_ids[-1]).pre
        self.access_counts["range_scan"] += 1
        for nid in self._pre_index.range(None, (hi_pre,)):
            node = self._nodes[nid]
            if node.level == 0:
                path = Path()
            else:
                del prefixes[node.level:]
                path = prefixes[node.level - 1].child(node.label)
                prefixes.append(path)
            if nid in want:
                found[nid] = path
        return [found[nid] for nid in node_ids]

    def _paths_probe(self, node_ids: List[NodeId]) -> List[Path]:
        memo: Dict[NodeId, Path] = {self.ROOT_ID: Path()}
        out: List[Path] = []
        for nid in node_ids:
            chain: List[_Node] = []
            node = self._nodes[nid]
            while node.node_id not in memo:
                chain.append(node)
                node = self._parent_node(node)
            path = memo[node.node_id]
            for link in reversed(chain):
                path = path.child(link.label)
                memo[link.node_id] = path
            out.append(path)
        return out

    def _node(self, node_id: NodeId) -> _Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise XMLDBError(f"{self.name}: dangling node id {node_id}") from None

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def value_at(self, path: "Path | str") -> Value:
        return self._node(self.resolve(path)).value

    def children_of(self, node_id: NodeId) -> Dict[str, NodeId]:
        return dict(self._node(node_id).children)

    def contains(self, path: "Path | str") -> bool:
        return self.lookup(path) is not None

    def subtree(self, path: "Path | str") -> Tree:
        """Export the subtree at ``path`` as a value tree."""
        return self._export(self.resolve(path))

    def _export(self, node_id: NodeId) -> Tree:
        """One ``(pre,)`` range scan over the node's interval; the
        pre-ordered stream rebuilds the tree with an explicit level
        stack (no recursion, no pointer chasing)."""
        root = self._node(node_id)
        out = Tree(root.value)
        stack: List[Tuple[int, Tree]] = [(root.level, out)]
        self.access_counts["range_scan"] += 1
        for nid in self._pre_index.range(
            (root.pre,), (root.post,), include_low=False, include_high=False
        ):
            node = self._nodes[nid]
            while stack[-1][0] >= node.level:
                stack.pop()
            tree = Tree(node.value)
            stack[-1][1].children[node.label] = tree
            stack.append((node.level, tree))
        return out

    def node_count(self) -> int:
        return len(self._nodes)

    @property
    def byte_size(self) -> int:
        """Approximate on-disk size of the node table."""
        return self._byte_size

    def iter_paths(self) -> Iterator[Tuple[Path, Value]]:
        """All (path, value) pairs in document order — one full
        ``(pre,)`` index scan with an iterative prefix stack, so
        arbitrarily deep trees cannot exhaust the recursion limit."""
        self.access_counts["range_scan"] += 1
        prefixes: List[Path] = [Path()]
        for nid in self._pre_index.range(None, None):
            node = self._nodes[nid]
            if node.level == 0:
                yield Path(), node.value
                continue
            del prefixes[node.level:]
            path = prefixes[node.level - 1].child(node.label)
            prefixes.append(path)
            yield path, node.value

    def iter_paths_under(self, path: "Path | str") -> Iterator[Tuple[Path, Value]]:
        """(path, value) pairs for the node at ``path`` and everything
        below it, in document order (one interval range scan)."""
        base = Path.of(path)
        root = self._node(self.resolve(base))
        yield base, root.value
        self.access_counts["range_scan"] += 1
        prefixes: List[Path] = [base]
        for nid in self._pre_index.range(
            (root.pre,), (root.post,), include_low=False, include_high=False
        ):
            node = self._nodes[nid]
            depth = node.level - root.level
            del prefixes[depth:]
            sub = prefixes[depth - 1].child(node.label)
            prefixes.append(sub)
            yield sub, node.value

    # ------------------------------------------------------------------
    # Axis primitives (document-order node ids via the encoding).  These
    # are the building blocks :mod:`repro.xmldb.axes` compiles XPath
    # steps onto; each is an index range scan, never a tree walk.
    # ------------------------------------------------------------------
    def interval(self, node_id: NodeId) -> Tuple[int, int]:
        node = self._node(node_id)
        return node.pre, node.post

    def level_of(self, node_id: NodeId) -> int:
        return self._node(node_id).level

    def label_of(self, node_id: NodeId) -> str:
        return self._node(node_id).label

    def value_of(self, node_id: NodeId) -> Value:
        return self._node(node_id).value

    def parent_id(self, node_id: NodeId) -> Optional[NodeId]:
        node = self._node(node_id)
        if node.level == 0:
            return None
        return self._parent_node(node).node_id

    def descendant_ids(self, node_id: NodeId, or_self: bool = False) -> List[NodeId]:
        node = self._node(node_id)
        self.access_counts["range_scan"] += 1
        out = [node_id] if or_self else []
        out.extend(
            self._pre_index.range(
                (node.pre,), (node.post,), include_low=False, include_high=False
            )
        )
        return out

    def child_ids(self, node_id: NodeId) -> List[NodeId]:
        node = self._node(node_id)
        self.access_counts["range_scan"] += 1
        return list(
            self._level_index.range(
                (node.level + 1, node.pre),
                (node.level + 1, node.post),
                include_low=False,
                include_high=False,
            )
        )

    def ancestor_ids(self, node_id: NodeId, or_self: bool = False) -> List[NodeId]:
        """Ancestors nearest-first (root last), via the level-predecessor
        staircase."""
        node = self._node(node_id)
        out = [node_id] if or_self else []
        while node.level > 0:
            node = self._parent_node(node)
            out.append(node.node_id)
        return out

    def following_sibling_ids(self, node_id: NodeId) -> List[NodeId]:
        node = self._node(node_id)
        if node.level == 0:
            return []
        parent = self._parent_node(node)
        self.access_counts["range_scan"] += 1
        return list(
            self._level_index.range(
                (node.level, node.post),
                (node.level, parent.post),
                include_low=False,
                include_high=False,
            )
        )

    def preceding_sibling_ids(self, node_id: NodeId) -> List[NodeId]:
        node = self._node(node_id)
        if node.level == 0:
            return []
        parent = self._parent_node(node)
        self.access_counts["range_scan"] += 1
        return list(
            self._level_index.range(
                (node.level, parent.pre),
                (node.level, node.pre),
                include_low=False,
                include_high=False,
            )
        )

    def following_ids(self, node_id: NodeId) -> List[NodeId]:
        """Document-order successors outside the subtree: ``pre > post``."""
        node = self._node(node_id)
        self.access_counts["range_scan"] += 1
        return list(self._pre_index.range((node.post,), None, include_low=False))

    def preceding_ids(self, node_id: NodeId) -> List[NodeId]:
        """Document-order predecessors that are not ancestors:
        ``pre < self.pre`` with the (few) open intervals filtered out."""
        node = self._node(node_id)
        self.access_counts["range_scan"] += 1
        out = []
        for nid in self._pre_index.range(None, (node.pre,), include_high=False):
            if self._nodes[nid].post < node.pre:
                out.append(nid)
        return out

    # ------------------------------------------------------------------
    # Encoding maintenance
    # ------------------------------------------------------------------
    def _index_add(self, node: _Node) -> None:
        self._pre_index.insert((node.pre,), node.node_id)
        self._level_index.insert((node.level, node.pre), node.node_id)
        if node.parent is not None:
            self._label_index.insert((base_label(node.label), node.pre), node.node_id)

    def _index_remove(self, node: _Node) -> None:
        self._pre_index.delete((node.pre,), node.node_id)
        self._level_index.delete((node.level, node.pre), node.node_id)
        if node.parent is not None:
            self._label_index.delete((base_label(node.label), node.pre), node.node_id)

    def _sibling_bounds(self, parent: _Node, label: str) -> Tuple[int, int, str]:
        """The open rank gap ``(lo, hi)`` a new child labelled ``label``
        must be allocated into, plus the placement bias: appends hug the
        low end (leaving headroom for more appends), prepends the high
        end, interior/first inserts center."""
        left: Optional[str] = None
        right: Optional[str] = None
        for sibling in parent.children:
            if sibling < label:
                if left is None or sibling > left:
                    left = sibling
            elif right is None or sibling < right:
                right = sibling
        lo = self._nodes[parent.children[left]].post if left is not None else parent.pre
        hi = self._nodes[parent.children[right]].pre if right is not None else parent.post
        if right is None and left is not None:
            bias = "low"
        elif left is None and right is not None:
            bias = "high"
        else:
            bias = "center"
        return lo, hi, bias

    @staticmethod
    def _alloc(lo: int, hi: int, count: int, bias: str) -> Optional[List[int]]:
        """``count`` fresh ranks strictly inside ``(lo, hi)``, or ``None``
        when the gap is exhausted (renumber trigger)."""
        space = hi - lo - 1
        if space < count:
            return None
        stride = min(space // (count + 1), _APPEND_STRIDE)
        if stride == 0:
            stride = 1
        run = stride * (count + 1)
        if bias == "low":
            start = lo
        elif bias == "high":
            start = hi - run
        else:
            start = lo + (hi - lo - run) // 2
        return [start + stride * (i + 1) for i in range(count)]

    def _alloc_span(self, parent: _Node, label: str, count: int) -> List[int]:
        lo, hi, bias = self._sibling_bounds(parent, label)
        slots = self._alloc(lo, hi, count, bias)
        if slots is None:
            self._renumber(min_slots=count)
            lo, hi, bias = self._sibling_bounds(parent, label)
            slots = self._alloc(lo, hi, count, bias)
            assert slots is not None, "renumber must open a large-enough gap"
        return slots

    def _renumber(self, min_slots: int = 0) -> None:
        """Reassign every rank with fresh gaps (one iterative DFS in
        document order), rebuild the three encoding indexes via
        ``bulk_build``, and bump :attr:`structure_version`."""
        spacing = max(self._spacing, min_slots + 2)
        root = self._nodes[self.ROOT_ID]
        value = 0
        root.pre, root.level = 0, 0
        stack: List[Tuple[_Node, Iterator[str]]] = [(root, iter(sorted(root.children)))]
        while stack:
            node, labels = stack[-1]
            advanced = False
            for label in labels:
                child = self._nodes[node.children[label]]
                value += spacing
                child.pre = value
                child.level = node.level + 1
                stack.append((child, iter(sorted(child.children))))
                advanced = True
                break
            if not advanced:
                value += spacing
                node.post = value
                stack.pop()
        nodes = self._nodes.values()
        self._pre_index = OrderedIndex.bulk_build(
            self._pre_index.name, [((n.pre,), n.node_id) for n in nodes]
        )
        self._level_index = OrderedIndex.bulk_build(
            self._level_index.name, [((n.level, n.pre), n.node_id) for n in nodes]
        )
        self._label_index = OrderedIndex.bulk_build(
            self._label_index.name,
            [
                ((base_label(n.label), n.pre), n.node_id)
                for n in nodes
                if n.parent is not None
            ],
        )
        self.structure_version += 1
        self.access_counts["renumber"] += 1

    # ------------------------------------------------------------------
    # Updates (the Figure 6 target contract)
    # ------------------------------------------------------------------
    def add_node(self, path: "Path | str", name: str, value: Value = None) -> NodeId:
        parent_id = self.resolve(path)
        parent = self._node(parent_id)
        if parent.value is not None:
            raise XMLDBError(f"{self.name}: cannot add a child under leaf {path}")
        if name in parent.children:
            raise XMLDBError(
                f"{self.name}: node {Path.of(path).child(name)} already exists"
            )
        pre, post = self._alloc_span(parent, name, 2)
        node = _Node(self._next_id, parent_id, name, value)
        node.pre, node.post, node.level = pre, post, parent.level + 1
        self._next_id += 1
        self._nodes[node.node_id] = node
        parent.children[name] = node.node_id
        self._byte_size += node.record_bytes()
        self._index_add(node)
        self._notify_added(node.node_id, name)
        return node.node_id

    def delete_node(self, path: "Path | str") -> Tree:
        path = Path.of(path)
        if path.is_root:
            raise XMLDBError(f"{self.name}: cannot delete the root")
        node_id = self.resolve(path)
        removed = self._export(node_id)
        node = self._nodes[node_id]
        parent = self._nodes[self._node_parent(node_id)]
        self._free_subtree(node)
        del parent.children[path.last]
        return removed

    def _node_parent(self, node_id: NodeId) -> NodeId:
        parent = self._node(node_id).parent
        if parent is None:
            raise XMLDBError(f"{self.name}: node {node_id} has no parent")
        return parent

    def _free_subtree(self, node: _Node) -> None:
        """Drop a node and all descendants: one interval scan collects
        the doomed ids, then each node (children before parents) is
        unindexed, unaccounted, deleted, and — crucially for observer
        consistency — individually announced via ``_notify_removed``."""
        self.access_counts["range_scan"] += 1
        doomed = [node.node_id]
        doomed.extend(
            self._pre_index.range(
                (node.pre,), (node.post,), include_low=False, include_high=False
            )
        )
        for nid in reversed(doomed):
            dead = self._nodes[nid]
            self._index_remove(dead)
            self._byte_size -= dead.record_bytes()
            del self._nodes[nid]
            self._notify_removed(nid, dead.label)

    def paste_node(self, path: "Path | str", subtree: Tree) -> Optional[Tree]:
        """Install ``subtree`` at ``path`` (parent must exist), replacing
        existing content; returns the overwritten subtree, if any."""
        path = Path.of(path)
        if path.is_root:
            raise XMLDBError(f"{self.name}: cannot paste over the root")
        parent_id = self.resolve(path.parent)
        parent = self._node(parent_id)
        if parent.value is not None:
            raise XMLDBError(f"{self.name}: paste parent {path.parent} is a leaf")
        overwritten: Optional[Tree] = None
        existing = parent.children.get(path.last)
        if existing is not None:
            overwritten = self._export(existing)
            self._free_subtree(self._nodes[existing])
            del parent.children[path.last]
        self._import(parent_id, path.last, subtree)
        return overwritten

    def _import(self, parent_id: NodeId, label: str, subtree: Tree) -> NodeId:
        """Graft a value tree: ranks for the whole subtree are allocated
        up front (2 per node, renumbering once if the gap is too small),
        then consumed by an iterative DFS — entry takes ``pre``, exit
        takes ``post`` — which yields properly nested intervals."""
        parent = self._node(parent_id)
        slots = iter(self._alloc_span(parent, label, 2 * _tree_size(subtree)))

        def make(under: _Node, name: str, tree: Tree) -> _Node:
            node = _Node(self._next_id, under.node_id, name, tree.value)
            self._next_id += 1
            node.level = under.level + 1
            node.pre = next(slots)
            self._nodes[node.node_id] = node
            under.children[name] = node.node_id
            self._byte_size += node.record_bytes()
            self._index_add(node)
            self._notify_added(node.node_id, name)
            return node

        top = make(parent, label, subtree)
        stack: List[Tuple[_Node, Tree, Iterator[str]]] = [
            (top, subtree, iter(sorted(subtree.children)))
        ]
        while stack:
            node, tree, labels = stack[-1]
            advanced = False
            for child_label in labels:
                child_tree = tree.children[child_label]
                child = make(node, child_label, child_tree)
                stack.append((child, child_tree, iter(sorted(child_tree.children))))
                advanced = True
                break
            if not advanced:
                node.post = next(slots)
                stack.pop()
        return top.node_id

    # ------------------------------------------------------------------
    def load_tree(self, tree: Tree) -> None:
        """Bulk-load a value tree under the root (initial population)."""
        for label in sorted(tree.children):
            if self._nodes[self.ROOT_ID].children.get(label) is not None:
                raise XMLDBError(f"{self.name}: root already has child {label!r}")
            self._import(self.ROOT_ID, label, tree.children[label])

    # ------------------------------------------------------------------
    # Invariant checking (tests / debugging)
    # ------------------------------------------------------------------
    def check_encoding(self) -> None:
        """Validate the interval invariants and index consistency; raises
        :class:`XMLDBError` on the first violation."""

        def fail(message: str) -> None:
            raise XMLDBError(f"{self.name}: encoding invariant violated: {message}")

        count = len(self._nodes)
        if len(self._pre_index) != count:
            fail(f"(pre,) index has {len(self._pre_index)} entries for {count} nodes")
        if len(self._level_index) != count:
            fail(f"(level, pre) index has {len(self._level_index)} entries for {count} nodes")
        if len(self._label_index) != count - 1:
            fail(
                f"(label, pre) index has {len(self._label_index)} entries "
                f"for {count - 1} labelled nodes"
            )
        for node in self._nodes.values():
            if node.pre >= node.post:
                fail(f"node {node.node_id} has pre {node.pre} >= post {node.post}")
            if node.parent is not None:
                parent = self._nodes.get(node.parent)
                if parent is None:
                    fail(f"node {node.node_id} has dangling parent {node.parent}")
                if not (parent.pre < node.pre and node.post < parent.post):
                    fail(
                        f"node {node.node_id} interval ({node.pre}, {node.post}) not "
                        f"nested in parent ({parent.pre}, {parent.post})"
                    )
                if node.level != parent.level + 1:
                    fail(f"node {node.node_id} level {node.level} under level {parent.level}")
                if self._label_index.lookup((base_label(node.label), node.pre)) != {node.node_id}:
                    fail(f"(label, pre) entry missing/stale for node {node.node_id}")
            ordered = sorted(node.children)
            for left, right in zip(ordered, ordered[1:]):
                a = self._nodes[node.children[left]]
                b = self._nodes[node.children[right]]
                if a.post >= b.pre:
                    fail(
                        f"siblings {left!r}/{right!r} under {node.node_id} overlap: "
                        f"({a.pre}, {a.post}) vs ({b.pre}, {b.post})"
                    )
            if self._pre_index.lookup((node.pre,)) != {node.node_id}:
                fail(f"(pre,) entry missing/stale for node {node.node_id}")
            if self._level_index.lookup((node.level, node.pre)) != {node.node_id}:
                fail(f"(level, pre) entry missing/stale for node {node.node_id}")


def _tree_size(tree: Tree) -> int:
    """Node count of a value tree (iterative)."""
    count = 0
    stack = [tree]
    while stack:
        node = stack.pop()
        count += 1
        stack.extend(node.children.values())
    return count
