"""A small XPath-subset evaluator over keyed trees.

Supports the fragments the reproduction needs:

* child steps: ``a/b/c``;
* single-level wildcard: ``a/*/c`` (the paper's approximate-provenance
  patterns, Section 6);
* descendant-or-self: ``a//c``;
* leaf-equality predicates: ``a[b=3]/c`` (elements whose leaf child
  ``b`` holds 3);
* keyed-instance matching: a step label ``interaction`` matches the
  keyed edges ``interaction{1}``, ``interaction{2}``, ... produced by
  the fully-keyed views (the paper's ``Citation{3}`` addressing).

Evaluation returns the set of matching :class:`Path` locations, which is
what approximate provenance manipulates.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from ..core.paths import Path
from ..core.tree import Tree

__all__ = ["XPath", "XPathError", "base_label"]

_KEYED_RE = re.compile(r"^(?P<base>.+)\{[^{}]*\}$")


def base_label(label: str) -> str:
    """``interaction{3}`` -> ``interaction``; plain labels unchanged."""
    match = _KEYED_RE.match(label)
    return match.group("base") if match else label


class XPathError(ValueError):
    """Malformed XPath expression."""


@dataclass(frozen=True)
class _Step:
    label: Optional[str]  # None means wildcard '*'
    descendant: bool = False  # preceded by '//'
    predicate: Optional[Tuple[str, object]] = None  # (child label, value)


_PRED_RE = re.compile(r"^(?P<name>[^\[\]]+)(?:\[(?P<child>[^=\]]+)=(?P<value>[^\]]+)\])?$")


def _parse_value(text: str):
    text = text.strip()
    if text.startswith("'") and text.endswith("'"):
        return text[1:-1]
    if text.startswith('"') and text.endswith('"'):
        return text[1:-1]
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        return text


class XPath:
    """A compiled path expression.

    >>> xp = XPath("proteins/*/name")
    >>> [str(p) for p in xp.evaluate(Tree.from_dict(
    ...     {"proteins": {"P1": {"name": "ABC1"}, "P2": {"name": "CRP"}}}))]
    ['proteins/P1/name', 'proteins/P2/name']
    """

    def __init__(self, expression: str) -> None:
        self.expression = expression
        self.steps = self._parse(expression)

    @staticmethod
    def _parse(expression: str) -> List[_Step]:
        if not expression or expression == "/":
            return []
        text = expression.strip().lstrip("/")
        steps: List[_Step] = []
        descendant = expression.startswith("//")
        # split on '/', recognizing '//' as a descendant marker
        parts = text.split("/")
        index = 0
        while index < len(parts):
            part = parts[index]
            if part == "":
                # the gap from '//': next step is a descendant step
                descendant = True
                index += 1
                continue
            match = _PRED_RE.match(part)
            if match is None:
                raise XPathError(f"bad step {part!r} in {expression!r}")
            name = match.group("name").strip()
            predicate = None
            if match.group("child") is not None:
                predicate = (
                    match.group("child").strip(),
                    _parse_value(match.group("value")),
                )
            steps.append(
                _Step(
                    label=None if name == "*" else name,
                    descendant=descendant,
                    predicate=predicate,
                )
            )
            descendant = False
            index += 1
        return steps

    # ------------------------------------------------------------------
    def evaluate(self, tree: Tree) -> List[Path]:
        """All locations in ``tree`` matching this expression, sorted."""
        current: List[Tuple[Path, Tree]] = [(Path(), tree)]
        for step in self.steps:
            successors: List[Tuple[Path, Tree]] = []
            for path, node in current:
                candidates: Iterator[Tuple[Path, Tree]]
                if step.descendant:
                    candidates = (
                        (path.join(sub), descendant)
                        for sub, descendant in node.nodes()
                        if not sub.is_root
                    )
                else:
                    candidates = (
                        (path.child(label), child)
                        for label, child in sorted(node.children.items())
                    )
                for cand_path, cand_node in candidates:
                    if not _label_matches(step, cand_path.last):
                        continue
                    if step.predicate is not None:
                        child_label, wanted = step.predicate
                        if not cand_node.has_child(child_label):
                            continue
                        if cand_node.child(child_label).value != wanted:
                            continue
                    successors.append((cand_path, cand_node))
            current = successors
        paths = sorted({path for path, _node in current}, key=Path.sort_key)
        return paths

    def evaluate_store(self, db) -> List[Path]:
        """Evaluate against an :class:`~repro.xmldb.store.XMLDatabase`
        through the interval encoding (:mod:`repro.xmldb.axes`): every
        step — child or descendant, labelled or wildcard — is compiled
        to an index range/multi-range predicate instead of the
        level-by-level walk :meth:`evaluate` performs on value trees."""
        from .axes import evaluate_xpath

        return evaluate_xpath(db, self)

    def anchor_label(self) -> Optional[str]:
        """The first concrete descendant-step label, or ``None``.

        This is the label an element index can resolve to a candidate
        node set (``//interaction`` → ``"interaction"``): every match of
        the whole expression passes through a node carrying it.
        Expressions without such a step (pure child paths, wildcard
        descendants) have no index anchor and evaluate against the tree.

        >>> XPath("molecules//interaction/partner").anchor_label()
        'interaction'
        >>> XPath("a/*/c").anchor_label() is None
        True
        """
        for step in self.steps:
            if step.descendant and step.label is not None:
                return step.label
        return None

    def matches(self, path: "Path | str") -> bool:
        """Structural match of a concrete path against the pattern
        (ignoring predicates — used by approximate provenance, where a
        pattern *over*-approximates a set of links)."""
        return _match_steps(self.steps, Path.of(path).labels)

    def __repr__(self) -> str:
        return f"XPath({self.expression!r})"


def _match_steps(steps: Sequence[_Step], labels: Tuple[str, ...]) -> bool:
    if not steps:
        return not labels
    step, rest = steps[0], steps[1:]
    if step.descendant:
        # '//x' may skip any number of levels
        for skip in range(len(labels)):
            if _label_matches(step, labels[skip]) and _match_steps(rest, labels[skip + 1:]):
                return True
        return False
    if not labels:
        return False
    return _label_matches(step, labels[0]) and _match_steps(rest, labels[1:])


def _label_matches(step: _Step, label: str) -> bool:
    if step.label is None or step.label == label:
        return True
    return step.label == base_label(label)
