"""Shared fixtures: the paper's running example (Figures 3 and 4).

``S1``, ``S2`` and the initial target ``T`` are transcribed from
Figure 4; ``figure3_script`` is the update operation of Figure 3.
"""

from __future__ import annotations

import pytest

from repro.common.clock import CostModel, VirtualClock
from repro.core.editor import CurationEditor
from repro.core.provenance import ProvTable
from repro.core.stores import make_store
from repro.core.tree import Tree
from repro.core.updates import parse_script
from repro.wrappers.memory import MemorySourceDB, MemoryTargetDB

FIGURE3_SCRIPT = """
(1) delete c5 from T;
(2) copy S1/a1/y into T/c1/y;
(3) insert {c2 : {}} into T;
(4) copy S1/a2 into T/c2;
(5) insert {y : {}} into T/c2;
(6) copy S2/b3/y into T/c2/y;
(7) copy S1/a3 into T/c3;
(8) insert {c4 : {}} into T;
(9) copy S2/b2 into T/c4;
(10) insert {y : 12} into T/c4;
"""


def make_s1() -> Tree:
    return Tree.from_dict({"a1": {"x": 1, "y": 2}, "a2": {"x": 3}, "a3": {"x": 7, "y": 5}})


def make_s2() -> Tree:
    return Tree.from_dict({"b1": {"x": 1, "y": 2}, "b2": {"x": 4}, "b3": {"x": 7, "y": 6}})


def make_t_initial() -> Tree:
    return Tree.from_dict({"c1": {"x": 1, "y": 3}, "c5": {"x": 9, "y": 7}})


#: Figure 4's final target state T'
T_PRIME = {
    "c1": {"x": 1, "y": 2},
    "c2": {"x": 3, "y": 6},
    "c3": {"x": 7, "y": 5},
    "c4": {"x": 4, "y": 12},
}


@pytest.fixture
def figure3_updates():
    return parse_script(FIGURE3_SCRIPT)


@pytest.fixture
def s1_tree():
    return make_s1()


@pytest.fixture
def s2_tree():
    return make_s2()


@pytest.fixture
def t_initial():
    return make_t_initial()


def build_editor(method: str, first_tid: int = 121, **store_kwargs):
    """An editor over the paper's example databases with a fresh store."""
    clock = VirtualClock()
    table = ProvTable(clock=clock, cost_model=CostModel())
    store = make_store(method, table, first_tid=first_tid, **store_kwargs)
    editor = CurationEditor(
        target=MemoryTargetDB("T", make_t_initial()),
        sources=[MemorySourceDB("S1", make_s1()), MemorySourceDB("S2", make_s2())],
        store=store,
    )
    return editor


@pytest.fixture
def editor_factory():
    return build_editor
