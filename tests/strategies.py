"""Hypothesis strategies shared across the property-based tests.

The central one is :func:`scripts`, which draws *valid* random update
scripts: every generated operation is applicable to the evolving target
(inserts of fresh labels, deletes of live nodes, copies from live source
locations to live-parent destinations).  This is what lets properties
like "hierarchical expansion equals the naive table" be tested over the
whole update language rather than hand-picked cases.
"""

from __future__ import annotations

from typing import List, Tuple

from hypothesis import strategies as st

from repro.core.paths import Path
from repro.core.tree import Tree
from repro.core.updates import Copy, Delete, Insert, Update, Workspace

LABELS = ["a", "b", "c", "d", "e"]
SOURCE_NAME = "S1"
TARGET_NAME = "T"

# ----------------------------------------------------------------------
# Ordered-index operation sequences
# ----------------------------------------------------------------------

#: Small key space so insert/delete/lookup sequences collide often —
#: collisions are where blocked-index bookkeeping can go wrong.
INDEX_KEY_TEXTS = [
    "T", "T/a", "T/a/x", "T/a/y", "T/ab", "T/b", "T/b/x", "S", "S/a", "S/b",
]

index_keys = st.sampled_from(INDEX_KEY_TEXTS).map(lambda text: (text,))
index_rowids = st.integers(min_value=0, max_value=30)


def index_ops(max_size: int = 60) -> st.SearchStrategy[List[tuple]]:
    """Sequences of ordered-index operations for model-based testing.

    Each element is one of::

        ("insert", key, rowid)   ("delete", key, rowid)
        ("lookup", key)          ("prefix", text)
        ("range", low_or_None, high_or_None, include_low, include_high)
        ("rrange", low_or_None, high_or_None, include_low, include_high)

    ``rrange`` is the descending-order scan behind ``ORDER BY k DESC``
    sort elision.  The model test executes them against the blocked
    ``OrderedIndex`` and a plain sorted-list reference and compares
    every observation.
    """
    insert = st.tuples(st.just("insert"), index_keys, index_rowids)
    delete = st.tuples(st.just("delete"), index_keys, index_rowids)
    lookup = st.tuples(st.just("lookup"), index_keys)
    prefix = st.tuples(st.just("prefix"), st.sampled_from(
        ["T", "T/", "T/a", "T/a/", "S", "Q", ""]
    ))
    bound = st.one_of(st.none(), index_keys)
    rng = st.tuples(st.just("range"), bound, bound, st.booleans(), st.booleans())
    rrng = st.tuples(st.just("rrange"), bound, bound, st.booleans(), st.booleans())
    return st.lists(
        st.one_of(insert, insert, insert, delete, lookup, prefix, rng, rrng),
        max_size=max_size,
    )


#: Entry lists for bulk-build equivalence: the small key space produces
#: heavy duplication, and duplicated (key, rowid) pairs are allowed —
#: bulk_build must agree with incremental insert on those too.
index_entries = st.lists(st.tuples(index_keys, index_rowids), max_size=80)


def small_trees(max_depth: int = 3) -> st.SearchStrategy[Tree]:
    """Random small trees with values at the leaves."""
    leaves = st.one_of(
        st.integers(min_value=-100, max_value=100),
        st.text(alphabet="xyz", min_size=1, max_size=3),
        st.booleans(),
    ).map(Tree.leaf)

    def extend(children: st.SearchStrategy[Tree]) -> st.SearchStrategy[Tree]:
        return st.dictionaries(
            st.sampled_from(LABELS), children, min_size=0, max_size=3
        ).map(_tree_of)

    return st.recursive(leaves, extend, max_leaves=12)


def _tree_of(children: dict) -> Tree:
    node = Tree.empty()
    for label, child in children.items():
        node.add_child(label, child)
    return node


# ----------------------------------------------------------------------
# MVCC schedule interleavings
# ----------------------------------------------------------------------

#: Tiny key space so concurrent transactions collide constantly —
#: collisions are where snapshot visibility and first-committer-wins
#: bookkeeping can go wrong.
MVCC_KEYS = (1, 2, 3, 4)
MVCC_VALUES = st.integers(min_value=0, max_value=9)


@st.composite
def mvcc_schedules(
    draw,
    max_clients: int = 4,
    max_steps: int = 30,
) -> Tuple[dict, List[tuple]]:
    """Draw ``(initial kv state, interleaved schedule)`` for the
    concurrent-history checker (see
    :func:`repro.workloads.concurrent.run_kv_schedule` for the step
    language).

    Steps from different clients interleave freely; commits, rollbacks,
    deletes, and blind upserts are all drawn, so the schedule space
    covers dirty-read, non-repeatable-read, lost-update, and
    first-committer-wins scenarios without hand-writing them.
    """
    n_clients = draw(st.integers(min_value=2, max_value=max_clients))
    clients = st.integers(min_value=0, max_value=n_clients - 1)
    keys = st.sampled_from(MVCC_KEYS)
    initial = draw(
        st.dictionaries(keys, MVCC_VALUES, min_size=0, max_size=len(MVCC_KEYS))
    )
    step = st.one_of(
        st.tuples(st.just("begin"), clients),
        st.tuples(st.just("read"), clients, keys),
        st.tuples(st.just("read"), clients, keys),
        st.tuples(st.just("write"), clients, keys, MVCC_VALUES),
        st.tuples(st.just("write"), clients, keys, MVCC_VALUES),
        st.tuples(st.just("delete"), clients, keys),
        st.tuples(st.just("commit"), clients),
        st.tuples(st.just("rollback"), clients),
    )
    schedule = draw(st.lists(step, min_size=1, max_size=max_steps))
    return initial, schedule


@st.composite
def scripts(draw, min_ops: int = 1, max_ops: int = 12) -> Tuple[Workspace, List[Update]]:
    """Draw ``(initial workspace, valid update script)``.

    The workspace contains a source ``S1`` and a target ``T``; the
    returned workspace is the *initial* state (unmodified).
    """
    source = draw(small_trees())
    target = draw(small_trees())
    if target.is_leaf_value:
        target = Tree.empty()
    initial = Workspace(
        {TARGET_NAME: target.deep_copy(), SOURCE_NAME: source}, target=TARGET_NAME
    )
    # simulate on a scratch copy to keep each drawn op valid
    scratch = Workspace(
        {TARGET_NAME: target.deep_copy(), SOURCE_NAME: source.deep_copy()},
        target=TARGET_NAME,
    )
    n_ops = draw(st.integers(min_value=min_ops, max_value=max_ops))
    ops: List[Update] = []
    fresh = 0
    for _ in range(n_ops):
        kind = draw(st.sampled_from(["ins", "ins", "del", "copy", "copy"]))
        t = scratch.roots[TARGET_NAME]
        interior = [
            path for path, node in t.nodes() if not node.is_leaf_value
        ]
        if kind == "ins":
            parent = draw(st.sampled_from(interior))
            existing = set(t.resolve(parent).children)
            label_pool = [l for l in LABELS if l not in existing]
            if label_pool and draw(st.booleans()):
                label = draw(st.sampled_from(label_pool))
            else:
                fresh += 1
                label = f"n{fresh}"
            value = draw(
                st.one_of(st.none(), st.integers(min_value=0, max_value=99))
            )
            op = Insert(label, value, Path([TARGET_NAME]).join(parent))
            t.resolve(parent).add_child(
                label, Tree.empty() if value is None else Tree.leaf(value)
            )
        elif kind == "del":
            victims = [path for path, _ in t.nodes() if not path.is_root]
            if not victims:
                continue
            victim = draw(st.sampled_from(victims))
            op = Delete(victim.last, Path([TARGET_NAME]).join(victim.parent))
            t.resolve(victim.parent).remove_child(victim.last)
        else:  # copy
            s = scratch.roots[SOURCE_NAME]
            src_pool = [path for path, _ in s.nodes() if not path.is_root]
            tgt_pool = [path for path, _ in t.nodes() if not path.is_root]
            from_target = draw(st.booleans()) and tgt_pool
            if from_target:
                src_rel = draw(st.sampled_from(tgt_pool))
                src_abs = Path([TARGET_NAME]).join(src_rel)
                copied = t.resolve(src_rel).deep_copy()
            elif src_pool:
                src_rel = draw(st.sampled_from(src_pool))
                src_abs = Path([SOURCE_NAME]).join(src_rel)
                copied = s.resolve(src_rel).deep_copy()
            else:
                continue
            dst_parent = draw(st.sampled_from(interior))
            existing = sorted(t.resolve(dst_parent).children)
            if existing and draw(st.booleans()):
                dst_label = draw(st.sampled_from(existing))  # overwrite
            else:
                fresh += 1
                dst_label = f"c{fresh}"
            dst_rel = dst_parent.child(dst_label)
            op = Copy(src_abs, Path([TARGET_NAME]).join(dst_rel))
            parent_node = t.resolve(dst_parent)
            parent_node.children[dst_label] = copied
        ops.append(op)
    return initial, ops
