"""Tests for the mixed data+provenance views (Section 2.2's Q(x, px))."""

import pytest

from repro import (
    CurationEditor,
    MemorySourceDB,
    MemoryTargetDB,
    ProvTable,
    ProvenanceQueries,
    Tree,
    make_store,
)
from repro.core.annotate import from_view, origin_view
from repro.core.paths import Path


@pytest.fixture(params=["N", "H", "T", "HT"])
def session(request):
    source = MemorySourceDB("S", Tree.from_dict({"rec": {"a": 1, "b": 2}}))
    store = make_store(request.param, ProvTable())
    editor = CurationEditor(
        target=MemoryTargetDB("T", Tree.from_dict({"old": 9, "area": {}})),
        sources=[source],
        store=store,
    )
    editor.copy_paste("S/rec", "T/area/rec")
    editor.commit()
    editor.insert("T/area/rec", "note", "checked")
    editor.commit()
    editor.copy_paste("T/area/rec", "T/area/copy2")
    editor.commit()
    return editor, ProvenanceQueries(store)


def by_loc(annotations):
    return {str(a.loc): a for a in annotations}


class TestOriginView:
    def test_kinds(self, session):
        editor, queries = session
        annotations = by_loc(origin_view(editor.target_tree(), queries))

        assert annotations["T/old"].kind == "initial"

        copied = annotations["T/area/rec/a"]
        assert copied.kind == "copied"
        assert str(copied.origin) == "S/rec/a"
        assert copied.value == 1

        inserted = annotations["T/area/rec/note"]
        assert inserted.kind == "inserted"
        assert inserted.value == "checked"

        # the second-generation copy traces through T back to S
        second = annotations["T/area/copy2/b"]
        assert second.kind == "copied"
        assert str(second.origin) == "S/rec/b"
        # the note inside the copied subtree traces to its insertion
        note2 = annotations["T/area/copy2/note"]
        assert note2.kind == "inserted"

    def test_scoped(self, session):
        editor, queries = session
        annotations = origin_view(editor.target_tree(), queries, under="T/area/rec")
        assert {str(a.loc) for a in annotations} == {
            "T/area/rec/a", "T/area/rec/b", "T/area/rec/note",
        }


class TestFromView:
    def test_last_transaction_effects(self, session):
        editor, queries = session
        annotations = by_loc(from_view(editor.target_tree(), queries))

        # the final transaction copied T/area/rec -> T/area/copy2
        moved = annotations["T/area/copy2/a"]
        assert moved.kind == "copied"
        assert str(moved.origin) == "T/area/rec/a"

        # everything else was unchanged in the final transaction
        assert annotations["T/area/rec/a"].kind == "unchanged"
        assert str(annotations["T/area/rec/a"].origin) == "T/area/rec/a"
        assert annotations["T/old"].kind == "unchanged"

    def test_agrees_with_came_from(self, session):
        editor, queries = session
        for annotation in from_view(editor.target_tree(), queries):
            expected = queries.came_from(queries.tnow, annotation.loc)
            if annotation.kind in ("copied", "unchanged"):
                assert annotation.origin == expected
            else:
                assert expected is None
