"""Tests for approximate provenance and the bulk update language
(Section 6 future work, implemented)."""

import pytest

from repro.core.approx import ApproxProvStore, ApproxRecord, PathPattern
from repro.core.bulk import BulkUpdater
from repro.core.editor import CurationEditor
from repro.core.paths import Path
from repro.core.provenance import OP_COPY, ProvTable
from repro.core.stores import make_store
from repro.core.tree import Tree
from repro.wrappers.memory import MemorySourceDB, MemoryTargetDB


class TestPathPattern:
    def test_parse_and_str(self):
        pattern = PathPattern.parse("T/a/*/b")
        assert str(pattern) == "T/a/*/b"
        assert pattern.wildcard_count == 1

    def test_exact_match(self):
        pattern = PathPattern.parse("T/a/*/b")
        assert pattern.match("T/a/x/b") == ("x",)
        assert pattern.match("T/a/x/c") is None
        assert pattern.match("T/a/x") is None
        assert pattern.match("T/a/x/b/deep") is None

    def test_prefix_match(self):
        pattern = PathPattern.parse("T/a/*")
        bindings, suffix = pattern.match_prefix("T/a/x/deep/leaf")
        assert bindings == ("x",)
        assert str(suffix) == "deep/leaf"
        assert pattern.match_prefix("T/b/x") is None

    def test_substitute(self):
        pattern = PathPattern.parse("S/a/*/b/*")
        assert pattern.substitute(("x", "y")) == Path.parse("S/a/x/b/y")
        with pytest.raises(ValueError):
            pattern.substitute(("x",))
        with pytest.raises(ValueError):
            pattern.substitute(("x", "y", "z"))

    def test_no_wildcards(self):
        pattern = PathPattern.parse("T/a/b")
        assert pattern.match("T/a/b") == ()
        assert pattern.substitute(()) == Path.parse("T/a/b")


class TestApproxStore:
    def test_copy_record_wildcard_alignment_enforced(self):
        with pytest.raises(ValueError):
            ApproxRecord(
                1, OP_COPY,
                PathPattern.parse("T/a/*"),
                PathPattern.parse("S/a/*/extra/*"),
            )

    def test_possible_sources_with_binding(self):
        store = ApproxProvStore()
        store.record_bulk_copy(7, "T/refs/*", "PubMed/citations/*")
        sources = store.possible_sources("T/refs/pmid123")
        assert sources == [(7, Path.parse("PubMed/citations/pmid123"))]

    def test_descendants_covered(self):
        store = ApproxProvStore()
        store.record_bulk_copy(7, "T/refs/*", "PubMed/citations/*")
        sources = store.possible_sources("T/refs/pmid123/title")
        assert sources == [(7, Path.parse("PubMed/citations/pmid123/title"))]

    def test_three_valued_queries(self):
        store = ApproxProvStore()
        store.record_bulk_copy(7, "T/refs/*", "PubMed/citations/*")
        assert store.may_have_come_from("T/refs/x", "PubMed/citations/x")
        assert store.cannot_have_come_from("T/refs/x", "PubMed/citations/y")
        assert store.cannot_have_come_from("T/other/x", "PubMed/citations/x")

    def test_may_have_been_touched(self):
        store = ApproxProvStore()
        store.record_bulk_copy(7, "T/refs/*", "P/c/*")
        store.record_bulk_delete(9, "T/refs/*/flags")
        store.record_bulk_insert(11, "T/refs/*/status")
        assert store.may_have_been_touched("T/refs/x") == [7]
        assert store.may_have_been_touched("T/refs/x/flags") == [7, 9]
        assert store.may_have_been_touched("T/refs/x/flags/deep") == [7, 9]
        assert store.may_have_been_touched("T/refs/x/status") == [7, 11]
        assert store.may_have_been_touched("T/elsewhere") == []

    def test_overapproximation_is_one_sided(self):
        """may_have_come_from can have false positives but
        cannot_have_come_from never has false negatives (by construction:
        they are complements)."""
        store = ApproxProvStore()
        store.record_bulk_copy(7, "T/refs/*", "P/c/*")
        loc, src = "T/refs/never_actually_copied", "P/c/never_actually_copied"
        assert store.may_have_come_from(loc, src)  # a false positive
        assert not store.cannot_have_come_from(loc, src)


def build_bulk(method="T"):
    source = MemorySourceDB("P", Tree.from_dict({
        "cites": {
            "c1": {"title": "A", "journal": "X"},
            "c2": {"title": "B", "journal": "Y"},
            "c3": {"title": "C", "journal": "X"},
        }
    }))
    store = make_store(method, ProvTable())
    approx = ApproxProvStore()
    editor = CurationEditor(
        target=MemoryTargetDB("T", Tree.from_dict({"refs": {}})),
        sources=[source],
        store=store,
    )
    return BulkUpdater(editor, approx_store=approx), editor, store, approx


class TestBulkUpdater:
    def test_bulk_copy_selects_by_predicate(self):
        bulk, editor, store, _ = build_bulk()
        performed = bulk.bulk_copy("P", "cites/*[journal='X']", "T/refs")
        assert len(performed) == 2
        tree = editor.target_tree()
        assert tree.resolve("refs/c1/title").value == "A"
        assert tree.resolve("refs/c3/title").value == "C"
        assert not tree.contains_path("refs/c2")

    def test_bulk_copy_is_one_transaction(self):
        bulk, _editor, store, _ = build_bulk()
        bulk.bulk_copy("P", "cites/*", "T/refs")
        assert {record.tid for record in store.records()} == {1}

    def test_bulk_copy_rename(self):
        bulk, editor, _store, _ = build_bulk()
        bulk.bulk_copy("P", "cites/*", "T/refs",
                       rename=lambda path: f"ref_{path.last}")
        assert editor.target_tree().contains_path("refs/ref_c1")

    def test_bulk_insert(self):
        bulk, editor, _store, _ = build_bulk()
        bulk.bulk_copy("P", "cites/*", "T/refs")
        inserted = bulk.bulk_insert("refs/*", "status", "new")
        assert len(inserted) == 3
        assert editor.target_tree().resolve("refs/c2/status").value == "new"

    def test_bulk_delete_deepest_first(self):
        bulk, editor, _store, _ = build_bulk()
        bulk.bulk_copy("P", "cites/*", "T/refs")
        deleted = bulk.bulk_delete("refs/*/journal")
        assert len(deleted) == 3
        assert not editor.target_tree().contains_path("refs/c1/journal")

    def test_approximate_mode_records_pattern(self):
        bulk, _editor, store, approx = build_bulk()
        bulk.bulk_copy("P", "cites/*[journal='X']", "T/refs", approximate=True)
        assert approx.row_count == 1
        record = approx.records()[0]
        assert str(record.loc) == "T/refs/*"
        assert str(record.src) == "P/cites/*"
        # storage is O(1) in the number of copied citations
        assert approx.row_count < store.row_count

    def test_unknown_database_rejected(self):
        bulk, _editor, _store, _ = build_bulk()
        with pytest.raises(Exception):
            bulk.bulk_copy("Nowhere", "cites/*", "T/refs")

    def test_exact_and_approx_agree_on_positives(self):
        """Everything the exact store records as a copy must be
        may-have-come-from under the approximation (soundness)."""
        bulk, _editor, store, approx = build_bulk()
        performed = bulk.bulk_copy("P", "cites/*", "T/refs", approximate=True)
        for src, dst in performed:
            assert approx.may_have_come_from(dst, src)
